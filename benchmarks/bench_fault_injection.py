"""Microbench — fault injection throughput and the retry path's overhead.

Two questions about ``repro.faults``:

1. injection throughput: how fast plans of scheduled fault events apply
   through the kernel (crash + recover churn against a live scheduler);
2. what resilience costs: the chaos workload with faults injected vs the
   identical fault-free workload — the price of requeues, backoff waits,
   and degradation bookkeeping on wall-clock simulation speed.
"""

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec, RetryPolicy, call_with_retry
from repro.faults.chaos import run_chaos
from repro.errors import YumError
from repro.sim import SimKernel

N_FAULT_CYCLES = 400


def crash_recover_churn(cycles=N_FAULT_CYCLES):
    """A plan of `cycles` crash/recover pairs applied to a live cluster."""
    faults = []
    for i in range(cycles):
        node = f"littlefe-iu-n{1 + (i % 5)}"
        faults.append(
            FaultSpec(FaultKind.NODE_CRASH, node, at_s=10.0 + 20.0 * i,
                      duration_s=10.0)
        )
    plan = FaultPlan("bench-churn", tuple(faults))
    run = run_chaos(plan, seed=1, cluster="littlefe", job_count=4,
                    with_mirror=False)
    return run


def retry_storm(calls=2_000):
    """call_with_retry where every call fails twice then succeeds."""
    kernel = SimKernel(seed=2)
    policy = RetryPolicy(max_attempts=4, base_delay_s=0.5, jitter=0.1)
    done = 0
    for _ in range(calls):
        state = {"n": 0}

        def flaky():
            state["n"] += 1
            if state["n"] < 3:
                raise YumError("transient")
            return state["n"]

        call_with_retry(kernel, flaky, policy=policy, op="bench.flaky")
        done += 1
    return kernel, done


def test_bench_fault_injection_throughput(benchmark, save_artifact):
    run = benchmark(crash_recover_churn)
    injections = run.report.faults_injected
    per_s = injections / benchmark.stats["mean"]

    lines = [
        "Microbench: fault injection throughput",
        f"  plan size:        {N_FAULT_CYCLES} crash/recover faults",
        f"  injected:         {injections} (+ {run.report.faults_recovered} recoveries)",
        f"  requeues:         {run.report.requeues}",
        f"  mean run:         {benchmark.stats['mean'] * 1e3:.1f} ms",
        f"  injections/s:     {per_s:,.0f}",
        f"  invariants:       {'all hold' if run.report.ok else 'VIOLATED'}",
    ]
    save_artifact("bench_fault_injection_throughput", "\n".join(lines))
    assert run.report.ok, run.report.violations
    assert injections == N_FAULT_CYCLES


def test_bench_retry_path_overhead(benchmark, save_artifact):
    kernel, done = benchmark(retry_storm)
    attempts = done * 3  # two failures + one success per call
    per_s = attempts / benchmark.stats["mean"]

    lines = [
        "Microbench: retry/backoff path",
        f"  calls:            {done} (each: 2 failures + 1 success)",
        f"  attempts:         {attempts}",
        f"  retry events:     {kernel.trace.count('fault.retry')}",
        f"  mean run:         {benchmark.stats['mean'] * 1e3:.1f} ms",
        f"  attempts/s:       {per_s:,.0f}",
    ]
    save_artifact("bench_retry_path_overhead", "\n".join(lines))
    assert kernel.trace.count("fault.retry") == done * 2


def test_bench_chaos_vs_fault_free(benchmark, save_artifact):
    """The resilience tax: identical workload, with and without faults."""
    import time

    start = time.perf_counter()
    clean = run_chaos(FaultPlan("none"), seed=3, cluster="littlefe")
    clean_s = time.perf_counter() - start

    chaotic = benchmark(lambda: run_chaos(seed=3, cluster="littlefe"))
    chaos_s = benchmark.stats["mean"]
    overhead = (chaos_s - clean_s) / clean_s * 100.0 if clean_s > 0 else 0.0

    lines = [
        "Chaos run vs fault-free baseline (littlefe, 12 jobs, seed 3)",
        f"  fault-free:       {clean_s * 1e3:.1f} ms, "
        f"{clean.kernel.events_processed} events",
        f"  with faults:      {chaos_s * 1e3:.1f} ms, "
        f"{chaotic.kernel.events_processed} events",
        f"  overhead:         {overhead:+.0f}%",
        f"  requeues:         {chaotic.report.requeues}",
        f"  retries:          {chaotic.report.retries}",
        f"  invariants:       "
        f"{'all hold' if chaotic.report.ok and clean.report.ok else 'VIOLATED'}",
    ]
    save_artifact("bench_chaos_vs_fault_free", "\n".join(lines))
    assert clean.report.ok and chaotic.report.ok

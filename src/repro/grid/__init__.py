"""The grid layer (Table 2's XSEDE Tools): GridFTP-style verified striped
transfers, the GFFS federated namespace, and the Stampede-mini reference
cluster compatibility is defined against.
"""

from .gffs import GffsExport, GffsNamespace
from .gridftp import GridEndpoint, GridError, TransferResult, WanLink, transfer
from .reference import build_stampede_mini

__all__ = [
    "GridError",
    "WanLink",
    "GridEndpoint",
    "TransferResult",
    "transfer",
    "GffsNamespace",
    "GffsExport",
    "build_stampede_mini",
]

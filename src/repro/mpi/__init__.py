"""Simulated MPI: a rank/communicator model over the network fabric with
data-correct collectives and accounted (not slept) time.
"""

from .benchmarks import (
    PingPongPoint,
    allreduce_sweep,
    effective_bandwidth,
    ping_pong,
)
from .collectives import (
    allgather,
    allreduce,
    alltoall,
    bcast,
    gather,
    reduce,
    scatter,
)
from .jobs import MpiJobProfile, run_allreduce_job, world_for_job
from .simulator import MpiWorld, bytes_of

__all__ = [
    "MpiWorld",
    "bytes_of",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "ping_pong",
    "PingPongPoint",
    "effective_bandwidth",
    "allreduce_sweep",
    "world_for_job",
    "run_allreduce_job",
    "MpiJobProfile",
]

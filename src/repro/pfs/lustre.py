"""A Lustre-like parallel filesystem: MDS + OSTs, striping, bandwidth.

Table 3's "Other info" column is mostly storage: Montana State runs "300 TB
of Lustre storage", Hawaii "40TB storage, 60TB scratch".  A campus cluster's
parallel filesystem is part of what XCBC integrates with, so the substrate
models Lustre's operationally relevant shape:

* one metadata server (MDS) owning the namespace;
* N object storage targets (OSTs), each with capacity and bandwidth;
* files striped over ``stripe_count`` OSTs in ``stripe_size`` chunks —
  aggregate read/write bandwidth grows with stripe count until the client
  link saturates (the reason anyone tunes ``lfs setstripe``);
* capacity accounting per OST; a full OST fails allocations even when the
  filesystem as a whole has room (the classic Lustre gotcha).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import ReproError

__all__ = ["PfsError", "Ost", "LustreFs", "StripeLayout", "PfsFile"]


class PfsError(ReproError):
    """Parallel-filesystem failure."""


@dataclass
class Ost:
    """One object storage target."""

    index: int
    capacity_bytes: int
    bandwidth_bytes_s: float
    used_bytes: int = 0
    online: bool = True

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def charge(self, nbytes: int) -> None:
        if nbytes > self.free_bytes:
            raise PfsError(
                f"OST{self.index:04d} is full "
                f"({self.used_bytes}/{self.capacity_bytes} bytes used)"
            )
        self.used_bytes += nbytes

    def release(self, nbytes: int) -> None:
        if nbytes > self.used_bytes:
            raise PfsError(f"OST{self.index:04d}: over-release")
        self.used_bytes -= nbytes


@dataclass(frozen=True)
class StripeLayout:
    """An lfs-setstripe layout."""

    stripe_count: int
    stripe_size_bytes: int
    ost_indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.stripe_count != len(self.ost_indices):
            raise PfsError("stripe count does not match OST list")


@dataclass
class PfsFile:
    """One file's metadata (the MDS inode)."""

    path: str
    size_bytes: int
    layout: StripeLayout

    def chunk_bytes_on(self, ost_index: int) -> int:
        """Bytes of this file stored on one OST (round-robin striping)."""
        if ost_index not in self.layout.ost_indices:
            return 0
        position = self.layout.ost_indices.index(ost_index)
        stripe = self.layout.stripe_size_bytes
        full_rounds, remainder = divmod(self.size_bytes, stripe * self.layout.stripe_count)
        nbytes = full_rounds * stripe
        tail_start = position * stripe
        nbytes += max(0, min(stripe, remainder - tail_start))
        return nbytes


class LustreFs:
    """The filesystem: one MDS namespace over a set of OSTs."""

    def __init__(
        self,
        name: str,
        *,
        ost_count: int,
        ost_capacity_bytes: int,
        ost_bandwidth_bytes_s: float = 500e6,
        default_stripe_count: int = 1,
        stripe_size_bytes: int = 1 * 1024 * 1024,
        client_bandwidth_bytes_s: float = 117.5e6,
    ) -> None:
        if ost_count <= 0:
            raise PfsError("need at least one OST")
        if not 1 <= default_stripe_count <= ost_count:
            raise PfsError("default stripe count out of range")
        self.name = name
        self.osts = [
            Ost(index=i, capacity_bytes=ost_capacity_bytes,
                bandwidth_bytes_s=ost_bandwidth_bytes_s)
            for i in range(ost_count)
        ]
        self.default_stripe_count = default_stripe_count
        self.stripe_size_bytes = stripe_size_bytes
        self.client_bandwidth_bytes_s = client_bandwidth_bytes_s
        self._files: dict[str, PfsFile] = {}
        self._next_ost = itertools.count()

    # -- capacity -----------------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return sum(o.capacity_bytes for o in self.osts)

    @property
    def used_bytes(self) -> int:
        return sum(o.used_bytes for o in self.osts)

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def df(self) -> str:
        """``lfs df`` — per-OST and total usage."""
        lines = [f"UUID{'':<14}bytes{'':>8}used{'':>9}avail"]
        for ost in self.osts:
            state = "" if ost.online else "  (offline)"
            lines.append(
                f"{self.name}-OST{ost.index:04d}  {ost.capacity_bytes:>12} "
                f"{ost.used_bytes:>12} {ost.free_bytes:>12}{state}"
            )
        lines.append(
            f"{self.name} total     {self.capacity_bytes:>12} "
            f"{self.used_bytes:>12} {self.free_bytes:>12}"
        )
        return "\n".join(lines)

    # -- namespace -----------------------------------------------------------------

    def _pick_osts(self, stripe_count: int) -> tuple[int, ...]:
        online = [o for o in self.osts if o.online]
        if stripe_count > len(online):
            raise PfsError(
                f"stripe count {stripe_count} exceeds the {len(online)} "
                f"online OSTs"
            )
        # round-robin start point, then the next online OSTs
        start = next(self._next_ost) % len(online)
        ordered = online[start:] + online[:start]
        return tuple(o.index for o in ordered[:stripe_count])

    def create(
        self, path: str, size_bytes: int, *, stripe_count: int | None = None
    ) -> PfsFile:
        """Create a file (lfs setstripe semantics when stripe_count given)."""
        if path in self._files:
            raise PfsError(f"file exists: {path}")
        if size_bytes < 0:
            raise PfsError("negative size")
        count = stripe_count if stripe_count is not None else self.default_stripe_count
        layout = StripeLayout(
            stripe_count=count,
            stripe_size_bytes=self.stripe_size_bytes,
            ost_indices=self._pick_osts(count),
        )
        record = PfsFile(path=path, size_bytes=size_bytes, layout=layout)
        # charge capacity per OST; roll back on partial failure
        charged: list[tuple[Ost, int]] = []
        try:
            for index in layout.ost_indices:
                nbytes = record.chunk_bytes_on(index)
                self.osts[index].charge(nbytes)
                charged.append((self.osts[index], nbytes))
        except PfsError:
            for ost, nbytes in charged:
                ost.release(nbytes)
            raise
        self._files[path] = record
        return record

    def unlink(self, path: str) -> None:
        record = self._files.pop(path, None)
        if record is None:
            raise PfsError(f"no such file: {path}")
        for index in record.layout.ost_indices:
            self.osts[index].release(record.chunk_bytes_on(index))

    def stat(self, path: str) -> PfsFile:
        try:
            return self._files[path]
        except KeyError:
            raise PfsError(f"no such file: {path}") from None

    def files(self) -> list[PfsFile]:
        return [self._files[p] for p in sorted(self._files)]

    # -- performance -----------------------------------------------------------------

    def io_time_s(self, path: str, *, clients: int = 1) -> float:
        """Time for ``clients`` to collectively read/write the whole file.

        Aggregate bandwidth = min(sum of striped OST bandwidth,
        clients x client link).  This produces the tuning curve admins know:
        single-stripe files cap at one OST; wide stripes cap at the clients'
        aggregate links.
        """
        if clients < 1:
            raise PfsError("need at least one client")
        record = self.stat(path)
        ost_bw = sum(
            self.osts[i].bandwidth_bytes_s
            for i in record.layout.ost_indices
            if self.osts[i].online
        )
        if ost_bw == 0:
            raise PfsError(f"all OSTs backing {path} are offline")
        aggregate = min(ost_bw, clients * self.client_bandwidth_bytes_s)
        return record.size_bytes / aggregate

    def set_ost_online(self, index: int, online: bool) -> None:
        if not 0 <= index < len(self.osts):
            raise PfsError(f"no OST {index}")
        self.osts[index].online = online

"""gmond: the per-host Ganglia monitoring daemon.

Each monitored host runs a :class:`Gmond` that snapshots the simulated
host's real state — load derived from the scheduler's allocations, memory
from the hardware model, package count from the RPM database, failed
services from the service manager.  Samples are pulled by gmetad
(:mod:`repro.monitoring.gmetad`) exactly the way the real mesh works
(gmetad polls a gmond, which answers with the cluster's current samples).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..distro.host import Host
from ..errors import NodeOfflineError
from ..rpm.database import RpmDatabase
from .metrics import CORE_METRICS, MetricSample, MonitoringError

__all__ = ["Gmond"]


class Gmond:
    """One host's monitoring agent.

    ``load_source`` is an optional callable returning the host's busy-core
    count (wired to the scheduler by :class:`~repro.monitoring.gmetad.Gmetad`
    integrations or tests); without one, load reports 0.

    ``responsive`` models the daemon itself: a crashed node or a
    heartbeat-loss fault makes the gmond stop answering (``poll`` raises
    :class:`~repro.errors.NodeOfflineError`), which gmetad degrades around
    instead of crashing.  Note this is distinct from the *host* being
    powered off — a live gmond on a powered-down chassis cannot happen,
    but a reachable gmond can still report ``powered_on = 0`` for a node
    mid-shutdown.
    """

    def __init__(
        self,
        host: Host,
        db: RpmDatabase | None = None,
        *,
        load_source=None,
    ) -> None:
        if db is not None and db.host is not host:
            raise MonitoringError("RPM database belongs to a different host")
        self.host = host
        self.db = db
        self.load_source = load_source
        self.responsive = True
        #: counters accumulate across polls (bytes in/out)
        self._bytes_in = 0.0
        self._bytes_out = 0.0

    def fail_heartbeat(self) -> None:
        """Stop answering polls (crashed node / partitioned segment)."""
        self.responsive = False

    def restore_heartbeat(self) -> None:
        """Start answering polls again."""
        self.responsive = True

    def account_traffic(self, *, bytes_in: float = 0.0, bytes_out: float = 0.0) -> None:
        """Feed network counters (the fabric/MPI layers call this)."""
        if bytes_in < 0 or bytes_out < 0:
            raise MonitoringError("negative traffic")
        self._bytes_in += bytes_in
        self._bytes_out += bytes_out

    def state_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot of the agent (checkpoint participation)."""
        return {
            "host": self.host.name,
            "responsive": self.responsive,
            "powered_on": self.host.node.powered_on,
            "bytes_in": self._bytes_in,
            "bytes_out": self._bytes_out,
        }

    def _busy_cores(self) -> float:
        if self.load_source is None:
            return 0.0
        return float(self.load_source())

    def poll(self, timestamp_s: float) -> list[MetricSample]:
        """Snapshot every core metric at ``timestamp_s``."""
        if not self.responsive:
            raise NodeOfflineError(
                f"gmond on {self.host.name} is not responding"
            )
        node = self.host.node
        busy = self._busy_cores()
        mem_total_kb = node.memory_bytes / 1024.0
        # crude but monotone: memory pressure follows core occupancy
        mem_free_kb = mem_total_kb * max(0.1, 1.0 - 0.8 * busy / max(node.cores, 1))
        failed = sum(
            1
            for svc in self.host.services.all_services()
            if svc.state.value == "failed"
        )
        values = {
            "load_one": busy,
            "cpu_num": float(node.cores),
            "cpu_user": 100.0 * busy / max(node.cores, 1),
            "mem_total": mem_total_kb,
            "mem_free": mem_free_kb,
            "disk_total": node.storage_bytes / 1e9,
            "bytes_in": self._bytes_in,
            "bytes_out": self._bytes_out,
            "proc_run": busy,
            "pkg_count": float(len(self.db)) if self.db is not None else 0.0,
            "svc_failed": float(failed),
            "powered_on": 1.0 if node.powered_on else 0.0,
        }
        return [
            MetricSample(
                spec=CORE_METRICS[name],
                host=self.host.name,
                value=value,
                timestamp_s=timestamp_s,
            )
            for name, value in values.items()
        ]

"""The event-driven scheduling core shared by all three schedulers.

A :class:`ClusterResources` tracks free cores per node (built from a
:class:`~repro.hardware.chassis.Machine`); :class:`BaseScheduler` drives
the event loop through a :class:`~repro.sim.SimKernel`: job completions
are kernel events, time advances only through the kernel clock, and every
lifecycle transition is published on the kernel's trace bus.  Pass a
shared kernel to co-simulate with other subsystems (power, monitoring,
MPI) on one timeline; without one the scheduler creates its own.

Invariants (tested property-style):

* a node's allocated cores never exceed its core count;
* a job runs exactly once and ends at ``start + charged_runtime``;
* jobs over their walltime limit are killed at the limit and FAILED.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from ..errors import NodeOfflineError, SchedulerError
from ..fleet import FleetTable
from ..hardware.chassis import Machine
from ..sim import EventHandle, SimKernel
from .job import Allocation, Job, JobState

__all__ = ["ClusterResources", "BaseScheduler", "SchedulerStats"]


class ClusterResources:
    """Free-core accounting over a machine's nodes.

    Three orthogonal per-node flags matter to the allocator:

    * **offline** — not allocatable right now (powered off, crashed, or a
      completed drain); power management flips this;
    * **failed** — crashed hardware: offline *and* not eligible for power
      management to bring back until explicitly restored;
    * **draining** — no new allocations, running work finishes; the
      scheduler completes the drain (offline) when the node idles.

    ``exclude`` drops nodes entirely (e.g. nodes whose provisioning
    failed — they never become schedulable resources).

    Storage is columnar: capacity and free cores live in parallel arrays
    over name-sorted nodes, and the usability flags *are*
    :class:`~repro.fleet.FleetTable` flag columns.  Built from a
    :class:`Machine`, the table is private; built with :meth:`from_fleet`
    it is the cluster's shared fleet table, so an offline/failed/drain
    decision here is immediately visible to monitoring and vice versa.
    """

    def __init__(
        self,
        machine: Machine,
        *,
        use_head_for_jobs: bool = False,
        exclude: set[str] | frozenset[str] = frozenset(),
    ):
        # By XSEDE convention compute jobs stay off the frontend.
        nodes = machine.nodes if use_head_for_jobs else machine.compute_nodes
        nodes = [n for n in nodes if n.name not in exclude]
        if not nodes:
            raise SchedulerError(f"{machine.name}: no compute nodes to schedule on")
        fleet = FleetTable()
        for n in nodes:
            fleet.add_row(
                name=n.name,
                appliance="compute",
                state="os-installed",
                cores=n.cores,
            )
        self._bind(fleet, list(range(len(nodes))))

    @classmethod
    def from_fleet(
        cls,
        fleet: FleetTable,
        *,
        label: str = "fleet",
        use_head_for_jobs: bool = False,
        exclude: set[str] | frozenset[str] = frozenset(),
    ) -> "ClusterResources":
        """Build resources directly over a cluster's fleet table.

        Schedulable nodes are the live compute rows in install state
        ``os-installed`` (a half-provisioned node never becomes capacity);
        ``use_head_for_jobs`` admits the frontend row too.  The flag
        columns are shared, not copied — this is the 10k-node path, where
        rocks, the scheduler, and monitoring all read one table.
        """
        installed = fleet.state_code("os-installed")
        indices = [
            i
            for i in fleet.ordered_indices()
            if fleet.names[i] not in exclude
            and fleet.states[i] == installed
            and (use_head_for_jobs or fleet.appliances[i] == "compute")
        ]
        if not indices:
            raise SchedulerError(f"{label}: no compute nodes to schedule on")
        self = cls.__new__(cls)
        self._bind(fleet, indices)
        return self

    def _bind(self, fleet: FleetTable, indices: list[int]) -> None:
        """Wire the columnar views: name-sorted positions over fleet rows."""
        order = sorted(indices, key=lambda i: fleet.names[i])
        self._fleet = fleet
        #: local position -> fleet row index
        self._fidx = order
        #: node names, sorted (the iteration order of every query below)
        self._names = [fleet.names[i] for i in order]
        self._pos = {name: p for p, name in enumerate(self._names)}
        self._capv = array("l", (fleet.cores[i] for i in order))
        self._freev = array("l", self._capv)

    def _position(self, node: str) -> int:
        try:
            return self._pos[node]
        except KeyError:
            raise SchedulerError(f"unknown node {node}") from None

    def _flag(self, column: str, pos: int) -> bool:
        return bool(getattr(self._fleet, column)[self._fidx[pos]])

    def _set_flag(self, column: str, pos: int, value: bool) -> None:
        self._fleet.set_flag(column, self._fidx[pos], value)

    def _mask(self, column: str) -> list[bool]:
        """One flag column gathered over this view's positions."""
        col = getattr(self._fleet, column)
        return [bool(col[i]) for i in self._fidx]

    @property
    def total_cores(self) -> int:
        """Cores on all (online + offline) nodes."""
        return sum(self._capv)

    @property
    def online_cores(self) -> int:
        """Cores on online nodes."""
        off = self._mask("offline")
        return sum(c for p, c in enumerate(self._capv) if not off[p])

    def free_cores(self) -> int:
        """Currently unallocated cores on online nodes."""
        off = self._mask("offline")
        return sum(c for p, c in enumerate(self._freev) if not off[p])

    def node_names(self) -> list[str]:
        return list(self._names)

    def capacity_of(self, node: str) -> int:
        return self._capv[self._position(node)]

    def free_of(self, node: str) -> int:
        pos = self._position(node)
        return 0 if self._flag("offline", pos) else self._freev[pos]

    @property
    def usable_cores(self) -> int:
        """Cores a job could ever be given: not failed, not draining.

        Powered-off nodes count (power management can bring them back);
        failed ones do not until :meth:`restore_node`.
        """
        bad_f = self._mask("failed")
        bad_d = self._mask("draining")
        return sum(
            c
            for p, c in enumerate(self._capv)
            if not bad_f[p] and not bad_d[p]
        )

    def set_offline(self, node: str, offline: bool) -> None:
        """Mark a node offline/online (power management uses this).

        A node with allocated cores cannot go offline; a failed node
        cannot come back online until :meth:`restore_node`.
        """
        pos = self._position(node)
        if offline:
            if self._freev[pos] != self._capv[pos]:
                raise SchedulerError(f"node {node} is busy; cannot take offline")
            self._set_flag("offline", pos, True)
        else:
            if self._flag("failed", pos):
                raise NodeOfflineError(
                    f"node {node} has failed; restore it before bringing online"
                )
            self._set_flag("offline", pos, False)

    def is_offline(self, node: str) -> bool:
        return self._flag("offline", self._position(node))

    def fail_node(self, node: str) -> None:
        """Record a hardware failure: offline now, and power management
        must not route to the node again until it is restored.

        The caller (the scheduler) releases any allocations on the node
        first — a failed node's cores are gone, not leaked.
        """
        pos = self._position(node)
        if self._freev[pos] != self._capv[pos]:
            raise SchedulerError(
                f"node {node} still holds allocations; requeue its jobs "
                f"before marking it failed"
            )
        self._set_flag("failed", pos, True)
        self._set_flag("offline", pos, True)
        self._set_flag("draining", pos, False)

    def restore_node(self, node: str) -> None:
        """Bring a failed (or offline/draining) node back into service."""
        pos = self._position(node)
        self._set_flag("failed", pos, False)
        self._set_flag("draining", pos, False)
        self._set_flag("offline", pos, False)

    def is_failed(self, node: str) -> bool:
        return self._flag("failed", self._position(node))

    def failed_nodes(self) -> list[str]:
        mask = self._mask("failed")
        return [n for p, n in enumerate(self._names) if mask[p]]

    def set_draining(self, node: str, draining: bool) -> None:
        """Start/stop a drain: no new allocations, running work finishes."""
        self._set_flag("draining", self._position(node), draining)

    def is_draining(self, node: str) -> bool:
        return self._flag("draining", self._position(node))

    def draining_nodes(self) -> list[str]:
        mask = self._mask("draining")
        return [n for p, n in enumerate(self._names) if mask[p]]

    def try_allocate(self, cores: int) -> Allocation | None:
        """First-fit-decreasing allocation across online nodes, or None.

        Packs the fullest nodes first to keep fragmentation low (what Maui's
        node-allocation policy does by default for core-scheduled clusters).
        """
        if cores <= 0:
            raise SchedulerError(f"cannot allocate {cores} cores")
        free = self._freev
        off = self._mask("offline")
        drain = self._mask("draining")
        candidates = sorted(
            (
                p
                for p in range(len(self._names))
                if not off[p] and not drain[p] and free[p] > 0
            ),
            key=lambda p: (-free[p], self._names[p]),
        )
        chunks: list[tuple[str, int]] = []
        positions: list[tuple[int, int]] = []
        remaining = cores
        for pos in candidates:
            take = min(free[pos], remaining)
            chunks.append((self._names[pos], take))
            positions.append((pos, take))
            remaining -= take
            if remaining == 0:
                break
        if remaining > 0:
            return None
        for pos, take in positions:
            free[pos] -= take
            # Mirror allocated cores into the fleet load column so
            # monitoring leaves read live load straight off the table.
            self._fleet.set_load(
                self._fidx[pos], float(self._capv[pos] - free[pos])
            )
        return Allocation(by_node=tuple(chunks))

    def release(self, allocation: Allocation) -> None:
        """Return an allocation's cores."""
        for node, count in allocation.by_node:
            pos = self._position(node)
            if self._freev[pos] + count > self._capv[pos]:
                raise SchedulerError(
                    f"double free on node {node}: {self._freev[pos]}+{count} "
                    f"> {self._capv[pos]}"
                )
            self._freev[pos] += count
            self._fleet.set_load(
                self._fidx[pos], float(self._capv[pos] - self._freev[pos])
            )

    def is_idle(self, node: str) -> bool:
        """True when no cores are allocated on the node (any flag state)."""
        pos = self._position(node)
        return self._freev[pos] == self._capv[pos]

    def busy_nodes(self) -> list[str]:
        """Nodes with at least one allocated core."""
        off = self._mask("offline")
        return [
            n
            for p, n in enumerate(self._names)
            if not off[p] and self._freev[p] < self._capv[p]
        ]

    def idle_nodes(self) -> list[str]:
        """Online nodes with all cores free."""
        off = self._mask("offline")
        return [
            n
            for p, n in enumerate(self._names)
            if not off[p] and self._freev[p] == self._capv[p]
        ]

    def state_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot of all per-node accounting and flags."""
        return {
            "capacity": dict(zip(self._names, self._capv)),
            "free": dict(zip(self._names, self._freev)),
            "offline": [
                n for p, n in enumerate(self._names) if self._flag("offline", p)
            ],
            "failed": self.failed_nodes(),
            "draining": self.draining_nodes(),
        }


@dataclass
class SchedulerStats:
    """Aggregate outcomes of a completed simulation."""

    completed: int = 0
    failed: int = 0
    makespan_s: float = 0.0
    total_core_seconds: float = 0.0
    total_wait_s: float = 0.0
    job_count: int = 0

    @property
    def mean_wait_s(self) -> float:
        return self.total_wait_s / self.job_count if self.job_count else 0.0

    def utilization(self, total_cores: int) -> float:
        """Delivered core-seconds over available core-seconds."""
        available = total_cores * self.makespan_s
        return self.total_core_seconds / available if available > 0 else 0.0


class BaseScheduler:
    """Event-driven scheduler core.

    Subclasses set :attr:`scheduler_name` and override
    :meth:`_schedulable_order` (queue policy) and :attr:`backfill`.
    """

    scheduler_name = "base"
    #: EASY backfill: allow jobs to jump the queue if they finish before the
    #: head job's reservation would start.
    backfill = False

    def __init__(
        self, resources: ClusterResources, *, kernel: SimKernel | None = None
    ) -> None:
        self.resources = resources
        self.kernel = kernel if kernel is not None else SimKernel()
        self.pending: list[Job] = []
        self.running: list[Job] = []
        self.finished: list[Job] = []
        #: pending completion events, one kernel handle per running job
        self._completions: dict[int, EventHandle] = {}
        self._completions_fired = 0
        #: hook called whenever cores free up (power manager listens here)
        self.on_idle_change = None
        #: hook called with each job right after it starts (final times set)
        self.on_job_start = None

    @property
    def now_s(self) -> float:
        """Current simulated time (the kernel clock)."""
        return self.kernel.now_s

    @now_s.setter
    def now_s(self, time_s: float) -> None:
        # Traces jump the clock forward between bursts.  Events due inside
        # the window (running jobs completing) fire on the way — the old
        # ad-hoc clock deferred them and then ran time backwards.
        self.kernel.run_until(time_s)

    # -- submission ---------------------------------------------------------------

    def submit(self, job: Job) -> Job:
        """qsub/sbatch: enqueue a job at the current simulated time."""
        if job.state is not JobState.PENDING:
            raise SchedulerError(f"job {job.name} was already submitted")
        if job.cores > self.resources.total_cores:
            raise SchedulerError(
                f"job {job.name} requests {job.cores} cores but the cluster "
                f"has only {self.resources.total_cores}"
            )
        job.submit_time_s = self.now_s
        self.pending.append(job)
        self.kernel.trace.emit(
            "job.submit", t_s=self.now_s, subsystem="scheduler",
            job=job.name, user=job.user, cores=job.cores,
        )
        if job.cores > self.resources.usable_cores:
            # The cluster has degraded below this job's needs (failed or
            # draining nodes): fail it now rather than let it starve —
            # the same policy crash_node applies to already-queued work.
            self._fail_unrunnable_pending(
                reason="insufficient usable cores at submit"
            )
        self._try_start_jobs()
        return job

    def cancel(self, job: Job) -> None:
        """qdel a pending job (running jobs run to completion here)."""
        if job in self.pending:
            self.pending.remove(job)
            job.state = JobState.CANCELLED
            self.finished.append(job)
            self.kernel.trace.emit(
                "job.cancel", t_s=self.now_s, subsystem="scheduler", job=job.name
            )
        else:
            raise SchedulerError(f"job {job.name} is not pending")

    # -- degradation (node failure and maintenance) --------------------------------

    def crash_node(self, node: str, *, reason: str = "node crash") -> list[Job]:
        """A node died under running work: requeue its jobs, fail the node.

        Torque/SLURM/SGE all requeue (re-runnable) jobs whose execution
        host vanished; the semantics preserved here: every affected job
        returns to PENDING with its original submit time (wait-time
        accounting keeps charging the queue), its completion event is
        cancelled, and the whole allocation — including chunks on
        surviving nodes — is released.  Pending jobs that can no longer
        ever fit the usable cores are failed rather than left to starve.
        Returns the requeued jobs.
        """
        self.resources.capacity_of(node)
        affected = [
            j
            for j in self.running
            if j.allocation is not None and node in j.allocation.node_names
        ]
        for job in affected:
            handle = self._completions.pop(job.job_id, None)
            if handle is not None and handle.active:
                self.kernel.cancel(handle)
            self.running.remove(job)
            assert job.allocation is not None
            self.resources.release(job.allocation)
            self._requeue(job, reason=reason)
        self.resources.fail_node(node)
        self._fail_unrunnable_pending(reason=f"{reason}: insufficient usable cores")
        if self.on_idle_change is not None:
            self.on_idle_change(self)
        self._try_start_jobs()
        return affected

    def recover_node(self, node: str) -> None:
        """A failed/offline node returned to service; resume scheduling."""
        self.resources.restore_node(node)
        if self.on_idle_change is not None:
            self.on_idle_change(self)
        self._try_start_jobs()

    def drain_node(
        self,
        node: str,
        *,
        reason: str = "maintenance",
        deadline_s: float | None = None,
    ) -> None:
        """pbsnodes -o / scontrol drain: stop routing work to the node.

        Running jobs finish; the drain completes (node offline) as soon as
        the node idles.  With ``deadline_s``, jobs still running when the
        deadline expires are force-requeued (emitting ``job.requeue``) so
        the drain is bounded — a rolling-update wave cannot hang forever
        behind one straggler job.
        """
        self.drain_nodes([node], reason=reason, deadline_s=deadline_s)

    def drain_nodes(
        self,
        nodes: list[str],
        *,
        reason: str = "maintenance",
        deadline_s: float | None = None,
    ) -> None:
        """Drain a batch of nodes under one (optional) shared deadline.

        The batch form of :meth:`drain_node`: one ``node.drain`` event per
        node, one deadline event and one idle-drain sweep for the whole
        batch — what a wave-sized drain needs at fleet scale.
        """
        if deadline_s is not None and deadline_s <= 0:
            raise SchedulerError(
                f"drain deadline must be positive, got {deadline_s}"
            )
        for node in nodes:
            self.resources.set_draining(node, True)
            self.kernel.trace.emit(
                "node.drain", t_s=self.now_s, subsystem="scheduler",
                node=node, reason=reason,
            )
        if deadline_s is not None and nodes:
            self.kernel.at(
                self.now_s + deadline_s,
                lambda batch=tuple(nodes): self._drain_deadline(batch),
                label="drain.deadline",
            )
        self._complete_drains()

    def _drain_deadline(self, nodes: tuple[str, ...]) -> None:
        """Deadline callback: force-requeue stragglers on draining nodes.

        Nodes whose drain already completed (or was cancelled) are left
        alone; for the rest, every running job touching them is requeued —
        ``try_allocate`` excludes draining nodes, so the work lands
        elsewhere — and the now-idle drains complete.
        """
        stragglers = frozenset(
            node
            for node in nodes
            if self.resources.is_draining(node) and not self.resources.is_idle(node)
        )
        if stragglers:
            affected = [
                j
                for j in self.running
                if j.allocation is not None
                and any(n in stragglers for n in j.allocation.node_names)
            ]
            for job in affected:
                handle = self._completions.pop(job.job_id, None)
                if handle is not None and handle.active:
                    self.kernel.cancel(handle)
                self.running.remove(job)
                assert job.allocation is not None
                self.resources.release(job.allocation)
                self._requeue(job, reason="drain deadline")
        self._complete_drains()
        self._try_start_jobs()

    def undrain_node(self, node: str) -> None:
        """Cancel a drain (and bring a drained-offline node back)."""
        if self.resources.is_failed(node):
            raise NodeOfflineError(
                f"node {node} has failed; recover it instead of undraining"
            )
        self.resources.set_draining(node, False)
        if self.resources.is_offline(node):
            self.resources.set_offline(node, False)
        self._try_start_jobs()

    def resubmit(self, job: Job) -> Job:
        """Give a FAILED-in-queue job another chance (supervisor API).

        Only jobs that never started qualify — they were failed because
        the degraded cluster could not hold them, not because they ran
        badly; once capacity returns the supervisor routes them back in.
        The job re-enters the queue as a fresh submission at the current
        time (its wait-time clock restarts — the old wait was charged to
        the failure, not the queue).
        """
        if job not in self.finished or job.state is not JobState.FAILED:
            raise SchedulerError(
                f"job {job.name} is not a failed finished job; cannot resubmit"
            )
        if job.start_time_s is not None:
            raise SchedulerError(
                f"job {job.name} already ran and failed; resubmit only "
                f"re-queues jobs that never started"
            )
        self.finished.remove(job)
        job.state = JobState.PENDING
        job.allocation = None
        job.end_time_s = None
        job.submit_time_s = self.now_s
        self.pending.append(job)
        self.kernel.trace.emit(
            "job.submit", t_s=self.now_s, subsystem="scheduler",
            job=job.name, user=job.user, cores=job.cores,
        )
        self._try_start_jobs()
        return job

    def _requeue(self, job: Job, *, reason: str) -> None:
        job.state = JobState.PENDING
        job.allocation = None
        job.start_time_s = None
        job.end_time_s = None
        self.pending.append(job)
        self.kernel.trace.emit(
            "job.requeue", t_s=self.now_s, subsystem="scheduler",
            job=job.name, reason=reason,
        )

    def _fail_unrunnable_pending(self, *, reason: str) -> None:
        """Fail pending jobs that no set of usable nodes can ever satisfy."""
        usable = self.resources.usable_cores
        for job in [j for j in self.pending if j.cores > usable]:
            self.pending.remove(job)
            job.state = JobState.FAILED
            self.finished.append(job)
            self.kernel.trace.emit(
                "job.end", t_s=self.now_s, subsystem="scheduler",
                job=job.name, state=job.state.value,
            )

    def _complete_drains(self) -> None:
        """Take idle draining nodes offline (their drain is done)."""
        for node in self.resources.draining_nodes():
            if not self.resources.is_offline(node) and self.resources.is_idle(node):
                self.resources.set_offline(node, True)

    # -- policy ------------------------------------------------------------------

    def _schedulable_order(self) -> list[Job]:
        """Pending jobs in the order the policy wants to start them."""
        raise NotImplementedError

    # -- engine -------------------------------------------------------------------

    def _start(self, job: Job, allocation: Allocation) -> None:
        job.state = JobState.RUNNING
        job.start_time_s = self.now_s
        job.allocation = allocation
        job.end_time_s = self.now_s + job.charged_runtime_s
        self.pending.remove(job)
        self.running.append(job)
        self._completions[job.job_id] = self.kernel.at(
            job.end_time_s,
            lambda job=job: self._on_job_end(job),
            label=f"job.end:{job.name}",
        )

    def reschedule_completion(self, job: Job) -> None:
        """Re-key a running job's completion event to ``job.end_time_s``.

        The first-class API for policies that shift a job's window after
        it started (boot delays, preemption models) — no private heap to
        mutate.
        """
        try:
            handle = self._completions[job.job_id]
        except KeyError:
            raise SchedulerError(
                f"job {job.name} has no pending completion event"
            ) from None
        assert job.end_time_s is not None
        self._completions[job.job_id] = self.kernel.reschedule(
            handle, job.end_time_s
        )

    def _on_job_end(self, job: Job) -> None:
        """Kernel callback: the completion event for one running job."""
        self._completions.pop(job.job_id, None)
        self._completions_fired += 1
        self.running.remove(job)
        assert job.allocation is not None
        self.resources.release(job.allocation)
        job.state = JobState.FAILED if job.exceeded_walltime else JobState.COMPLETED
        self.finished.append(job)
        self.kernel.trace.emit(
            "job.end", t_s=self.now_s, subsystem="scheduler",
            job=job.name, state=job.state.value,
        )
        self._complete_drains()
        if self.on_idle_change is not None:
            self.on_idle_change(self)
        self._try_start_jobs()

    def _earliest_start_for_head(self) -> float:
        """When the queue-head job could start, given running jobs end on
        schedule — the EASY-backfill reservation point."""
        order = self._schedulable_order()
        if not order:
            return self.now_s
        head = order[0]
        free = self.resources.free_cores()
        if free >= head.cores:
            return self.now_s
        ends = sorted((j.end_time_s or 0.0, j.cores) for j in self.running)
        for end_time, cores in ends:
            free += cores
            if free >= head.cores:
                return end_time
        return float("inf")

    def _try_start_jobs(self) -> None:
        """Start everything the policy allows right now."""
        progress = True
        while progress:
            progress = False
            order = self._schedulable_order()
            # The head's reservation must be computed BEFORE any tentative
            # allocation, or the backfill check reads corrupted free counts.
            reservation = self._earliest_start_for_head()
            for index, job in enumerate(order):
                if index > 0 and not self.backfill:
                    # Strict FIFO: only the head may start.
                    break
                if index > 0 and self.backfill:
                    # EASY: a backfilled job must not delay the head.
                    if self.now_s + job.charged_runtime_s > reservation:
                        continue
                allocation = self.resources.try_allocate(job.cores)
                if allocation is not None:
                    self._start(job, allocation)
                    # Emitted after _start returns so subclass adjustments
                    # (boot delays) are reflected in the traced times.
                    assert job.start_time_s is not None
                    self.kernel.trace.emit(
                        "job.start", t_s=job.start_time_s, subsystem="scheduler",
                        job=job.name, cores=job.cores, nodes=str(allocation),
                        wait_s=job.start_time_s - job.submit_time_s,
                    )
                    if self.on_job_start is not None:
                        self.on_job_start(job)
                    progress = True
                    break

    def state_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot of queues, allocations, and node flags.

        Pending completion events are captured as ``{job name: end time}``
        (their callbacks are closures the replayed world rebuilds itself).
        """
        completions = {}
        for job in self.running:
            handle = self._completions.get(job.job_id)
            if handle is not None and handle.active:
                completions[job.name] = handle.time_s
        return {
            "resources": self.resources.state_dict(),
            "pending": [j.state_dict() for j in self.pending],
            "running": [j.state_dict() for j in self.running],
            "finished": [j.state_dict() for j in self.finished],
            "completions": dict(sorted(completions.items())),
            "completions_fired": self._completions_fired,
        }

    def step(self) -> bool:
        """Advance to the next job completion; returns False when idle.

        Other kernel events due earlier (monitoring polls, co-simulated
        subsystems) fire along the way — the scheduler no longer owns the
        timeline, it only rides it.
        """
        if not self._completions:
            return False
        seen = self._completions_fired
        while self.kernel.step():
            if self._completions_fired > seen:
                return True
        return False

    def run_to_completion(self) -> SchedulerStats:
        """Drain the queue and return aggregate statistics."""
        while self.step():
            pass
        if self.pending:
            raise SchedulerError(
                f"{len(self.pending)} job(s) stuck pending (policy bug?)"
            )
        stats = SchedulerStats()
        real_jobs = [j for j in self.finished if j.state is not JobState.CANCELLED]
        for job in real_jobs:
            stats.job_count += 1
            if job.start_time_s is not None:
                # Jobs failed before ever starting (crashed capacity) have
                # no wait or machine time to account.
                stats.total_wait_s += job.wait_time_s
                stats.total_core_seconds += job.core_seconds
            if job.state is JobState.COMPLETED:
                stats.completed += 1
            else:
                stats.failed += 1
            stats.makespan_s = max(stats.makespan_s, job.end_time_s or 0.0)
        return stats

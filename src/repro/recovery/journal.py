"""The write-ahead journal: intent before mutation, always.

Crash consistency in one rule: a subsystem about to mutate durable state
(the RPM database, the Rocks hosts table, a mirror's package store) first
appends an *intent* record to a :class:`Journal`, applies the mutation,
then marks the record *applied*; when every operation of a logical
transaction has landed, the transaction is *committed*.  A crash at any
instant therefore leaves one of three recoverable shapes:

* no record — the mutation never started; nothing to do;
* an intent that was never applied — the mutation may or may not have
  half-happened; the undo handler makes it definitely-not-happened;
* applied-but-uncommitted records — the transaction is incomplete; undo
  handlers roll the applied prefix back in **strict reverse order** (or a
  redo handler replays the whole transaction, for idempotent operations
  like a mirror resync).

There are no phantom packages and no half-registered nodes afterwards —
the paper's one-part-time-admin clusters depend on exactly this property
surviving a frontend power cut.

The journal is deliberately dependency-free (``errors`` only): the RPM
transaction engine imports it from far below the simulation stack.  Give
it a ``path`` and every record is *appended* to a JSONL file as it is
written — the write-ahead part — so a separate process can
:meth:`Journal.load` the log after a crash and drive recovery.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Mapping

from ..errors import JournalError

__all__ = [
    "OpState",
    "TxnState",
    "JournalOp",
    "JournalTxn",
    "Journal",
    "RecoveryHandler",
    "recover_incomplete",
]


class TxnState(str, Enum):
    """Lifecycle of one journaled transaction."""

    OPEN = "open"                # in progress (or interrupted by a crash)
    COMMITTED = "committed"      # every operation landed
    ABORTED = "aborted"          # cleanly abandoned by its owner pre-crash
    ROLLED_BACK = "rolled-back"  # recovery undid the applied prefix
    REPLAYED = "replayed"        # recovery re-ran the whole transaction


class OpState(str, Enum):
    """Lifecycle of one journaled operation."""

    INTENT = "intent"    # recorded, mutation not yet confirmed
    APPLIED = "applied"  # mutation confirmed done
    UNDONE = "undone"    # recovery reversed it


@dataclass
class JournalOp:
    """One intended (then applied, then possibly undone) mutation.

    ``payload`` is the durable JSON record; ``obj`` is an optional
    in-process handle (e.g. the erased :class:`~repro.rpm.package.Package`
    an undo must re-install) that never leaves the process — after a real
    crash, undo handlers must reconstruct what they need from ``payload``.
    """

    seq: int
    op: str
    payload: dict[str, Any]
    state: OpState = OpState.INTENT
    obj: Any = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "op": self.op,
            "payload": dict(self.payload),
            "state": self.state.value,
        }


@dataclass
class JournalTxn:
    """One logical transaction: an ordered run of journaled operations."""

    txn_id: int
    kind: str
    meta: dict[str, Any] = field(default_factory=dict)
    state: TxnState = TxnState.OPEN
    ops: list[JournalOp] = field(default_factory=list)

    @property
    def open(self) -> bool:
        return self.state is TxnState.OPEN

    def applied_ops(self) -> list[JournalOp]:
        """Operations confirmed applied, in application order."""
        return [op for op in self.ops if op.state is OpState.APPLIED]

    def to_dict(self) -> dict[str, Any]:
        return {
            "txn_id": self.txn_id,
            "kind": self.kind,
            "meta": dict(self.meta),
            "state": self.state.value,
            "ops": [op.to_dict() for op in self.ops],
        }


class Journal:
    """An append-only intent log shared by any number of subsystems.

    In-memory always; give ``path`` to also append each record to a JSONL
    write-ahead file the moment it is written (before the caller mutates
    anything — the ordering crash consistency rests on).
    """

    def __init__(self, *, path=None) -> None:
        self.path = pathlib.Path(path) if path is not None else None
        self._txns: dict[int, JournalTxn] = {}
        self._next_txn = 1
        self._next_op = 1
        if self.path is not None and not self.path.exists():
            self.path.write_text("")

    # -- the write-ahead file --------------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        if self.path is None:
            return
        with self.path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")

    @classmethod
    def load(cls, path) -> "Journal":
        """Rebuild a journal by replaying its write-ahead file.

        This is the post-crash entry point: the reconstructed journal's
        open transactions are exactly the work in flight when the process
        died.  (The rebuilt journal does not re-append while loading.)
        """
        journal = cls()
        text = pathlib.Path(path).read_text()
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise JournalError(
                    f"{path}: line {lineno} is not JSON ({exc.msg})"
                ) from exc
            journal._replay_record(record, f"{path}:{lineno}")
        journal.path = pathlib.Path(path)
        return journal

    def _replay_record(self, record: Mapping[str, Any], where: str) -> None:
        event = record.get("event")
        if event == "begin":
            txn = JournalTxn(
                txn_id=int(record["txn_id"]),
                kind=str(record["kind"]),
                meta=dict(record.get("meta", {})),
            )
            self._txns[txn.txn_id] = txn
            self._next_txn = max(self._next_txn, txn.txn_id + 1)
        elif event == "intent":
            txn = self._require_txn(int(record["txn_id"]))
            op = JournalOp(
                seq=int(record["seq"]),
                op=str(record["op"]),
                payload=dict(record.get("payload", {})),
            )
            txn.ops.append(op)
            self._next_op = max(self._next_op, op.seq + 1)
        elif event in ("applied", "undone"):
            txn = self._require_txn(int(record["txn_id"]))
            seq = int(record["seq"])
            for op in txn.ops:
                if op.seq == seq:
                    op.state = OpState(event)
                    break
            else:
                raise JournalError(f"{where}: {event} for unknown op seq {seq}")
        elif event in ("commit", "abort", "rolled-back", "replayed"):
            txn = self._require_txn(int(record["txn_id"]))
            txn.state = {
                "commit": TxnState.COMMITTED,
                "abort": TxnState.ABORTED,
                "rolled-back": TxnState.ROLLED_BACK,
                "replayed": TxnState.REPLAYED,
            }[event]
        else:
            raise JournalError(f"{where}: unknown journal event {event!r}")

    def _require_txn(self, txn_id: int) -> JournalTxn:
        try:
            return self._txns[txn_id]
        except KeyError:
            raise JournalError(f"unknown transaction id {txn_id}") from None

    # -- writing ----------------------------------------------------------------

    def begin(self, kind: str, **meta: Any) -> JournalTxn:
        """Open a transaction; returns its handle."""
        txn = JournalTxn(txn_id=self._next_txn, kind=kind, meta=dict(meta))
        self._next_txn += 1
        self._txns[txn.txn_id] = txn
        self._append(
            {"event": "begin", "txn_id": txn.txn_id, "kind": kind, "meta": txn.meta}
        )
        return txn

    def intent(
        self, txn: JournalTxn, op: str, *, obj: Any = None, **payload: Any
    ) -> JournalOp:
        """Record the intent to perform ``op`` — call BEFORE mutating."""
        if not txn.open:
            raise JournalError(
                f"transaction {txn.txn_id} is {txn.state.value}; cannot add ops"
            )
        record = JournalOp(seq=self._next_op, op=op, payload=dict(payload), obj=obj)
        self._next_op += 1
        txn.ops.append(record)
        self._append(
            {
                "event": "intent",
                "txn_id": txn.txn_id,
                "seq": record.seq,
                "op": op,
                "payload": record.payload,
            }
        )
        return record

    def applied(self, txn: JournalTxn, op: JournalOp) -> None:
        """Confirm an intended mutation landed — call AFTER mutating."""
        if op.state is not OpState.INTENT:
            raise JournalError(f"op {op.seq} is {op.state.value}; cannot apply")
        op.state = OpState.APPLIED
        self._append({"event": "applied", "txn_id": txn.txn_id, "seq": op.seq})

    def undone(self, txn: JournalTxn, op: JournalOp) -> None:
        """Record that recovery made an operation definitely-not-in-effect.

        Valid from APPLIED (the normal rollback path) *and* from INTENT —
        a crash between intent and applied leaves the mutation in an
        unknown state, and recovery's job is to force it to not-happened.
        """
        if op.state is OpState.UNDONE:
            raise JournalError(f"op {op.seq} is already undone")
        op.state = OpState.UNDONE
        self._append({"event": "undone", "txn_id": txn.txn_id, "seq": op.seq})

    def commit(self, txn: JournalTxn) -> None:
        """Close a transaction as fully applied."""
        if not txn.open:
            raise JournalError(
                f"transaction {txn.txn_id} is {txn.state.value}; cannot commit"
            )
        txn.state = TxnState.COMMITTED
        self._append({"event": "commit", "txn_id": txn.txn_id})

    def rolled_back(self, txn: JournalTxn) -> None:
        """Close an open transaction as recovered-by-rollback."""
        if not txn.open:
            raise JournalError(
                f"transaction {txn.txn_id} is {txn.state.value}; "
                f"cannot mark rolled back"
            )
        txn.state = TxnState.ROLLED_BACK
        self._append({"event": "rolled-back", "txn_id": txn.txn_id})

    def replayed(self, txn: JournalTxn) -> None:
        """Close an open transaction as recovered-by-replay."""
        if not txn.open:
            raise JournalError(
                f"transaction {txn.txn_id} is {txn.state.value}; "
                f"cannot mark replayed"
            )
        txn.state = TxnState.REPLAYED
        self._append({"event": "replayed", "txn_id": txn.txn_id})

    def abort(self, txn: JournalTxn, *, note: str = "") -> None:
        """Close a transaction as cleanly abandoned (its owner undid or
        deliberately kept any partial effects — e.g. a resumable mirror
        sync keeps fetched packages on purpose)."""
        if not txn.open:
            raise JournalError(
                f"transaction {txn.txn_id} is {txn.state.value}; cannot abort"
            )
        txn.state = TxnState.ABORTED
        if note:
            txn.meta["abort_note"] = note
        self._append({"event": "abort", "txn_id": txn.txn_id})

    # -- reading ---------------------------------------------------------------

    def transactions(self, kind: str | None = None) -> list[JournalTxn]:
        """All transactions (optionally filtered by kind), oldest first."""
        out = [self._txns[i] for i in sorted(self._txns)]
        if kind is not None:
            out = [t for t in out if t.kind == kind]
        return out

    def open_txns(self, kind: str | None = None) -> list[JournalTxn]:
        """Transactions a crash (or a bug) left in flight, oldest first."""
        return [t for t in self.transactions(kind) if t.open]

    def __len__(self) -> int:
        return len(self._txns)

    def state_dict(self) -> dict[str, Any]:
        """JSON-friendly snapshot of the whole journal (checkpoint use)."""
        return {"txns": [t.to_dict() for t in self.transactions()]}


@dataclass(frozen=True)
class RecoveryHandler:
    """How to resolve one transaction *kind* found open after a crash.

    ``mode`` picks the strategy: ``"rollback"`` undoes the applied prefix
    in strict reverse order via ``undo(op)``; ``"replay"`` re-runs the
    whole transaction via ``redo(txn)`` (the operation must be idempotent,
    like a content-addressed mirror sync).
    """

    mode: str  # "rollback" | "replay"
    undo: Callable[[JournalOp], None] | None = None
    redo: Callable[[JournalTxn], None] | None = None

    def __post_init__(self) -> None:
        if self.mode not in ("rollback", "replay"):
            raise JournalError(f"unknown recovery mode {self.mode!r}")
        if self.mode == "rollback" and self.undo is None:
            raise JournalError("rollback handler needs an undo callable")
        if self.mode == "replay" and self.redo is None:
            raise JournalError("replay handler needs a redo callable")


def recover_incomplete(
    journal: Journal,
    handlers: Mapping[str, RecoveryHandler],
    *,
    strict: bool = True,
) -> list[JournalTxn]:
    """Resolve every open transaction through its kind's handler.

    Rollback handlers see applied operations newest-first (strict reverse
    of application order — the only order that unwinds dependent
    mutations safely).  Returns the transactions that were resolved.
    With ``strict`` (the default) an open transaction whose kind has no
    handler raises :class:`~repro.errors.JournalError` — silently leaving
    phantom state behind is the failure mode this module exists to kill.
    """
    resolved = []
    for txn in journal.open_txns():
        handler = handlers.get(txn.kind)
        if handler is None:
            if strict:
                raise JournalError(
                    f"open transaction {txn.txn_id} ({txn.kind}) has no "
                    f"recovery handler"
                )
            continue
        if handler.mode == "rollback":
            assert handler.undo is not None
            for op in reversed(txn.applied_ops()):
                handler.undo(op)
                journal.undone(txn, op)
            journal.rolled_back(txn)
        else:
            assert handler.redo is not None
            handler.redo(txn)
            journal.replayed(txn)
        resolved.append(txn)
    return resolved

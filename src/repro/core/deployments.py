"""The Table 3 deployment registry, rebuilt in simulation.

Table 3 lists the campus clusters deployed with XSEDE Campus Bridging team
involvement: site, nodes, cores, Rpeak, and notes.  Section 4 adds the
adoption split: Howard, Michigan State and Marshall built from the ground up
with the XCBC Rocks media; Montana State and Hawaii used the package
repository (XNIT).  The IU LittleFe and Limulus rows are the Section 5
machines.

Each :class:`SiteDeployment` can be **rebuilt**: hardware from the parts
catalogue (calibrated CPUs for the unnamed campus silicon — see
:func:`~repro.hardware.cpu.calibrated_cpu`'s docstring for the substitution
policy), then software through the site's actual adoption path (XCBC
from-scratch or XNIT retrofit).  The Table 3 bench checks the rebuilt Rpeak
against the published numbers and the published totals (304 nodes, 2708
cores, 49.61 TFLOPS).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..distro.distribution import CENTOS_6_5
from ..errors import DeploymentError
from ..hardware.chassis import Machine, RACK_1U, populate
from ..hardware.cooling import CoolerModel
from ..hardware.cpu import calibrated_cpu
from ..hardware.gpu import calibrated_gpu
from ..hardware.memory import DDR3_8G_UDIMM
from ..hardware.motherboard import MotherboardModel
from ..hardware.nic import GIGE_ONBOARD
from ..hardware.node import Node, NodeRole, assemble_node
from ..hardware.power import ATX_450W, PsuModel
from ..hardware.builder import build_limulus_hpc200, build_littlefe_modified

__all__ = [
    "AdoptionPath",
    "SiteDeployment",
    "TABLE3_SITES",
    "build_synthetic_fleet",
    "rebuild_site_hardware",
    "table3_totals",
    "PETAFLOPS_GOAL_2020_GFLOPS",
]

#: "By the end of 2020 ... exceed half a PetaFLOPS" (Section 4).
PETAFLOPS_GOAL_2020_GFLOPS = 500_000.0


class AdoptionPath(str, Enum):
    """How a site adopted the toolkit (Section 4)."""

    XCBC = "xcbc-from-scratch"
    XNIT = "xnit-repository"


@dataclass(frozen=True)
class SiteDeployment:
    """One Table 3 row."""

    site: str
    nodes: int
    cores: int
    rpeak_tflops: float
    adoption: AdoptionPath
    other_info: str = ""
    gpu_nodes: int = 0
    gpu_cuda_cores: int = 0

    def __post_init__(self) -> None:
        if self.nodes <= 0 or self.cores <= 0:
            raise DeploymentError(f"{self.site}: nodes/cores must be positive")
        if self.cores % self.nodes != 0:
            raise DeploymentError(
                f"{self.site}: {self.cores} cores do not divide evenly over "
                f"{self.nodes} nodes"
            )

    @property
    def cores_per_node(self) -> int:
        return self.cores // self.nodes

    @property
    def rpeak_gflops(self) -> float:
        return self.rpeak_tflops * 1000.0


#: Table 3, verbatim (plus the Section 4 adoption split).
TABLE3_SITES: tuple[SiteDeployment, ...] = (
    SiteDeployment(
        site="University of Kansas",
        nodes=220, cores=1760, rpeak_tflops=26.0,
        adoption=AdoptionPath.XCBC,
        other_info="Will be in production in summer 2015",
    ),
    SiteDeployment(
        site="Montana State University",
        nodes=36, cores=576, rpeak_tflops=11.98,
        adoption=AdoptionPath.XNIT,
        other_info="300 TB of Lustre storage",
    ),
    SiteDeployment(
        site="Marshall University",
        nodes=22, cores=264, rpeak_tflops=6.0,
        adoption=AdoptionPath.XCBC,
        other_info="8 GPU Nodes, 3584 CUDA Cores",
        gpu_nodes=8, gpu_cuda_cores=3584,
    ),
    SiteDeployment(
        site="Pacific Basin Agricultural Research Center (Univ. of Hawaii - Hilo)",
        nodes=16, cores=80, rpeak_tflops=4.3,
        adoption=AdoptionPath.XNIT,
        other_info="40TB storage, 60TB scratch",
    ),
    SiteDeployment(
        site="Indiana University (LittleFe)",
        nodes=6, cores=12, rpeak_tflops=0.54,
        adoption=AdoptionPath.XCBC,
        other_info="LittleFe Teaching Cluster",
    ),
    SiteDeployment(
        site="Indiana University (Limulus)",
        nodes=4, cores=16, rpeak_tflops=0.79,
        adoption=AdoptionPath.XNIT,
        other_info="Limulus HPC 200 Cluster",
    ),
)


#: Section 4's adopter narrative, beyond the Table 3 rows: sites that ran a
#: prior management system and were "taken down and rebuilt from scratch
#: with XCBC".
SECTION4_REBUILT_SITES: tuple[str, ...] = (
    "Howard University",       # "operated by a professor of chemistry ...
                               # rebuilt from scratch with XCBC, to the
                               # significant satisfaction of the professor"
    "Marshall University",     # "leveraged the XCBC to replace a prior
                               # cluster management system"
)


def teardown_and_rebuild(machine, *, prior_vendor_packages=None):
    """The Howard/Marshall story: tear a managed cluster down, rebuild with
    XCBC from scratch.

    Builds the *prior* cluster (an :class:`ExistingCluster` under some
    other management system), discards its software state entirely — a
    bare-metal reinstall keeps nothing — and runs the XCBC installer on the
    same hardware.  Returns ``(prior cluster, XCBC build report)`` so
    callers can verify the old stack is gone and the new audit is clean.
    """
    from ..rpm.package import Package
    from .machines import build_existing_cluster
    from .xcbc import build_xcbc_cluster

    prior_stack = prior_vendor_packages or (
        Package(
            name="prior-cluster-manager",
            version="3.2",
            category="vendor",
            summary="the previous management system",
            commands=("pcm-admin",),
            services=("pcmd",),
        ),
    )
    prior = build_existing_cluster(machine, vendor_packages=tuple(prior_stack))
    # Bare-metal teardown: power-cycle the hardware; nothing carries over.
    for node in machine.nodes:
        node.powered_on = True
    report = build_xcbc_cluster(machine, include_optional_rolls=False)
    return prior, report


def capacity_goal_projection(
    *,
    start_year: float = 2015.5,
    goal_year: float = 2020.0,
) -> tuple[float, float]:
    """The Section 4 goal, quantified.

    "By the end of 2020, nearing the end of the second XSEDE funding, our
    goal is to have the aggregate processing capacity of the clusters making
    use of XCBC and XNIT exceed half a PetaFLOPS."

    Returns ``(required growth factor, required annual growth rate)`` from
    the Table 3 aggregate to the goal — the number the Campus Bridging team
    implicitly signed up for (about 10x, ~67 %/year).
    """
    if goal_year <= start_year:
        raise DeploymentError("goal year must be after the start year")
    _nodes, _cores, tflops = table3_totals()
    current_gflops = tflops * 1000.0
    factor = PETAFLOPS_GOAL_2020_GFLOPS / current_gflops
    years = goal_year - start_year
    annual = factor ** (1.0 / years) - 1.0
    return factor, annual


def table3_totals() -> tuple[int, int, float]:
    """The published totals row: (nodes, cores, Rpeak TFLOPS)."""
    return (
        sum(s.nodes for s in TABLE3_SITES),
        sum(s.cores for s in TABLE3_SITES),
        round(sum(s.rpeak_tflops for s in TABLE3_SITES), 2),
    )


def _server_board(socket: str) -> MotherboardModel:
    """A generic dual-NIC server board matched to a calibrated CPU socket."""
    return MotherboardModel(
        model=f"generic server board ({socket})",
        form_factor="ATX",
        socket=socket,
        dimm_slots=8,
        msata_slots=0,
        sata_ports=6,
        nics=(GIGE_ONBOARD, GIGE_ONBOARD),
        cpu_clearance_mm=80.0,
        power_watts=30.0,
        price_usd=400.0,
    )


_SERVER_COOLER = CoolerModel(
    model="2U server cooler", height_mm=64.0, max_tdp_watts=150.0,
    power_watts=6.0, price_usd=25.0,
)

_SERVER_PSU = PsuModel(
    model="server 1100W PSU", rating_watts=1100.0, efficiency=0.92, price_usd=180.0
)


def rebuild_site_hardware(site: SiteDeployment) -> Machine:
    """Rebuild a site's hardware so its Rpeak matches the published figure.

    The two IU rows rebuild as the actual Section 5 machines; campus sites
    get rack nodes around a calibrated CPU (and, for Marshall, calibrated
    GPUs distributed over the stated GPU-node count).
    """
    if "LittleFe" in site.other_info:
        return build_littlefe_modified("littlefe-iu").machine
    if "Limulus" in site.other_info:
        return build_limulus_hpc200("limulus-hpc200").machine

    cpu_rpeak_gflops = site.rpeak_gflops
    gpus_per_node: dict[int, int] = {}
    gpu_model = None
    if site.gpu_nodes:
        # Split the published Rpeak between CPU cores and the GPU pool using
        # a Westmere-class CPU contribution (4 flops/cycle at 2.8 GHz, which
        # matches Section 4's "2.8TF theoretical" description of Marshall's
        # CPU partition); GPUs absorb the remainder.
        cpu_rpeak_gflops = site.cores * 2.8 * 4
        gpu_total = site.rpeak_gflops - cpu_rpeak_gflops
        if gpu_total <= 0:
            raise DeploymentError(f"{site.site}: GPU share is non-positive")
        per_gpu = gpu_total / site.gpu_nodes
        gpu_model = calibrated_gpu(
            f"{site.site} GPU",
            cuda_cores=site.gpu_cuda_cores // site.gpu_nodes,
            target_rpeak_gflops=per_gpu,
        )
        for i in range(site.gpu_nodes):
            gpus_per_node[site.nodes - 1 - i] = 1  # GPUs in the last racks

    per_socket = cpu_rpeak_gflops / site.nodes
    flops_per_cycle = 4 if site.gpu_nodes else 8
    cpu = calibrated_cpu(
        f"{site.site} CPU",
        cores=site.cores_per_node,
        target_rpeak_gflops=per_socket,
        flops_per_cycle=flops_per_cycle,
    )
    board = _server_board(cpu.socket)

    slug = "".join(w[0] for w in site.site.split()[:3]).lower()
    nodes: list[Node] = []
    from ..hardware.storage import WD_RED_2TB

    for i in range(site.nodes):
        gpu_count = gpus_per_node.get(i, 0)
        nodes.append(
            assemble_node(
                f"{slug}-n{i}",
                role=NodeRole.FRONTEND if i == 0 else NodeRole.COMPUTE,
                board=board,
                cpu=cpu,
                dimms=(DDR3_8G_UDIMM,) * 4,
                storage=(WD_RED_2TB,),
                cooler=_SERVER_COOLER,
                psu=_SERVER_PSU,
                gpus=(gpu_model,) * gpu_count if gpu_model else (),
            )
        )
    # Racks are one node per 1U chassis; model the site as one Machine with
    # a rack "chassis" large enough for the node count.
    from ..hardware.chassis import ChassisModel

    rack = ChassisModel(
        model=f"{site.site} rack",
        slots=site.nodes,
        max_board_form_factor="ATX",
        weight_lb=30.0 * site.nodes,
        portable=False,
        shared_psu=None,
        price_usd=150.0 * ((site.nodes + 41) // 42),
    )
    return populate(slug, rack, nodes)


def build_synthetic_fleet(
    node_count: int, *, cores_per_node: int = 8, name: str = "fleet"
) -> Machine:
    """A synthetic fleet-scale site: ``node_count`` uniform rack nodes
    (node 0 is the frontend) around one calibrated Westmere-class CPU.

    Table 3 tops out at Kansas's 220 nodes; the scale benches and the
    wave-install path need sites an order of magnitude past that.  This
    builds them the same way :func:`rebuild_site_hardware` builds a campus
    row — same parts catalogue, same ``populate`` wiring — just without a
    published Rpeak to calibrate against (2.8 GHz x 8 flops/cycle, the
    Westmere figure the Marshall split uses).
    """
    if node_count < 2:
        raise DeploymentError(
            f"{name}: a fleet needs a frontend plus at least one compute "
            f"node, got {node_count} node(s)"
        )
    if cores_per_node <= 0:
        raise DeploymentError(f"{name}: cores per node must be positive")
    cpu = calibrated_cpu(
        f"{name} CPU",
        cores=cores_per_node,
        target_rpeak_gflops=cores_per_node * 2.8 * 8,
        flops_per_cycle=8,
    )
    board = _server_board(cpu.socket)
    from ..hardware.storage import WD_RED_2TB

    nodes = [
        assemble_node(
            f"{name}-n{i}",
            role=NodeRole.FRONTEND if i == 0 else NodeRole.COMPUTE,
            board=board,
            cpu=cpu,
            dimms=(DDR3_8G_UDIMM,) * 4,
            storage=(WD_RED_2TB,),
            cooler=_SERVER_COOLER,
            psu=_SERVER_PSU,
        )
        for i in range(node_count)
    ]
    from ..hardware.chassis import ChassisModel

    rack = ChassisModel(
        model=f"{name} rack",
        slots=node_count,
        max_board_form_factor="ATX",
        weight_lb=30.0 * node_count,
        portable=False,
        shared_psu=None,
        price_usd=150.0 * ((node_count + 41) // 42),
    )
    return populate(name, rack, nodes)

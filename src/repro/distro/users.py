"""User/group database for a simulated host.

Cluster-wide uniform users are one of the things Rocks manages centrally
(the frontend's database pushes accounts to compute nodes); the campus
bridging story also cares about a researcher's account moving between
clusters with their environment intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import UserError

__all__ = ["User", "Group", "UserDatabase", "FIRST_USER_UID"]

#: RHEL-6 convention: system accounts below 500, people from 500 up.
FIRST_USER_UID = 500


@dataclass
class Group:
    """A POSIX group."""

    name: str
    gid: int
    members: set[str] = field(default_factory=set)


@dataclass
class User:
    """A POSIX account."""

    name: str
    uid: int
    gid: int
    home: str
    shell: str = "/bin/bash"
    system: bool = False
    #: environment-modules the user loads in their profile; this is the
    #: portability payload the compatibility audit checks
    profile_modules: list[str] = field(default_factory=list)


class UserDatabase:
    """The /etc/passwd + /etc/group of one host."""

    def __init__(self) -> None:
        self._users: dict[str, User] = {}
        self._groups: dict[str, Group] = {}
        self._next_uid = FIRST_USER_UID
        self._next_system_uid = 100
        self._next_gid = FIRST_USER_UID
        self._next_system_gid = 100
        # root always exists
        self._groups["root"] = Group("root", 0, {"root"})
        self._users["root"] = User("root", 0, 0, "/root", system=True)

    # -- groups -------------------------------------------------------------

    def add_group(self, name: str, *, system: bool = False) -> Group:
        """Create a group, allocating the next free gid."""
        if name in self._groups:
            raise UserError(f"group exists: {name}")
        gid = self._alloc_gid(system)
        group = Group(name, gid)
        self._groups[name] = group
        return group

    def get_group(self, name: str) -> Group:
        try:
            return self._groups[name]
        except KeyError:
            raise UserError(f"no such group: {name}") from None

    # -- users --------------------------------------------------------------

    def add_user(
        self,
        name: str,
        *,
        system: bool = False,
        home: str | None = None,
        shell: str = "/bin/bash",
    ) -> User:
        """Create an account plus its primary group (useradd semantics)."""
        if name in self._users:
            raise UserError(f"user exists: {name}")
        group = self._groups.get(name) or self.add_group(name, system=system)
        uid = self._alloc_id(system)
        user = User(
            name=name,
            uid=uid,
            gid=group.gid,
            home=home or (f"/var/lib/{name}" if system else f"/home/{name}"),
            shell=shell,
            system=system,
        )
        self._users[name] = user
        group.members.add(name)
        return user

    def get_user(self, name: str) -> User:
        try:
            return self._users[name]
        except KeyError:
            raise UserError(f"no such user: {name}") from None

    def has_user(self, name: str) -> bool:
        return name in self._users

    def remove_user(self, name: str) -> None:
        """Delete an account (root is protected)."""
        if name == "root":
            raise UserError("cannot remove root")
        user = self.get_user(name)
        del self._users[name]
        for group in self._groups.values():
            group.members.discard(name)

    def users(self) -> list[User]:
        """All accounts sorted by uid."""
        return sorted(self._users.values(), key=lambda u: u.uid)

    def regular_users(self) -> list[User]:
        """Human accounts only."""
        return [u for u in self.users() if not u.system and u.name != "root"]

    def _alloc_id(self, system: bool) -> int:
        if system:
            value = self._next_system_uid
            self._next_system_uid += 1
        else:
            value = self._next_uid
            self._next_uid += 1
        return value

    def _alloc_gid(self, system: bool) -> int:
        if system:
            value = self._next_system_gid
            self._next_system_gid += 1
        else:
            value = self._next_gid
            self._next_gid += 1
        return value

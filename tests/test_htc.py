"""HTCondor substrate tests: matchmaking, fair share, scavenging, eviction."""

import pytest

from repro.htc import (
    ClassAd,
    Condition,
    CondorPool,
    HtcError,
    HtcJob,
    HtcJobState,
    Op,
    Requirements,
    pool_from_cluster,
)


def job(name, owner="grad", cycles=2, memory=512, requirements=()):
    return HtcJob(
        ad=ClassAd(
            name,
            attributes={"RequestMemory": memory},
            requirements=Requirements(tuple(requirements)),
        ),
        owner=owner,
        runtime_cycles=cycles,
    )


class TestClassAds:
    def test_condition_ops(self):
        ad = ClassAd("m", attributes={"Memory": 4096, "Arch": "X86_64"})
        assert Condition("Memory", Op.GE, 2048).evaluate(ad)
        assert not Condition("Memory", Op.LT, 2048).evaluate(ad)
        assert Condition("Arch", Op.EQ, "X86_64").evaluate(ad)
        assert Condition("Arch", Op.NE, "ARM").evaluate(ad)

    def test_missing_attribute_is_false(self):
        ad = ClassAd("m", attributes={})
        assert not Condition("Memory", Op.GE, 1).evaluate(ad)

    def test_type_mismatch_is_false(self):
        ad = ClassAd("m", attributes={"Memory": "lots"})
        assert not Condition("Memory", Op.GE, 1).evaluate(ad)

    def test_symmetric_match(self):
        machine = ClassAd(
            "slot1@n1",
            attributes={"Memory": 4096},
            requirements=Requirements(
                (Condition("RequestMemory", Op.LE, 2048),)
            ),
        )
        small = ClassAd(
            "job-small",
            attributes={"RequestMemory": 512},
            requirements=Requirements((Condition("Memory", Op.GE, 1024),)),
        )
        hog = ClassAd("job-hog", attributes={"RequestMemory": 4096})
        assert small.matches(machine)
        assert not hog.matches(machine)  # machine refuses big requests

    def test_rank_orders_candidates(self):
        picky = ClassAd("j", rank_attribute="Memory")
        big = ClassAd("big", attributes={"Memory": 8192})
        small = ClassAd("small", attributes={"Memory": 1024})
        assert picky.rank_of(big) > picky.rank_of(small)

    def test_requirements_render(self):
        req = Requirements((Condition("Memory", Op.GE, 1024),))
        assert "Memory >= 1024" in str(req)
        assert str(Requirements()) == "TRUE"


class TestPool:
    def make_pool(self):
        pool = CondorPool()
        pool.add_dedicated_machine("node1", cores=2, memory_mb=4096)
        pool.add_dedicated_machine("node2", cores=2, memory_mb=4096)
        return pool

    def test_slots_per_core(self):
        assert self.make_pool().slot_count() == 4

    def test_duplicate_slot_rejected(self):
        pool = self.make_pool()
        with pytest.raises(HtcError):
            pool.add_dedicated_machine("node1", cores=1, memory_mb=1024)

    def test_drain_simple_queue(self):
        pool = self.make_pool()
        for i in range(10):
            pool.submit(job(f"t{i}", cycles=2))
        cycles = pool.run_until_drained()
        assert len(pool.completed) == 10
        # 10 jobs x 2 cycles over 4 slots; freed slots rematch on the NEXT
        # negotiation cycle (like the real negotiator), so 3 waves x 2 = 6
        assert cycles == 6

    def test_requirements_respected(self):
        pool = self.make_pool()
        fussy = job(
            "needs-ram",
            memory=512,
            requirements=[Condition("Memory", Op.GE, 100000)],
        )
        pool.submit(fussy)
        with pytest.raises(HtcError, match="unmatchable|did not drain"):
            pool.run_until_drained(max_cycles=5)

    def test_fair_share_interleaves_users(self):
        pool = CondorPool()
        pool.add_dedicated_machine("node1", cores=1, memory_mb=4096)
        flood = [pool.submit(job(f"f{i}", owner="flooder")) for i in range(5)]
        fair = pool.submit(job("fair-job", owner="polite"))
        # flooder submitted first, but polite must start by the second match
        pool.step()
        pool.step()
        pool.step()
        started = [j for j in (flood + [fair]) if j.state != HtcJobState.IDLE]
        assert fair in started

    def test_usage_accounting(self):
        pool = self.make_pool()
        pool.submit(job("a", owner="alice", cycles=3))
        pool.run_until_drained()
        assert pool.usage["alice"] == 3


class TestScavenging:
    def test_desktop_joins_and_runs(self):
        pool = CondorPool()
        pool.add_desktop("prof-desktop", memory_mb=8192)
        pool.submit(job("overnight", cycles=2))
        pool.run_until_drained()
        assert len(pool.completed) == 1

    def test_owner_presence_blocks_matching(self):
        pool = CondorPool()
        pool.add_desktop("prof-desktop", memory_mb=8192)
        pool.set_owner_present("prof-desktop", True)
        pool.submit(job("blocked"))
        pool.step()
        assert pool.idle_jobs()  # nothing matched
        pool.set_owner_present("prof-desktop", False)
        pool.run_until_drained()
        assert len(pool.completed) == 1

    def test_owner_return_evicts_and_restarts(self):
        pool = CondorPool()
        pool.add_desktop("prof-desktop", memory_mb=8192)
        victim = pool.submit(job("long", cycles=5))
        pool.step()
        pool.step()
        assert victim.state is HtcJobState.RUNNING
        assert victim.remaining_cycles == 3
        evicted = pool.set_owner_present("prof-desktop", True)
        assert evicted == [victim]
        assert victim.state is HtcJobState.EVICTED
        assert victim.remaining_cycles == 5  # vanilla restart from scratch
        assert pool.evictions == 1
        # owner leaves; the job reruns to completion
        pool.set_owner_present("prof-desktop", False)
        pool.run_until_drained()
        assert victim.state is HtcJobState.COMPLETED
        assert victim.restarts == 1

    def test_job_prefers_dedicated_slot(self):
        pool = CondorPool()
        pool.add_desktop("desk", memory_mb=8192)
        pool.add_dedicated_machine("node1", cores=1, memory_mb=8192)
        j = pool.submit(job("careful"))
        pool.negotiate()
        assert j.slot_name == "slot1@node1"

    def test_condor_status_table(self):
        pool = CondorPool()
        pool.add_dedicated_machine("node1", cores=1, memory_mb=1024)
        pool.add_desktop("desk", memory_mb=1024)
        pool.set_owner_present("desk", True)
        pool.submit(job("x", cycles=3))
        pool.step()
        status = pool.condor_status()
        assert "Claimed" in status and "Owner" in status


class TestClusterIntegration:
    def test_pool_from_xcbc_cluster(self):
        from repro.hardware import build_littlefe_modified
        from repro.rocks import install_cluster, optional_rolls

        cluster = install_cluster(
            build_littlefe_modified().machine,
            rolls=[optional_rolls()["htcondor"]],
        )
        pool = pool_from_cluster(cluster)
        assert pool.slot_count() == 10  # 5 compute nodes x 2 cores
        for i in range(30):
            pool.submit(job(f"sweep-{i}", cycles=1))
        pool.run_until_drained()
        assert len(pool.completed) == 30

    def test_pool_requires_condor_roll(self):
        from repro.hardware import build_littlefe_modified
        from repro.rocks import install_cluster

        cluster = install_cluster(build_littlefe_modified().machine)
        with pytest.raises(HtcError, match="condor_master"):
            pool_from_cluster(cluster)

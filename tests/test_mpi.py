"""Simulated-MPI tests: correctness of collectives and sanity of timing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MpiError
from repro.hardware import build_littlefe_modified
from repro.mpi import (
    MpiWorld,
    allgather,
    allreduce,
    alltoall,
    bcast,
    bytes_of,
    effective_bandwidth,
    gather,
    ping_pong,
    reduce,
    scatter,
)
from repro.network import build_cluster_network


def make_world(ranks=12):
    machine = build_littlefe_modified().machine
    net = build_cluster_network(machine)
    hosts = [n.name for n in machine.nodes for _ in range(n.cores)]
    return MpiWorld(net.fabric, hosts[:ranks])


class TestPointToPoint:
    def test_send_recv_payload(self):
        w = make_world(4)
        w.send(0, 3, {"n": 42})
        assert w.recv(3, 0) == {"n": 42}

    def test_fifo_per_tag(self):
        w = make_world(2)
        w.send(0, 1, "first")
        w.send(0, 1, "second")
        assert w.recv(1, 0) == "first"
        assert w.recv(1, 0) == "second"

    def test_tags_are_independent_queues(self):
        w = make_world(2)
        w.send(0, 1, "a", tag=1)
        w.send(0, 1, "b", tag=2)
        assert w.recv(1, 0, tag=2) == "b"
        assert w.recv(1, 0, tag=1) == "a"

    def test_recv_without_send_raises(self):
        w = make_world(2)
        with pytest.raises(MpiError, match="no message pending"):
            w.recv(1, 0)

    def test_send_to_self_rejected(self):
        w = make_world(2)
        with pytest.raises(MpiError):
            w.send(0, 0, "x")

    def test_clocks_advance_monotonically(self):
        w = make_world(4)
        w.send(0, 1, b"x" * 1024)
        w.recv(1, 0)
        assert w.clocks[0] > 0
        assert w.clocks[1] >= w.clocks[0] * 0.5

    def test_cross_node_slower_than_same_node(self):
        w = make_world(12)
        # ranks 0,1 share the head node; rank 2 is on compute-0-0
        same = w.transfer_time_s(0, 1, 1 << 20)
        cross = w.transfer_time_s(0, 2, 1 << 20)
        assert cross > same

    def test_rank_bounds_checked(self):
        w = make_world(2)
        with pytest.raises(MpiError, match="out of range"):
            w.send(0, 5, "x")

    def test_bytes_of_shapes(self):
        assert bytes_of(b"abcd") == 4
        assert bytes_of("abc") == 3
        assert bytes_of([1.0, 2.0, 3.0]) == 24
        assert bytes_of(3.14) == 8
        import numpy as np

        assert bytes_of(np.zeros(10)) == 80


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 7, 8, 12])
class TestCollectivesAllSizes:
    def test_bcast(self, p):
        w = make_world(p)
        assert bcast(w, "payload") == ["payload"] * p

    def test_bcast_nonzero_root(self, p):
        w = make_world(p)
        assert bcast(w, 7, root=p - 1) == [7] * p

    def test_reduce_sum(self, p):
        w = make_world(p)
        assert reduce(w, list(range(p)), lambda a, b: a + b) == sum(range(p))

    def test_allreduce_matches_sequential(self, p):
        w = make_world(p)
        out = allreduce(w, [float(i + 1) for i in range(p)], lambda a, b: a + b)
        expected = sum(range(1, p + 1))
        assert all(abs(x - expected) < 1e-9 for x in out)

    def test_gather_rank_order(self, p):
        w = make_world(p)
        assert gather(w, [f"r{i}" for i in range(p)]) == [f"r{i}" for i in range(p)]

    def test_scatter(self, p):
        w = make_world(p)
        assert scatter(w, [i * i for i in range(p)]) == [i * i for i in range(p)]

    def test_allgather_every_rank_complete(self, p):
        w = make_world(p)
        for row in allgather(w, list(range(p))):
            assert row == list(range(p))

    def test_alltoall_transpose(self, p):
        w = make_world(p)
        matrix = [[(i, j) for j in range(p)] for i in range(p)]
        out = alltoall(w, matrix)
        for i in range(p):
            for j in range(p):
                assert out[i][j] == (j, i)


class TestCollectiveCosts:
    def test_allreduce_cost_grows_with_size(self):
        w = make_world(8)
        w.reset_clocks()
        allreduce(w, [[1.0] * 10] * 8, lambda a, b: [x + y for x, y in zip(a, b)])
        small = w.elapsed_s
        w.reset_clocks()
        allreduce(w, [[1.0] * 10000] * 8, lambda a, b: [x + y for x, y in zip(a, b)])
        large = w.elapsed_s
        assert large > small

    def test_barrier_synchronises(self):
        w = make_world(6)
        w.send(0, 1, b"x" * 4096)
        w.recv(1, 0)
        w.barrier()
        assert len(set(w.clocks)) == 1

    def test_traffic_counters(self):
        w = make_world(4)
        w.send(0, 1, b"x" * 100)
        assert w.bytes_sent == 100
        assert w.message_count == 1

    def test_world_needs_attached_hosts(self, littlefe_network):
        with pytest.raises(MpiError, match="not attached"):
            MpiWorld(littlefe_network.fabric, ["ghost-host"])


class TestMicrobenchmarks:
    def test_ping_pong_latency_floor_and_bandwidth_ceiling(self):
        w = make_world(12)
        pts = ping_pong(w, src=2, dst=4, sizes=[8, 1 << 20])
        assert pts[0].round_trip_s < pts[1].round_trip_s
        assert pts[1].bandwidth_bytes_s > pts[0].bandwidth_bytes_s
        # GigE: asymptotic one-way bandwidth below line rate
        assert effective_bandwidth(pts) < 1.25e8

    def test_ping_pong_needs_two_ranks(self):
        with pytest.raises(MpiError):
            ping_pong(make_world(1))

    def test_empty_sweep_rejected(self):
        with pytest.raises(MpiError):
            effective_bandwidth([])


@given(st.integers(min_value=1, max_value=10), st.data())
@settings(max_examples=25, deadline=None)
def test_property_allreduce_equals_sequential_reduce(p, data):
    values = data.draw(
        st.lists(
            st.integers(min_value=-1000, max_value=1000), min_size=p, max_size=p
        )
    )
    w = make_world(p)
    out = allreduce(w, values, lambda a, b: a + b)
    assert out == [sum(values)] * p


@given(st.integers(min_value=2, max_value=10))
@settings(max_examples=15, deadline=None)
def test_property_collective_time_monotone_in_ranks(p):
    """More ranks never makes the same allreduce cheaper."""
    small, big = make_world(p - 1), make_world(p)
    payload = [1.0] * 256
    small.reset_clocks()
    allreduce(small, [payload] * (p - 1), lambda a, b: a)
    big.reset_clocks()
    allreduce(big, [payload] * p, lambda a, b: a)
    assert big.elapsed_s >= small.elapsed_s * 0.5  # allow placement wobble

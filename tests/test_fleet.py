"""The fleet-scale substrate: FleetTable/NodeSet properties, wave-scheduled
installs, golden-image mode, and the hierarchical monitoring tree.

The hypothesis suites are the load-bearing contracts of the columnar
refactor: row proxies must agree with a legacy per-node reference model
under arbitrary mutation sequences, and NodeSet fold/expand must round-trip
for arbitrary range unions — the folded address in ``install.wave`` events
is only trustworthy if parsing it back yields exactly the wave's members.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FleetError, RocksError
from repro.fleet import FleetTable, NodeSet, RangeSet, fold_names
from repro.monitoring import monitor_fleet
from repro.rocks import InstallState, RocksInstaller
from repro.scheduler import ClusterResources
from repro.sim import SimKernel


# -- NodeSet / RangeSet properties -----------------------------------------------


range_unions = st.lists(
    st.tuples(st.integers(0, 400), st.integers(0, 30)), min_size=0, max_size=12
)


@given(range_unions)
@settings(max_examples=60, deadline=None)
def test_rangeset_fold_parse_roundtrip(spans):
    """parse(fold(r)) == r for arbitrary interval unions."""
    rset = RangeSet((lo, lo + width) for lo, width in spans)
    assert set(RangeSet.parse(rset.fold())) == set(rset) if rset else not rset
    if rset:
        assert RangeSet.parse(rset.fold()) == rset


@given(range_unions, range_unions)
@settings(max_examples=60, deadline=None)
def test_rangeset_algebra_matches_set_semantics(a_spans, b_spans):
    """Interval-merge algebra agrees with Python set algebra member-for-member."""
    a = RangeSet((lo, lo + w) for lo, w in a_spans)
    b = RangeSet((lo, lo + w) for lo, w in b_spans)
    sa, sb = set(a), set(b)
    assert set(a | b) == sa | sb
    assert set(a & b) == sa & sb
    assert set(a - b) == sa - sb
    assert set(a ^ b) == sa ^ sb


node_names = st.lists(
    st.one_of(
        st.builds(
            lambda p, n: f"{p}{n}",
            st.sampled_from(["compute-0-", "compute-1-", "gpu-", "n"]),
            st.integers(0, 9999),
        ),
        st.sampled_from(["head", "nas", "login"]),
    ),
    min_size=0,
    max_size=60,
)


@given(node_names)
@settings(max_examples=60, deadline=None)
def test_nodeset_fold_expand_roundtrip(names):
    """from_names -> fold -> parse -> expand recovers exactly the name set."""
    ns = NodeSet.from_names(names)
    assert len(ns) == len(set(names))
    parsed = NodeSet.parse(ns.fold())
    assert parsed == ns
    assert set(parsed.expand()) == set(names)
    # expansion order is a stable total order (deterministic trace addresses)
    assert parsed.expand() == NodeSet.parse(ns.fold()).expand()


@given(node_names, node_names)
@settings(max_examples=60, deadline=None)
def test_nodeset_algebra_matches_set_semantics(a_names, b_names):
    a, b = NodeSet.from_names(a_names), NodeSet.from_names(b_names)
    sa, sb = set(a_names), set(b_names)
    assert set((a | b).expand()) == sa | sb
    assert set((a & b).expand()) == sa & sb
    assert set((a - b).expand()) == sa - sb
    assert set((a ^ b).expand()) == sa ^ sb


@given(node_names, st.integers(1, 7))
@settings(max_examples=40, deadline=None)
def test_nodeset_split_partitions(names, size):
    """split() chunks cover every member exactly once, each within bound."""
    ns = NodeSet.from_names(names)
    waves = list(ns.split(size))
    assert all(len(w) <= size for w in waves)
    seen: list[str] = []
    for wave in waves:
        seen.extend(wave.expand())
    assert sorted(seen) == sorted(set(names))


def test_nodeset_padding_and_groups():
    ns = NodeSet.parse("rack[001-003]", groups=None)
    assert ns.expand() == ["rack001", "rack002", "rack003"]
    groups = {"computes": "compute-0-[0-3]", "all": NodeSet.parse("head")}
    resolved = NodeSet.parse("@computes,@all", groups=groups)
    assert len(resolved) == 5
    with pytest.raises(FleetError):
        NodeSet.parse("@nosuch")
    with pytest.raises(FleetError):
        NodeSet.parse("rack[0-1")


def test_fold_names_is_compact():
    assert fold_names(f"compute-0-{i}" for i in range(100)) == "compute-0-[0-99]"


# -- FleetTable vs a legacy per-node reference model -----------------------------


class _LegacyNode:
    """The pre-columnar shape: one mutable object per node."""

    def __init__(self, name, rack, rank):
        self.name = name
        self.rack = rack
        self.rank = rank
        self.appliance = "compute"
        self.state = "discovered"
        self.cores = 0
        self.load = 0.0
        self.powered_on = True
        self.responsive = True
        self.offline = False
        self.failed = False
        self.draining = False


#: (op, node index, value) — install/fail/drain/power, the ops the
#: installer, fault injector, and scheduler actually perform.
mutation_ops = st.lists(
    st.tuples(
        st.sampled_from(
            ["install", "fail", "drain", "undrain", "power", "offline",
             "unresponsive", "cores", "load", "remove"]
        ),
        st.integers(0, 15),
        st.integers(0, 64),
    ),
    min_size=0,
    max_size=40,
)


@given(mutation_ops)
@settings(max_examples=60, deadline=None)
def test_fleet_rows_agree_with_legacy_objects(ops):
    """Row proxies and per-node objects stay identical through arbitrary
    install/fail/drain/power mutation sequences."""
    table = FleetTable()
    legacy: dict[str, _LegacyNode] = {}
    removed: set[str] = set()
    for i in range(16):
        name = f"compute-{i // 8}-{i % 8}"
        table.add_row(name=name, rack=i // 8, rank=i % 8)
        legacy[name] = _LegacyNode(name, i // 8, i % 8)

    for op, idx, value in ops:
        name = f"compute-{idx // 8}-{idx % 8}"
        if name in removed:
            continue
        row, ref = table.by_name(name), legacy[name]
        if op == "install":
            row.state = "os-installed"
            ref.state = "os-installed"
        elif op == "fail":
            table.set_flag("failed", row.index, True)
            ref.failed = True
        elif op == "drain":
            table.set_flag("draining", row.index, True)
            ref.draining = True
        elif op == "undrain":
            table.set_flag("draining", row.index, False)
            ref.draining = False
        elif op == "power":
            row.powered_on = value % 2 == 0
            ref.powered_on = value % 2 == 0
        elif op == "offline":
            table.set_flag("offline", row.index, True)
            ref.offline = True
        elif op == "unresponsive":
            row.responsive = value % 2 == 0
            ref.responsive = value % 2 == 0
        elif op == "cores":
            row.cores = value
            ref.cores = value
        elif op == "load":
            row.load = float(value)
            ref.load = float(value)
        elif op == "remove":
            table.remove(name)
            removed.add(name)

    live = {n: ref for n, ref in legacy.items() if n not in removed}
    assert {r.name for r in table.rows()} == set(live)
    assert len(table) == len(live)
    for name, ref in live.items():
        row = table.by_name(name)
        assert row.state == ref.state
        assert row.cores == ref.cores
        assert row.load == ref.load
        assert row.powered_on == ref.powered_on
        assert row.responsive == ref.responsive
        assert bool(table.failed[row.index]) == ref.failed
        assert bool(table.draining[row.index]) == ref.draining
        assert bool(table.offline[row.index]) == ref.offline
        assert (row.rack, row.rank) == (ref.rack, ref.rank)
    # column-scan aggregate agrees with an object walk
    assert table.count_state("os-installed") == sum(
        1 for ref in live.values() if ref.state == "os-installed"
    )


def test_fleet_table_basics():
    table = FleetTable()
    row = table.add_row(name="compute-0-0", mac="aa:bb", rack=0, rank=0)
    assert table.by_mac("aa:bb") is row  # cached proxies are identity-stable
    with pytest.raises(FleetError):
        table.add_row(name="compute-0-0")
    with pytest.raises(FleetError):
        table.add_row(name="other", mac="aa:bb")
    epoch = table.epoch
    row.state = "installing"
    assert table.epoch > epoch  # every mutation bumps the epoch
    table.remove("compute-0-0")
    assert not row.alive and table.row_count == 1 and len(table) == 0
    with pytest.raises(FleetError):
        table.by_name("compute-0-0")


def test_fleet_nodeset_select_roundtrip():
    table = FleetTable()
    for i in range(12):
        table.add_row(name=f"compute-0-{i}", rack=0, rank=i)
    ns = table.nodeset()
    assert str(ns) == "compute-0-[0-11]"
    assert table.select(ns) == table.ordered_indices()


# -- wave installs ----------------------------------------------------------------


def _states(cluster):
    return {r.name: r.state for r in cluster.rocksdb.hosts()}


def test_wave_install_matches_sequential():
    """Waves of 3 and node-at-a-time produce the same cluster (names, IPs,
    states, per-node package sets); only MACs differ (hardware serials)."""
    from repro.hardware import build_littlefe_modified

    seq = RocksInstaller(build_littlefe_modified().machine).run(wave_size=1)
    wav = RocksInstaller(build_littlefe_modified().machine).run(wave_size=3)
    assert _states(seq) == _states(wav)
    assert {r.name: r.ip for r in seq.rocksdb.hosts()} == {
        r.name: r.ip for r in wav.rocksdb.hosts()
    }
    assert sorted(seq.compute) == sorted(wav.compute)
    for name in seq.compute:
        assert seq.compute[name][1].names() == wav.compute[name][1].names()
    assert seq.installed_everywhere() == wav.installed_everywhere()


def test_wave_install_emits_folded_trace(littlefe_machine):
    kernel = SimKernel(seed=3)
    RocksInstaller(littlefe_machine).run(wave_size=4, kernel=kernel)
    waves = [e for e in kernel.trace.events if e.kind == "install.wave"]
    assert [e.data["count"] for e in waves] == [4, 1]
    assert waves[0].data["nodes"] == "compute-0-[0-3]"
    assert waves[0].data["pkgs"] > 0
    # the folded address expands back to exactly the wave's members
    assert NodeSet.parse(waves[0].data["nodes"]).expand() == [
        f"compute-0-{i}" for i in range(4)
    ]


def test_wave_size_validation(littlefe_machine):
    with pytest.raises(RocksError):
        RocksInstaller(littlefe_machine).run(wave_size=0)


def test_golden_image_install(littlefe_machine):
    """materialize=False installs per-node state in fleet columns only and
    materializes hosts lazily on first access."""
    cluster = RocksInstaller(littlefe_machine).run(wave_size=4, materialize=False)
    assert cluster.golden_image is not None
    assert cluster.compute == {}  # nothing materialized yet
    names = [r.name for r in cluster.rocksdb.compute_hosts()]
    assert all(
        r.state is InstallState.INSTALLED for r in cluster.rocksdb.compute_hosts()
    )
    host = cluster.host_for(names[0])
    assert names[0] in cluster.compute  # cached after materialization
    assert cluster.db_for(host).names() == cluster.golden_image[1].names()
    row = cluster.rocksdb.get(names[0])
    assert row.cores > 0 and row.mem_kb > 0
    with pytest.raises(RocksError):
        cluster.host_for("compute-9-9")


# -- hierarchical monitoring -------------------------------------------------------


def test_monitor_fleet_tree_and_dead_host(littlefe_machine):
    kernel = SimKernel(seed=5)
    cluster = RocksInstaller(littlefe_machine).run(wave_size=3, kernel=kernel)
    tree = monitor_fleet(cluster, hosts_per_rack=2, kernel=kernel)
    assert len(tree.racks()) == 3  # 6 hosts, 2 per leaf

    summary = tree.poll_cycle()
    assert summary.hosts_up == 6
    # quiet fleet: second cycle changes nothing (epoch fast path)
    tree.poll_cycle()
    rollups = [e for e in kernel.trace.events if e.kind == "monitor.rollup"]
    assert rollups[-1].data["changed"] == 0

    victim = cluster.rocksdb.compute_hosts()[0]
    victim.responsive = False
    for _ in range(3):
        tree.poll_cycle()
    dead = [e for e in kernel.trace.events if e.kind == "monitor.host_dead"]
    assert [e.data["host"] for e in dead] == [victim.name]
    assert tree.dead_hosts() == [victim.name]
    victim.responsive = True
    tree.poll_cycle()
    assert tree.dead_hosts() == []


def test_monitor_rack_event_shape(littlefe_machine):
    kernel = SimKernel(seed=6)
    cluster = RocksInstaller(littlefe_machine).run(wave_size=3, kernel=kernel)
    tree = monitor_fleet(cluster, hosts_per_rack=4, kernel=kernel)
    tree.poll_cycle()
    racks = [e for e in kernel.trace.events if e.kind == "monitor.rack"]
    assert {e.data["rack"] for e in racks} == {"rack000", "rack001"}
    assert all(e.data["hosts_up"] == e.data["hosts_total"] for e in racks)


# -- scheduler over fleet columns --------------------------------------------------


def test_cluster_resources_from_fleet(littlefe_machine):
    cluster = RocksInstaller(littlefe_machine).run(wave_size=3)
    fleet = cluster.rocksdb.fleet
    resources = ClusterResources.from_fleet(fleet)
    machine_built = ClusterResources(littlefe_machine)
    assert resources.total_cores == machine_built.total_cores
    assert len(resources.node_names()) == len(machine_built.node_names())

    allocation = resources.try_allocate(2)
    assert allocation is not None
    # allocated cores are mirrored into the fleet's load column
    busy = {
        fleet.names[i]: fleet.load[i]
        for i in fleet.compute_indices()
        if fleet.load[i] > 0
    }
    assert sum(busy.values()) == 2.0
    resources.release(allocation)
    assert all(fleet.load[i] == 0.0 for i in fleet.compute_indices())

    # usability masks are fleet columns: failing via one view is visible
    # in the other layers that share the table
    victim = resources.node_names()[0]
    resources.fail_node(victim)
    assert fleet.failed[fleet.index_of(victim)] == 1
    assert victim in resources.failed_nodes()


def test_cluster_resources_from_fleet_rejects_empty():
    from repro.errors import SchedulerError

    fleet = FleetTable(state_values=tuple(InstallState))
    fleet.add_row(name="head", appliance="frontend", state=InstallState.INSTALLED)
    with pytest.raises(SchedulerError):
        ClusterResources.from_fleet(fleet, label="empty-site")


# -- determinism at scale ----------------------------------------------------------


def test_fleet_cycle_same_seed_traces_identical():
    """The bench_scale_10k contract at test scale: build + wave install +
    one monitoring cycle twice with one seed -> byte-identical traces."""
    from repro.core.deployments import build_synthetic_fleet

    def cycle():
        machine = build_synthetic_fleet(65)
        kernel = SimKernel(seed=11)
        cluster = RocksInstaller(machine).run(
            wave_size=16, kernel=kernel, materialize=False
        )
        monitor_fleet(cluster, kernel=kernel).poll_cycle()
        return kernel.trace.to_jsonl()

    assert cycle() == cycle()


def test_synthetic_fleet_builder_validation():
    from repro.core.deployments import build_synthetic_fleet
    from repro.errors import DeploymentError

    machine = build_synthetic_fleet(8, cores_per_node=4)
    assert len(machine.compute_nodes) == 7
    assert machine.total_cores == 32
    with pytest.raises(DeploymentError):
        build_synthetic_fleet(1)
    with pytest.raises(DeploymentError):
        build_synthetic_fleet(4, cores_per_node=0)

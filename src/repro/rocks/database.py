"""The Rocks cluster database.

"Using an internal database, Rocks can manage many compute nodes" (Section
3).  The database tracks every appliance: name, MAC, IP, appliance type,
rack/rank position, and install state — the table ``rocks list host`` shows.

Storage is a columnar :class:`~repro.fleet.FleetTable` (ROADMAP item 1:
10k+ node fleets stop being viable with one Python object per row).  The
legacy API is unchanged — lookups return :class:`~repro.fleet.FleetRow`
proxies that are attribute-compatible with :class:`HostRecord` and *live*:
two lookups of one host return the same proxy, and mutations land in the
table columns the installer, scheduler, and monitors read directly.
``compute-<rack>-<rank>`` naming is O(1) via an incremental per-rack
high-water mark instead of a full-table scan per discovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import RocksError
from ..fleet import FleetRow, FleetTable

__all__ = ["InstallState", "HostRecord", "RocksDatabase"]


class InstallState(str, Enum):
    """Rocks' view of an appliance's lifecycle."""

    DISCOVERED = "discovered"   # seen by insert-ethers, not yet installed
    INSTALLING = "installing"   # kickstart in progress
    INSTALLED = "os-installed"  # ready for jobs
    FAILED = "install-failed"   # kickstart crashed; node needs attention


@dataclass
class HostRecord:
    """One row of the hosts table (the value type ``add_host`` accepts).

    Stored rows live in the columnar fleet table; reads come back as
    :class:`~repro.fleet.FleetRow` proxies exposing these same attributes.
    """

    name: str
    mac: str
    ip: str
    appliance: str  # "frontend" | "compute"
    rack: int
    rank: int
    state: InstallState = InstallState.DISCOVERED


class RocksDatabase:
    """The frontend's cluster database (columnar)."""

    def __init__(self, fleet: FleetTable | None = None) -> None:
        #: the cluster's one fleet table; share it with the scheduler
        #: (``ClusterResources.from_fleet``) and the monitoring tree
        #: (``FleetRack``) so all layers read the same columns.
        self.fleet = (
            fleet
            if fleet is not None
            else FleetTable(state_values=tuple(InstallState))
        )
        #: rack -> highest compute rank registered (the next_compute_name
        #: fast path); racks land in ``_stale_racks`` on removal and are
        #: recomputed lazily, preserving the max+1 reuse semantics.
        self._max_rank: dict[int, int] = {}
        self._stale_racks: set[int] = set()

    def add_host(self, record: HostRecord) -> FleetRow:
        """Register an appliance (name and MAC must both be new).

        Returns the live row proxy for the new appliance.
        """
        if self.fleet.has(record.name):
            raise RocksError(f"host {record.name} already in database")
        if record.mac and self.fleet.has_mac(record.mac):
            raise RocksError(f"MAC {record.mac} already in database")
        row = self.fleet.add_row(
            name=record.name,
            mac=record.mac,
            ip=record.ip,
            appliance=record.appliance,
            rack=record.rack,
            rank=record.rank,
            state=record.state,
        )
        if record.appliance == "compute" and record.rack not in self._stale_racks:
            current = self._max_rank.get(record.rack)
            if current is None or record.rank > current:
                self._max_rank[record.rack] = record.rank
        return row

    def remove_host(self, name: str) -> None:
        """rocks remove host."""
        record = self.get(name)
        rack = record.rack
        was_compute = record.appliance == "compute"
        self.fleet.remove(name)
        if was_compute:
            self._stale_racks.add(rack)

    def get(self, name: str) -> FleetRow:
        if not self.fleet.has(name):
            raise RocksError(f"no host {name} in database")
        return self.fleet.by_name(name)

    def by_mac(self, mac: str) -> FleetRow:
        if not self.fleet.has_mac(mac):
            raise RocksError(f"no host with MAC {mac} in database")
        return self.fleet.by_mac(mac)

    def has_mac(self, mac: str) -> bool:
        return self.fleet.has_mac(mac)

    def hosts(self) -> list[FleetRow]:
        """All records, frontend first then compute by (rack, rank)."""
        return self.fleet.rows()

    def compute_hosts(self) -> list[FleetRow]:
        fleet = self.fleet
        return [fleet.row(i) for i in fleet.compute_indices()]

    def known_macs(self) -> set[str]:
        return self.fleet.known_macs()

    def set_state(self, name: str, state: InstallState) -> None:
        self.get(name).state = state

    def state_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot of the hosts table (checkpointing)."""
        return {
            "hosts": [
                {
                    "name": r.name,
                    "mac": r.mac,
                    "ip": r.ip,
                    "appliance": r.appliance,
                    "rack": r.rack,
                    "rank": r.rank,
                    "state": r.state.value,
                }
                for r in self.hosts()
            ]
        }

    def next_compute_name(self, rack: int) -> str:
        """The compute-<rack>-<rank> naming Rocks uses (max rank + 1)."""
        if rack in self._stale_racks:
            fleet = self.fleet
            ranks = [
                fleet.ranks[i]
                for i in fleet.compute_indices()
                if fleet.racks[i] == rack
            ]
            if ranks:
                self._max_rank[rack] = max(ranks)
            else:
                self._max_rank.pop(rack, None)
            self._stale_racks.discard(rack)
        if rack in self._max_rank:
            rank = self._max_rank[rack] + 1
        else:
            rank = 0
        return f"compute-{rack}-{rank}"

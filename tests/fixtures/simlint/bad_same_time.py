"""Known-bad fixture: same-time callbacks racing on one attribute (SL301)."""


def schedule(kernel, stats):
    def from_scheduler():
        stats.utilization = 0.5

    def from_monitor():
        stats.utilization = 0.9

    kernel.at(300.0, from_scheduler)  # SL301: both write stats.utilization
    kernel.at(300.0, from_monitor)


def schedule_lambda(kernel, node):
    def mark_up():
        node.state = "up"

    kernel.at(60.0, lambda: mark_up())  # SL301: same write via lambda
    kernel.at(60.0, mark_up)

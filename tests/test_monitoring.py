"""Monitoring substrate tests: RRDs, gmond sampling, gmetad aggregation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitoring import (
    CORE_METRICS,
    Gmetad,
    Gmond,
    MonitoringError,
    Rrd,
    monitor_cluster,
)
from repro.rocks import install_cluster, optional_rolls
from repro.scheduler import ClusterResources, Job, MauiScheduler


@pytest.fixture(scope="module")
def ganglia_cluster():
    from repro.hardware import build_littlefe_modified

    machine = build_littlefe_modified().machine
    cluster = install_cluster(machine, rolls=[optional_rolls()["ganglia"]])
    return machine, cluster


class TestRrd:
    def test_update_and_series(self):
        rrd = Rrd(step_s=10.0, slots=6)
        for t, v in [(0, 1.0), (5, 3.0), (12, 5.0)]:
            rrd.update(float(t), v)
        series = rrd.series()
        assert len(series) == 2
        assert series[0].value == pytest.approx(2.0)  # (1+3)/2 consolidated
        assert series[1].value == pytest.approx(5.0)

    def test_ring_wraps_keeping_constant_size(self):
        rrd = Rrd(step_s=1.0, slots=4)
        for t in range(20):
            rrd.update(float(t), float(t))
        assert len(rrd) == 4
        series = rrd.series()
        assert [p.value for p in series] == [16.0, 17.0, 18.0, 19.0]

    def test_out_of_order_rejected(self):
        rrd = Rrd()
        rrd.update(100.0, 1.0)
        with pytest.raises(MonitoringError, match="out-of-order"):
            rrd.update(50.0, 1.0)

    def test_same_slot_late_sample_overwrites(self):
        """Sub-step jitter is tolerated: a late sample landing in the
        current slot overwrites it (last write wins)."""
        rrd = Rrd(step_s=10.0, slots=6)
        rrd.update(14.0, 2.0)
        rrd.update(12.0, 8.0)  # 2s late, same slot
        latest = rrd.latest()
        assert latest.value == pytest.approx(8.0)
        assert latest.samples == 1
        rrd.update(15.0, 4.0)  # in-order again: consolidates as usual
        assert rrd.latest().value == pytest.approx(6.0)

    def test_cross_slot_regression_still_rejected(self):
        rrd = Rrd(step_s=10.0, slots=6)
        rrd.update(25.0, 1.0)
        with pytest.raises(MonitoringError, match="out-of-order"):
            rrd.update(9.0, 1.0)

    def test_statistics(self):
        rrd = Rrd(step_s=1.0, slots=10)
        for t, v in enumerate([2.0, 4.0, 6.0]):
            rrd.update(float(t), v)
        assert rrd.mean() == pytest.approx(4.0)
        assert rrd.maximum() == pytest.approx(6.0)

    def test_empty_statistics_raise(self):
        with pytest.raises(MonitoringError):
            Rrd().mean()

    def test_invalid_construction(self):
        with pytest.raises(MonitoringError):
            Rrd(step_s=0)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_property_mean_within_bounds(self, values):
        rrd = Rrd(step_s=1.0, slots=100)
        for t, v in enumerate(values):
            rrd.update(float(t), v)
        assert min(values) - 1e-9 <= rrd.mean() <= max(values) + 1e-9


class TestGmond:
    def test_poll_covers_core_metrics(self, ganglia_cluster):
        _machine, cluster = ganglia_cluster
        gmond = Gmond(cluster.frontend, cluster.frontend_db)
        samples = {s.spec.name for s in gmond.poll(15.0)}
        assert samples == set(CORE_METRICS)

    def test_package_count_reflects_db(self, ganglia_cluster):
        _machine, cluster = ganglia_cluster
        gmond = Gmond(cluster.frontend, cluster.frontend_db)
        pkg = next(
            s for s in gmond.poll(15.0) if s.spec.name == "pkg_count"
        )
        assert pkg.value == float(len(cluster.frontend_db))

    def test_failed_service_counted(self, ganglia_cluster):
        _machine, cluster = ganglia_cluster
        host = cluster.compute["compute-0-0"][0]
        gmond = Gmond(host, cluster.compute["compute-0-0"][1])
        host.services.fail("gmond")
        failed = next(s for s in gmond.poll(1.0) if s.spec.name == "svc_failed")
        assert failed.value == 1.0
        host.services.start("gmond")

    def test_traffic_counters_accumulate(self, ganglia_cluster):
        _machine, cluster = ganglia_cluster
        gmond = Gmond(cluster.frontend, cluster.frontend_db)
        gmond.account_traffic(bytes_in=100.0)
        gmond.account_traffic(bytes_in=50.0, bytes_out=10.0)
        samples = {s.spec.name: s.value for s in gmond.poll(1.0)}
        assert samples["bytes_in"] == 150.0
        assert samples["bytes_out"] == 10.0
        with pytest.raises(MonitoringError):
            gmond.account_traffic(bytes_in=-1)

    def test_wrong_host_db_rejected(self, ganglia_cluster):
        _machine, cluster = ganglia_cluster
        other_db = cluster.compute["compute-0-0"][1]
        with pytest.raises(MonitoringError):
            Gmond(cluster.frontend, other_db)


class TestGmetad:
    def test_full_cluster_mesh(self, ganglia_cluster):
        machine, cluster = ganglia_cluster
        gmetad = monitor_cluster(cluster)
        summary = gmetad.run_cycles(4)
        assert summary.hosts_up == 6
        assert summary.total_cores == 12
        assert gmetad.down_hosts() == []

    def test_scheduler_load_integration(self, ganglia_cluster):
        machine, cluster = ganglia_cluster
        scheduler = MauiScheduler(ClusterResources(machine))
        gmetad = monitor_cluster(cluster, scheduler=scheduler)
        idle = gmetad.poll_cycle()
        assert idle.load_total == 0.0
        scheduler.submit(Job("busy", "a", cores=8, walltime_limit_s=100, runtime_s=50))
        busy = gmetad.poll_cycle()
        assert busy.load_total == pytest.approx(8.0)
        scheduler.run_to_completion()
        done = gmetad.poll_cycle()
        assert done.load_total == 0.0

    def test_down_host_detected(self, ganglia_cluster):
        machine, cluster = ganglia_cluster
        gmetad = monitor_cluster(cluster)
        gmetad.poll_cycle()
        node = machine.compute_nodes[-1]
        node.powered_on = False
        try:
            summary = gmetad.poll_cycle()
            assert summary.hosts_down == 1
            assert len(gmetad.down_hosts()) == 1
        finally:
            node.powered_on = True

    def test_dashboard_renders(self, ganglia_cluster):
        _machine, cluster = ganglia_cluster
        gmetad = monitor_cluster(cluster)
        gmetad.poll_cycle()
        text = gmetad.render_dashboard()
        assert "Ganglia" in text
        assert "compute-0-0" in text
        assert "6/6 up" in text

    def test_dashboard_before_polling_rejected(self, ganglia_cluster):
        _machine, cluster = ganglia_cluster
        gmetad = monitor_cluster(cluster)
        with pytest.raises(MonitoringError):
            gmetad.render_dashboard()

    def test_duplicate_attach_rejected(self, ganglia_cluster):
        _machine, cluster = ganglia_cluster
        gmetad = Gmetad("x")
        gmond = Gmond(cluster.frontend, cluster.frontend_db)
        gmetad.attach(gmond)
        with pytest.raises(MonitoringError):
            gmetad.attach(gmond)

    def test_unknown_metric_or_host_rejected(self, ganglia_cluster):
        _machine, cluster = ganglia_cluster
        gmetad = monitor_cluster(cluster)
        with pytest.raises(MonitoringError):
            gmetad.rrd_for(cluster.frontend.name, "bogus_metric")
        with pytest.raises(MonitoringError):
            gmetad.rrd_for("ghost-host", "load_one")

    def test_history_retained_in_rrds(self, ganglia_cluster):
        _machine, cluster = ganglia_cluster
        gmetad = monitor_cluster(cluster)
        gmetad.run_cycles(5)
        rrd = gmetad.rrd_for(cluster.frontend.name, "cpu_num")
        assert len(rrd.series()) == 5
        assert rrd.mean() == pytest.approx(2.0)  # Celeron: 2 cores

"""repro.sim: the unified discrete-event simulation kernel.

One :class:`SimKernel` (clock + event queue + trace bus + seeded RNG)
replaces the five ad-hoc clocks the subsystems used to keep privately:
the scheduler's completion heap, the power manager's heap surgery, the
MPI simulator's per-rank floats, gmetad's hand-threaded timestamps, and
the mirror/GridFTP transfer accounting.  Any subsystem can publish typed
events to the :class:`TraceBus` and the whole co-simulated run exports as
one JSONL trace.

See ``docs/SIM.md`` for the kernel contract, the trace event schema, and
the migration pattern for porting a subsystem.
"""

from .clock import SimClock, Timeline
from .events import EventHandle, EventQueue
from .kernel import PeriodicEvent, SimKernel
from .trace import (
    EVENT_SCHEMA,
    TraceBus,
    TraceEvent,
    register_event_kind,
    validate_event,
    validate_jsonl,
)

__all__ = [
    "SimClock",
    "Timeline",
    "EventHandle",
    "EventQueue",
    "PeriodicEvent",
    "SimKernel",
    "TraceBus",
    "TraceEvent",
    "EVENT_SCHEMA",
    "register_event_kind",
    "validate_event",
    "validate_jsonl",
]

"""Section 8 — small-cluster capex vs commercial-cloud opex.

Sweeps utilisation for both paper machines, finds the crossover duty cycle,
and prices the runaway-student scenario.  The shape the conclusion argues:
for any seriously used deskside cluster, ownership wins quickly, and the
cloud's failure mode is unbounded spend.
"""

import pytest

from repro.core import (
    CloudCostModel,
    compare,
    crossover_utilisation,
    runaway_student_scenario,
)
from repro.hardware import build_limulus_hpc200, build_littlefe_modified


def sweep_both():
    lf = build_littlefe_modified()
    lm = build_limulus_hpc200()
    utilisations = [0.05, 0.1, 0.2, 0.4, 0.6, 0.8]
    rows = []
    for quote, label in ((lf, "LittleFe"), (lm, "Limulus HPC200")):
        series = [
            compare(quote.machine, quote.quoted_usd, utilisation=u)
            for u in utilisations
        ]
        crossover = crossover_utilisation(quote.machine, quote.quoted_usd)
        rows.append((label, series, crossover))
    return utilisations, rows


def test_cloud_vs_cluster(benchmark, save_artifact):
    utilisations, rows = benchmark(sweep_both)

    lines = ["Cluster capex vs cloud opex (4-year lifetime, $0.05/core-hour)", ""]
    header = f"{'utilisation':<14}" + "".join(f"{u:>10.0%}" for u in utilisations)
    for label, series, crossover in rows:
        lines.append(f"-- {label} (crossover at {crossover:.0%} utilisation)")
        lines.append(header)
        lines.append(
            f"{'cluster ($)':<14}"
            + "".join(f"{c.cluster_usd:>10.0f}" for c in series)
        )
        lines.append(
            f"{'cloud ($)':<14}"
            + "".join(f"{c.cloud_usd:>10.0f}" for c in series)
        )
        lines.append("")
    uncapped, _ = runaway_student_scenario(cores=64, days=30)
    capped, billed = runaway_student_scenario(
        cores=64, days=30, cloud=CloudCostModel(monthly_cap_usd=500.0)
    )
    lines.append(
        f"runaway student (64 cores x 30 days): ${uncapped:,.0f} uncapped; "
        f"${billed:,.0f} with a $500/month cap"
    )
    save_artifact("cloud_vs_cluster", "\n".join(lines))

    for label, series, crossover in rows:
        # cloud wins only at very low duty cycles
        assert crossover is not None and crossover < 0.5
        assert not series[0].cluster_wins      # 5 % utilisation: rent
        assert series[-1].cluster_wins         # 80 % utilisation: own
        # cloud cost crosses cluster cost exactly once in the sweep
        flips = sum(
            1
            for a, b in zip(series, series[1:])
            if a.cluster_wins != b.cluster_wins
        )
        assert flips == 1
    assert uncapped == pytest.approx(2304.0)

"""Known-bad fixture: wall-clock reads simulation code must not make (SL101)."""

import time
from datetime import datetime
from time import perf_counter as pc


def sample_now(bus):
    stamp = time.time()  # SL101: wall clock
    bus.emit("tick", t_s=stamp, subsystem="demo")


def aliased_read():
    return pc()  # SL101: from-import alias of time.perf_counter


def report_date():
    return datetime.now()  # SL101: datetime.datetime.now

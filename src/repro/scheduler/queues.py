"""Declarative queue configuration for the batch schedulers.

Real Torque/SLURM sites describe queues in config files (``qmgr`` dumps,
``slurm.conf`` partitions) that name the nodes they may run on — and a queue
naming a node the cluster does not have is a classic silent misconfiguration:
jobs sit idle forever instead of failing loudly.  :class:`QueueConfig`
captures that declarative layer so the pre-flight analyzer can check it
against the hardware inventory before anything is deployed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.chassis import Machine

__all__ = ["QueueConfig", "default_queue_for"]


@dataclass(frozen=True)
class QueueConfig:
    """One batch queue / partition as declared in scheduler config.

    ``node_names`` lists the nodes the queue schedules onto;
    ``max_cores_per_job`` of 0 means no per-job cap.
    """

    name: str
    node_names: tuple[str, ...] = ()
    max_cores_per_job: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("queue name must be non-empty")


def default_queue_for(machine: Machine, *, name: str = "batch") -> QueueConfig:
    """The conventional single queue over every compute node.

    ``max_cores_per_job`` defaults to the full compute-core count — the
    largest job the hardware can actually run.
    """
    computes = machine.compute_nodes
    return QueueConfig(
        name=name,
        node_names=tuple(n.name for n in computes),
        max_cores_per_job=sum(n.cores for n in computes),
    )

"""NFS: exported directories and client mounts.

Rocks clusters export the frontend's ``/home`` (and often ``/share/apps``)
to every compute node — that is what makes a user's files and a cluster-wide
application tree appear identical everywhere, half of the "uniform
environment" story XCBC banks on.

:class:`NfsServer` wraps a host's exports table; :func:`nfs_mount` attaches
an export to a client host using the filesystem's mount machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DistroError
from .host import Host

__all__ = ["NfsExport", "NfsServer", "nfs_mount"]


@dataclass(frozen=True)
class NfsExport:
    """One line of /etc/exports."""

    path: str
    network: str = "10.1.1.0/24"  # the cluster's private segment
    read_only: bool = False

    def render(self) -> str:
        flags = "ro" if self.read_only else "rw"
        return f"{self.path} {self.network}({flags},sync,no_root_squash)"


class NfsServer:
    """The NFS daemon of one host (the frontend, normally)."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self._exports: dict[str, NfsExport] = {}

    def export(self, path: str, *, read_only: bool = False) -> NfsExport:
        """Add an export; the directory must exist."""
        if not self.host.fs.is_dir(path):
            raise DistroError(f"{self.host.name}: cannot export non-directory {path}")
        entry = NfsExport(path=path, read_only=read_only)
        self._exports[path] = entry
        self._write_exports_file()
        self.host.services.register("nfsd", package="nfs-utils")
        self.host.services.enable("nfsd")
        self.host.services.start("nfsd")
        return entry

    def unexport(self, path: str) -> None:
        if path not in self._exports:
            raise DistroError(f"{self.host.name}: {path} is not exported")
        del self._exports[path]
        self._write_exports_file()

    def exports(self) -> list[NfsExport]:
        return [self._exports[p] for p in sorted(self._exports)]

    def is_exported(self, path: str) -> bool:
        return path in self._exports

    def _write_exports_file(self) -> None:
        text = "\n".join(e.render() for e in self.exports())
        self.host.fs.write("/etc/exports", text + "\n" if text else "")


def nfs_mount(client: Host, server: NfsServer, remote_path: str, mount_point: str) -> None:
    """Mount ``server:remote_path`` at ``mount_point`` on ``client``.

    The export must exist and the server's nfsd must be running — the two
    failure modes every cluster admin has debugged at least once.
    """
    if not server.is_exported(remote_path):
        raise DistroError(
            f"mount {server.host.name}:{remote_path} failed: not exported"
        )
    if not server.host.services.is_running("nfsd"):
        raise DistroError(
            f"mount {server.host.name}:{remote_path} failed: nfsd not running"
        )
    client.fs.mkdir(mount_point, exist_ok=True)
    client.fs.mount(mount_point, server.host.fs, remote_path)
    # record it the way /etc/mtab would
    line = f"{server.host.name}:{remote_path} {mount_point} nfs rw 0 0\n"
    existing = (
        client.fs.read("/etc/mtab") if client.fs.exists("/etc/mtab") else ""
    )
    client.fs.write("/etc/mtab", existing + line)

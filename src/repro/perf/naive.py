"""Naive mode: run the benches through the retained ``_scan_*`` paths.

The perf overhaul kept every pre-index implementation as a ``_scan_*``
reference oracle.  :func:`naive_mode` temporarily rewires the hot methods
back onto those scans and disables every cache layer:

* ``Repository.providers_of`` / ``obsoleters_of`` -> full catalogue walks;
* ``RepoSet.providers_of`` / ``candidates_by_name`` -> uncached scans;
* ``RpmDatabase.providers_of`` / ``is_satisfied`` -> installed-set walks;
* the depsolver's best-provider memo and whole-resolution LRU -> off;
* ``TraceBus`` -> ``strict=True`` per-emit validation;
* ``SimKernel.run_until`` -> one-at-a-time stepping (no batched pops);
* content-addressed dedup -> off: ``ChunkStore.missing_of`` reports every
  chunk missing, ``SiteChunkCache.holds`` and ``LazyDelivery.node_holds``
  never hit, so every tier re-fetches every chunk every time (the
  "ship whole packages" world the CAS layer replaces).

This is how ``python -m repro.perf --naive`` produces the "before" column
of the before/after ablation without checking out an old tree.  It is a
benchmarking aid, not an operating mode — it patches classes process-wide
while the context is open.
"""

from __future__ import annotations

import contextlib

__all__ = ["naive_mode"]


@contextlib.contextmanager
def naive_mode():
    """Context manager: scan implementations + caches off, restored on exit."""
    from ..cas.delivery import LazyDelivery
    from ..cas.store import ChunkStore
    from ..cas.stratum import SiteChunkCache
    from ..rpm.database import RpmDatabase
    from ..sim.kernel import SimKernel
    from ..sim.trace import TraceBus
    from ..yum import depsolver
    from ..yum.repository import Repository, RepoSet

    saved = {
        "repo_providers": Repository.providers_of,
        "repo_obsoleters": Repository.obsoleters_of,
        "set_providers": RepoSet.providers_of,
        "set_candidates": RepoSet.candidates_by_name,
        "set_cache": RepoSet.cache,
        "db_providers": RpmDatabase.providers_of,
        "db_satisfied": RpmDatabase.is_satisfied,
        "bus_init": TraceBus.__init__,
        "run_until": SimKernel.run_until,
        "cache_get": depsolver._cache_get,
        "cache_put": depsolver._cache_put,
        "cas_missing": ChunkStore.missing_of,
        "cas_holds": SiteChunkCache.holds,
        "cas_node_holds": LazyDelivery.node_holds,
    }

    def naive_missing_of(self, chunks):
        # No dedup lookup: everything is "missing" (still unique within
        # one request — a single transfer never ships one chunk twice).
        seen = set()
        out = []
        for chunk in chunks:
            if chunk.digest not in seen:
                seen.add(chunk.digest)
                out.append(chunk)
        return out

    def strict_bus_init(self, *, enabled=True, strict=False):
        del strict
        saved["bus_init"](self, enabled=enabled, strict=True)

    def stepping_run_until(self, time_s):
        from ..errors import SimulationError

        if time_s < self.now_s:
            raise SimulationError(
                f"run_until({time_s}) would move time backwards from {self.now_s}"
            )
        fired = 0
        while True:
            head = self.queue.peek_time_s()
            if head is None or head > time_s:
                break
            self.step()
            fired += 1
        self.clock.advance_to(time_s)
        return fired

    Repository.providers_of = Repository._scan_providers_of
    Repository.obsoleters_of = Repository._scan_obsoleters_of
    RepoSet.providers_of = RepoSet._scan_providers_of
    RepoSet.candidates_by_name = RepoSet._scan_candidates_by_name
    RepoSet.cache = lambda self, namespace: {}
    RpmDatabase.providers_of = RpmDatabase._scan_providers_of
    RpmDatabase.is_satisfied = RpmDatabase._scan_is_satisfied
    TraceBus.__init__ = strict_bus_init
    SimKernel.run_until = stepping_run_until
    depsolver._cache_get = lambda key: None
    depsolver._cache_put = lambda key, resolution: None
    ChunkStore.missing_of = naive_missing_of
    SiteChunkCache.holds = lambda self, digest: False
    LazyDelivery.node_holds = lambda self, node, digest: False
    try:
        yield
    finally:
        Repository.providers_of = saved["repo_providers"]
        Repository.obsoleters_of = saved["repo_obsoleters"]
        RepoSet.providers_of = saved["set_providers"]
        RepoSet.candidates_by_name = saved["set_candidates"]
        RepoSet.cache = saved["set_cache"]
        RpmDatabase.providers_of = saved["db_providers"]
        RpmDatabase.is_satisfied = saved["db_satisfied"]
        TraceBus.__init__ = saved["bus_init"]
        SimKernel.run_until = saved["run_until"]
        depsolver._cache_get = saved["cache_get"]
        depsolver._cache_put = saved["cache_put"]
        ChunkStore.missing_of = saved["cas_missing"]
        SiteChunkCache.holds = saved["cas_holds"]
        LazyDelivery.node_holds = saved["cas_node_holds"]

"""repro.analyze — pre-flight static analysis ("cluster-lint").

Inspects cluster definitions *without executing a deployment* and emits
structured :class:`~repro.analyze.diagnostic.Diagnostic` records with stable
rule codes, so misconfiguration is caught before an expensive provisioning
run instead of mid-install.  See docs/ANALYZE.md for the rule catalogue.

Usage::

    from repro.analyze import ClusterDefinition, analyze
    result = analyze(ClusterDefinition(name="site", graph=graph, ...))
    print(result.render_text())

or from a shell: ``python -m repro.analyze examples/quickstart.py``.

The :mod:`diagnostic` and :mod:`registry` submodules import eagerly (other
subsystems depend on them without cycles); the heavier pieces — passes,
engine, CLI — load lazily on first attribute access.
"""

from __future__ import annotations

from .diagnostic import Diagnostic, Severity
from .registry import RULES, AnalysisConfig, Baseline, Rule, RuleRegistry

__all__ = [
    "Diagnostic",
    "Severity",
    "Rule",
    "RuleRegistry",
    "RULES",
    "AnalysisConfig",
    "Baseline",
    "ClusterDefinition",
    "HardwarePlan",
    "AnalysisResult",
    "analyze",
    "analyze_source",
    "SimlintConfig",
    "render_sarif",
    "check_trace",
    "main",
    "main_simlint",
]

#: Lazy attribute -> (module, name).  Keeps ``import repro.analyze.diagnostic``
#: cheap and cycle-free for subsystems (rpm.transaction) that only need the
#: diagnostic vocabulary.
_LAZY = {
    "ClusterDefinition": ("repro.analyze.spec", "ClusterDefinition"),
    "HardwarePlan": ("repro.analyze.spec", "HardwarePlan"),
    "AnalysisResult": ("repro.analyze.engine", "AnalysisResult"),
    "analyze": ("repro.analyze.engine", "analyze"),
    "analyze_source": ("repro.analyze.source", "analyze_source"),
    "SimlintConfig": ("repro.analyze.source", "SimlintConfig"),
    "render_sarif": ("repro.analyze.sarif", "render_sarif"),
    "check_trace": ("repro.analyze.passes.source_traceorder", "check_trace"),
    "main": ("repro.analyze.cli", "main"),
    "main_simlint": ("repro.analyze.cli", "main_simlint"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))

"""Campus bridging end to end: software + accounts + data.

The paper's goal sentence: "simplify migration between campus and national
cyberinfrastructure."  The timed unit is the complete bridge: build a
campus XCBC cluster and the Stampede-mini reference, make the cluster
uniform (411 + NFS home), then move a researcher's dataset to the XSEDE
side over GridFTP and verify the GFFS namespace sees both ends.
"""

import pytest

from repro.core import build_xcbc_cluster, portability_check
from repro.grid import GffsNamespace, GridEndpoint, build_stampede_mini, transfer
from repro.hardware import build_littlefe_modified
from repro.rocks.sync411 import make_cluster_uniform


def full_bridge():
    campus = build_xcbc_cluster(build_littlefe_modified("campus").machine).cluster
    sync, _nfs = make_cluster_uniform(campus)
    stampede = build_stampede_mini(nodes=3)

    # the researcher exists cluster-wide and has data in the shared home
    campus.frontend.users.add_user("researcher")
    sync.push()  # 411 replicates the new account to every node
    for i in range(5):
        campus.frontend.fs.write(
            f"/home/researcher/md/frame{i}.trr", f"trajectory-{i}" * 50
        )

    src = GridEndpoint("campus#lf", campus.frontend)
    dst = GridEndpoint("xsede#stampede", stampede.frontend)
    stampede.frontend.fs.mkdir("/scratch/researcher", exist_ok=True)
    result = transfer(
        src, dst, "/home/researcher/md", "/scratch/researcher/md", parallelism=4
    )

    ns = GffsNamespace()
    ns.link("/resources/campus/home", campus.frontend, "/home")
    ns.link("/resources/stampede/scratch", stampede.frontend, "/scratch")
    return campus, stampede, result, ns


def test_campus_bridging_data(benchmark, save_artifact):
    campus, stampede, result, ns = benchmark(full_bridge)

    frac, broken = portability_check(
        campus.frontend, stampede.frontend,
        ["mdrun", "R", "python", "mpirun", "module"],
    )
    lines = [
        "Campus bridging: campus XCBC cluster <-> Stampede-mini",
        "",
        f"dataset moved: {result.files} files, {result.bytes_moved} bytes, "
        f"{result.elapsed_s * 1000:.0f} ms over the WAN "
        f"({result.effective_bandwidth_bytes_s / 1e6:.1f} MB/s effective)",
        f"checksum retries: {len(result.retried_files)}",
        f"application-command portability: {frac:.0%}",
        f"GFFS view: /resources -> {ns.ls('/resources')}",
    ]
    save_artifact("campus_bridging_data", "\n".join(lines))

    assert result.files == 5 and result.retried_files == []
    assert frac == 1.0, broken
    # both ends visible through one namespace
    assert ns.exists("/resources/campus/home/researcher/md/frame0.trr")
    assert ns.exists("/resources/stampede/scratch/researcher/md/frame4.trr")
    # the compute nodes see the researcher's home too (NFS + 411)
    compute = campus.compute["compute-0-0"][0]
    assert compute.users.has_user("researcher")
    assert compute.fs.exists("/home/researcher/md/frame0.trr")

"""Near-miss fixture: set iteration that is laundered or sink-free (SL104)."""


def publish(bus, names):
    pending = {name for name in names if name}
    for name in sorted(pending):  # sorted() launders hash order
        bus.emit("node.up", t_s=0.0, subsystem="demo", name=name)


def count(names):
    pending = set(names)
    total = 0
    for name in pending:  # unordered, but feeds no trace/schedule sink
        total += len(name)
    return total


def publish_list(bus, names):
    pending = [name for name in names if name]
    for name in pending:  # a list keeps caller order — deterministic
        bus.emit("node.up", t_s=0.0, subsystem="demo", name=name)


class Sweeper:
    def __init__(self, members):
        self.members = sorted(members)

    def sweep(self, bus):
        for member in self.members:  # sorted at construction
            bus.emit("sweep", t_s=1.0, subsystem="demo", who=member)

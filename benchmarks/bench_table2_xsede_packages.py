"""Table 2 — Components specific to XSEDE "run-alike" compatibility.

Regenerates the five-category package table from the catalogue and verifies
the run-alike conventions behind it: every library lands in /usr/lib64,
every application tree under /opt, versions resolve, and the whole catalogue
installs as one dependency-clean transaction (the timed unit).
"""

from repro.core import packages_by_category, xsede_packages
from repro.core.packages_xsede import TABLE2_CATEGORIES
from repro.distro import CENTOS_6_5, Host
from repro.hardware import build_littlefe_modified
from repro.rocks import base_os_packages
from repro.rpm import RpmDatabase, Transaction


def regenerate_table2() -> str:
    lines = [
        "Table 2. Components of current XCBC build Part 2 - XSEDE",
        "cluster run-alike compatibility",
        "",
    ]
    for category, packages in packages_by_category().items():
        names = ", ".join(p.name for p in packages)
        lines.append(f"{category}:")
        lines.append(f"  {names}")
        lines.append("")
    return "\n".join(lines)


def install_full_catalogue():
    """The timed unit: one transaction installing the whole Table 2 set."""
    host = Host(build_littlefe_modified().machine.head, CENTOS_6_5)
    db = RpmDatabase(host)
    txn = Transaction(db)
    for pkg in base_os_packages(CENTOS_6_5):
        txn.install(pkg)
    for pkg in xsede_packages():
        txn.install(pkg)
    txn.commit()
    return host, db


def test_table2_regeneration(benchmark, save_artifact):
    host, db = benchmark(install_full_catalogue)
    table = regenerate_table2()
    save_artifact("table2_xsede_packages", table)

    for category in TABLE2_CATEGORIES:
        assert category in table
    # spot-check rows straight out of the paper's table
    for name in ("Charm".lower(), "fftw2", "hdf5", "GotoBLAS2", "PnetCDF",
                 "gromacs", "lammps", "mpiblast", "trinity", "maui",
                 "Genesis".lower()):
        assert name.lower() in table.lower(), name
    # run-alike conventions hold on a real install
    assert host.fs.exists("/usr/lib64/libfftw3.so.3")
    assert host.fs.exists("/opt/gromacs/.keep")
    assert host.which("mdrun") == "/usr/bin/mdrun"
    assert db.unsatisfied_requirements() == []

"""The HPL benchmark harness: real runs at laptop scale, modelled at cluster
scale, both validated the way HPL validates.

:func:`run_hpl_small` actually factorises and solves a system with the
blocked kernels and checks the HPL residual — the executable ground truth.
:func:`benchmark_machine` produces the Table 5 style report for a built
machine: Rpeak from the hardware, Rmax from the calibrated model, runtime
and problem size from the same sizing rules real HPL tuning uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import LinpackError
from ..hardware.chassis import Machine
from .dgemm import blocked_lu, lu_solve, residual_check
from .model import HplPrediction, predict_machine, problem_size

__all__ = ["HplRunResult", "run_hpl_small", "HplReport", "benchmark_machine"]

#: HPL's validity threshold for the scaled residual.
RESIDUAL_LIMIT = 16.0


@dataclass(frozen=True)
class HplRunResult:
    """A real (executed) small-scale HPL run."""

    n: int
    gflops: float
    seconds: float
    residual: float

    @property
    def passed(self) -> bool:
        """HPL's PASSED/FAILED verdict."""
        return self.residual < RESIDUAL_LIMIT


def run_hpl_small(n: int = 256, *, block: int = 64, seed: int = 42) -> HplRunResult:
    """Execute a real LU solve of an ``n x n`` system and validate it.

    This is HPL's inner computation at a size that runs in milliseconds; the
    examples and tests use it to demonstrate the kernel is genuinely correct
    (the residual check is the same formula HPL prints).
    """
    import time

    if n <= 0:
        raise LinpackError(f"n must be positive, got {n}")
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    x_true = rng.standard_normal(n)
    b = a @ x_true
    t0 = time.perf_counter()
    lu, piv = blocked_lu(a, block=block)
    x = lu_solve(lu, piv, b)
    elapsed = time.perf_counter() - t0
    flops = (2.0 / 3.0) * n**3 + 1.5 * n**2
    return HplRunResult(
        n=n,
        gflops=flops / elapsed / 1e9,
        seconds=elapsed,
        residual=residual_check(a, x, b),
    )


@dataclass(frozen=True)
class HplReport:
    """Cluster-scale HPL figures for one machine (the Table 5 row)."""

    machine_name: str
    n: int
    rpeak_gflops: float
    rmax_gflops: float
    run_seconds: float
    estimated: bool  # True when flagged like the paper's LittleFe footnote

    @property
    def efficiency(self) -> float:
        return self.rmax_gflops / self.rpeak_gflops


def benchmark_machine(
    machine: Machine,
    *,
    estimated: bool = False,
    estimate_fraction: float | None = None,
    n: int | None = None,
) -> HplReport:
    """Model a machine's HPL run and package the Table 5 figures.

    ``estimated=True`` marks the row the way the paper marks LittleFe's
    Rmax ("estimated due to a hardware failure prior to Linpack").  Passing
    ``estimate_fraction`` replicates the paper's estimation arithmetic
    exactly (LittleFe: "Estimated at 75% of Rpeak") instead of using the
    model's prediction — the Table 5 bench reports both.
    """
    prediction: HplPrediction = predict_machine(machine, n=n)
    if estimate_fraction is not None:
        if not 0.0 < estimate_fraction <= 1.0:
            raise LinpackError(
                f"estimate fraction out of (0,1]: {estimate_fraction}"
            )
        rmax = prediction.rpeak_gflops * estimate_fraction
        estimated = True
    else:
        rmax = prediction.rmax_gflops
    return HplReport(
        machine_name=machine.name,
        n=prediction.n,
        rpeak_gflops=prediction.rpeak_gflops,
        rmax_gflops=rmax,
        run_seconds=prediction.total_time_s,
        estimated=estimated,
    )

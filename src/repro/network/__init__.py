"""Cluster networking: fabric cost model, DHCP, PXE, and topology builders.

The substrate Rocks provisions over (PXE/DHCP) and the cost model the
simulated-MPI layer and HPL efficiency model consume.
"""

from .dhcp import DhcpLease, DhcpPlan, DhcpServer
from .fabric import Endpoint, Fabric, PathCost, Switch
from .pxe import BootImage, PxeBootResult, PxeServer
from .topology import ClusterNetwork, build_cluster_network

__all__ = [
    "Fabric",
    "Switch",
    "Endpoint",
    "PathCost",
    "DhcpServer",
    "DhcpLease",
    "DhcpPlan",
    "PxeServer",
    "BootImage",
    "PxeBootResult",
    "ClusterNetwork",
    "build_cluster_network",
]

"""Checkpoint/restore and write-ahead-journal overhead measurements.

Recovery machinery is only free to adopt if its steady-state cost is
negligible; this bench quantifies three numbers for one seeded chaos run:

* **capture cost** — wall time and serialized size of a full-stack
  snapshot (kernel + scheduler + monitoring + mirror + journal);
* **restore cost** — rebuilding the world and replaying to the
  checkpoint, verified against the state digest and trace-prefix hash;
* **journal overhead** — an RPM transaction hot path committed with and
  without write-ahead journaling.
"""

from __future__ import annotations

import time

from repro.distro import CENTOS_6_5, Host
from repro.faults.chaos import ChaosWorld
from repro.hardware import build_littlefe_modified
from repro.recovery import CheckpointManager, Journal, Snapshot
from repro.rpm import Package, RpmDatabase, Transaction

SEED = 11
CUT_STEPS = 150
TXN_ROUNDS = 40
TXN_PKGS = 25


def capture_and_restore():
    world = ChaosWorld({"seed": SEED, "job_count": 8})
    for _ in range(CUT_STEPS):
        world.step()
    manager = CheckpointManager(world)

    t0 = time.perf_counter()
    snapshot = manager.capture()
    blob = snapshot.to_json()
    capture_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    restored = CheckpointManager.restore(Snapshot.from_json(blob))
    restore_s = time.perf_counter() - t0

    restored.run()
    world.run()
    assert restored.kernel.trace.to_jsonl() == world.kernel.trace.to_jsonl()
    return capture_s, restore_s, len(blob.encode()), snapshot


def txn_hot_path(journal):
    host = Host(build_littlefe_modified().machine.head, CENTOS_6_5)
    db = RpmDatabase(host)
    t0 = time.perf_counter()
    for round_no in range(TXN_ROUNDS):
        txn = Transaction(db, journal=journal)
        for index in range(TXN_PKGS):
            txn.install(Package(name=f"p{round_no:02d}x{index:02d}",
                                version="1.0"))
        txn.commit()
    return time.perf_counter() - t0


def test_checkpoint_restore_bench(benchmark, save_artifact):
    capture_s, restore_s, size_bytes, snapshot = benchmark(capture_and_restore)

    bare_s = txn_hot_path(None)                 # Transaction makes a throwaway
    waled_s = txn_hot_path(Journal())           # shared in-memory WAL
    overhead = (waled_s - bare_s) / bare_s if bare_s > 0 else 0.0

    lines = [
        "Checkpoint/restore + write-ahead journal overhead "
        f"(chaos seed={SEED}, cut at step {CUT_STEPS})",
        "",
        f"{'snapshot capture':<28}{capture_s * 1e3:>10.2f} ms",
        f"{'snapshot size':<28}{size_bytes / 1024:>10.1f} KiB",
        f"{'verified replay restore':<28}{restore_s * 1e3:>10.2f} ms",
        f"{'events at checkpoint':<28}{snapshot.events_processed:>10d}",
        "",
        f"rpm hot path ({TXN_ROUNDS} txns x {TXN_PKGS} pkgs):",
        f"{'  without journal':<28}{bare_s * 1e3:>10.2f} ms",
        f"{'  with shared WAL journal':<28}{waled_s * 1e3:>10.2f} ms",
        f"{'  overhead':<28}{overhead:>10.1%}",
    ]
    save_artifact("checkpoint_restore", "\n".join(lines))

    assert size_bytes > 1024          # the snapshot really holds the stack
    assert snapshot.steps == CUT_STEPS

"""Trace-schema validation CLI::

    python -m repro.sim trace.jsonl [more.jsonl ...]

Exits non-zero if any file fails to validate — the CI gate that keeps
every emitted event honest against ``repro.sim.trace.EVENT_SCHEMA``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from .trace import validate_jsonl


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="Validate JSONL simulation traces against the event schema.",
    )
    parser.add_argument("traces", nargs="+", help="JSONL trace files to validate")
    args = parser.parse_args(argv)

    failures = 0
    for name in args.traces:
        path = pathlib.Path(name)
        if not path.exists():
            print(f"{name}: no such file")
            failures += 1
            continue
        count, problems = validate_jsonl(path.read_text())
        if problems:
            failures += 1
            print(f"{name}: {count} events, {len(problems)} problem(s)")
            for problem in problems[:20]:
                print(f"  {problem}")
            if len(problems) > 20:
                print(f"  ... and {len(problems) - 20} more")
        else:
            print(f"{name}: OK ({count} events)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Known-bad fixture: ambient environment reads (SL103)."""

import os
import uuid


def configured_root():
    return os.environ["REPRO_ROOT"]  # SL103: os.environ read


def configured_level():
    return os.getenv("REPRO_LEVEL", "info")  # SL103: os.getenv


def fresh_id():
    return uuid.uuid4()  # SL103: host-entropy identifier

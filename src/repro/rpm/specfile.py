"""A minimal spec-file dialect and builder.

XNIT's packages are ordinary RPMs built from spec files; the update-roll
path (Section 3) likewise repackages RPMs.  We support a small declarative
dialect sufficient to define the Tables 1-2 catalogue in data files or tests:

.. code-block:: text

    Name: gromacs
    Version: 4.6.5
    Release: 2
    Summary: Molecular dynamics package
    Category: Scientific Applications
    Requires: openmpi >= 1.6
    Requires: fftw
    Provides: gromacs-engine = 4.6.5
    Command: gmx
    Library: libgromacs.so.8
    Module: gromacs/4.6.5

Unknown directives raise — silent typos in dependency metadata are exactly
how real repositories rot.
"""

from __future__ import annotations

from ..errors import RpmError
from .package import Capability, Flag, Package, Requirement

__all__ = ["parse_spec", "build_spec"]

_FLAGS = {f.value: f for f in Flag if f is not Flag.ANY}


def _parse_dep(text: str) -> tuple[str, Flag, str]:
    """Parse ``name [op version]`` into components."""
    parts = text.split()
    if len(parts) == 1:
        return parts[0], Flag.ANY, ""
    if len(parts) == 3 and parts[1] in _FLAGS:
        return parts[0], _FLAGS[parts[1]], parts[2]
    raise RpmError(f"malformed dependency: {text!r}")


def parse_spec(text: str) -> Package:
    """Parse the spec dialect into a :class:`Package`."""
    fields: dict[str, str] = {}
    requires: list[Requirement] = []
    conflicts: list[Requirement] = []
    obsoletes: list[Requirement] = []
    provides: list[Capability] = []
    commands: list[str] = []
    libraries: list[str] = []
    services: list[str] = []
    files: list[str] = []

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if ":" not in line:
            raise RpmError(f"spec line {lineno}: missing ':' in {line!r}")
        key, _, value = line.partition(":")
        key = key.strip().lower()
        value = value.strip()
        if not value:
            raise RpmError(f"spec line {lineno}: empty value for {key!r}")
        if key == "requires":
            name, flag, ver = _parse_dep(value)
            requires.append(Requirement(name, flag, ver))
        elif key == "conflicts":
            name, flag, ver = _parse_dep(value)
            conflicts.append(Requirement(name, flag, ver))
        elif key == "obsoletes":
            name, flag, ver = _parse_dep(value)
            obsoletes.append(Requirement(name, flag, ver))
        elif key == "provides":
            name, flag, ver = _parse_dep(value)
            if flag not in (Flag.ANY, Flag.EQ):
                raise RpmError(f"spec line {lineno}: provides must use '=' or none")
            provides.append(Capability(name, ver))
        elif key == "command":
            commands.append(value)
        elif key == "library":
            libraries.append(value)
        elif key == "service":
            services.append(value)
        elif key == "file":
            files.append(value)
        elif key in ("name", "version", "release", "epoch", "summary",
                     "category", "module", "arch", "size"):
            if key in fields:
                raise RpmError(f"spec line {lineno}: duplicate {key!r}")
            fields[key] = value
        else:
            raise RpmError(f"spec line {lineno}: unknown directive {key!r}")

    if "name" not in fields or "version" not in fields:
        raise RpmError("spec must define Name and Version")
    return Package(
        name=fields["name"],
        version=fields["version"],
        release=fields.get("release", "1"),
        epoch=int(fields.get("epoch", "0")),
        arch=fields.get("arch", "x86_64"),
        summary=fields.get("summary", ""),
        category=fields.get("category", ""),
        size_bytes=int(fields.get("size", str(1024 * 1024))),
        provides=tuple(provides),
        requires=tuple(requires),
        conflicts=tuple(conflicts),
        obsoletes=tuple(obsoletes),
        files=tuple(files),
        commands=tuple(commands),
        libraries=tuple(libraries),
        services=tuple(services),
        modulefile=fields.get("module", ""),
    )


def build_spec(pkg: Package) -> str:
    """Render a :class:`Package` back to the spec dialect (round-trips)."""
    lines = [f"Name: {pkg.name}", f"Version: {pkg.version}", f"Release: {pkg.release}"]
    if pkg.epoch:
        lines.append(f"Epoch: {pkg.epoch}")
    if pkg.arch != "x86_64":
        lines.append(f"Arch: {pkg.arch}")
    if pkg.summary:
        lines.append(f"Summary: {pkg.summary}")
    if pkg.category:
        lines.append(f"Category: {pkg.category}")
    lines.append(f"Size: {pkg.size_bytes}")
    for cap in pkg.provides:
        lines.append(f"Provides: {cap.name} = {cap.version}" if cap.version else f"Provides: {cap.name}")
    for req in pkg.requires:
        lines.append(f"Requires: {req}")
    for req in pkg.conflicts:
        lines.append(f"Conflicts: {req}")
    for req in pkg.obsoletes:
        lines.append(f"Obsoletes: {req}")
    for c in pkg.commands:
        lines.append(f"Command: {c}")
    for lib in pkg.libraries:
        lines.append(f"Library: {lib}")
    for s in pkg.services:
        lines.append(f"Service: {s}")
    for f in pkg.files:
        lines.append(f"File: {f}")
    if pkg.modulefile:
        lines.append(f"Module: {pkg.modulefile}")
    return "\n".join(lines) + "\n"

"""ASCII renderings of populated chassis — the Figure 1-3 substitutes.

The paper's Figures 1-2 are photographs of the LittleFe v4 frame (rear and
front views, six exposed mini-ITX nodes) and Figure 3 is a photograph of the
Limulus HPC200 internals.  We cannot reproduce photographs, so the renderer
draws the same structural information from the hardware model: node layout,
boards, coolers, per-node power supplies, drives, and the head node's two
network drops.  The renderings are deterministic, so they are also tested.
"""

from __future__ import annotations

from .chassis import Machine
from .node import NodeRole

__all__ = ["render_littlefe", "render_limulus", "render_machine"]

_WIDTH = 66


def _box_line(text: str = "") -> str:
    return "| " + text.ljust(_WIDTH - 4) + " |"


def _rule(ch: str = "-") -> str:
    return "+" + ch * (_WIDTH - 2) + "+"


def _node_slot_lines(machine: Machine, index: int, view: str) -> list[str]:
    node = machine.nodes[index]
    tag = "HEAD" if node.role == NodeRole.FRONTEND else f"c{index}"
    lines = [_box_line(f"[slot {index}] {tag:<5} {node.board.model}")]
    if view == "front":
        cool = node.cooler.model if node.cooler else "passive sink"
        lines.append(_box_line(f"        cpu: {node.cpu.model}  fan: {cool}"))
        if node.storage:
            drives = ", ".join(s.model for s in node.storage)
            lines.append(_box_line(f"        disk: {drives}"))
        else:
            lines.append(_box_line("        disk: (diskless)"))
    else:  # rear view: power and network
        psu = node.psu.model if node.psu else "(chassis PSU rail)"
        lines.append(_box_line(f"        psu: {psu}"))
        nic_desc = []
        for j, nic in enumerate(node.nics):
            used = j == 0 or node.role == NodeRole.FRONTEND
            nic_desc.append(f"eth{j}:{'up' if used else 'unused'}")
        lines.append(_box_line(f"        net: {'  '.join(nic_desc)}"))
    return lines


def render_machine(machine: Machine, *, view: str = "front") -> str:
    """Render any populated machine as a labelled ASCII elevation.

    ``view`` is ``"front"`` (boards, coolers, drives — Figure 2) or
    ``"rear"`` (power, network — Figure 1).
    """
    if view not in ("front", "rear"):
        raise ValueError(f"view must be 'front' or 'rear', got {view!r}")
    title = f"{machine.name} — {machine.chassis.model} ({view} view)"
    lines = [_rule("="), _box_line(title), _rule("=")]
    for i in range(len(machine.nodes)):
        lines.extend(_node_slot_lines(machine, i, view))
        lines.append(_rule())
    lines.append(
        _box_line(
            f"{machine.node_count} nodes / {machine.total_cores} cores / "
            f"{machine.rpeak_gflops:.1f} GFLOPS peak / "
            f"{machine.draw_watts:.0f} W / {machine.weight_lb:.0f} lb"
        )
    )
    if machine.shared_psu is not None:
        lines.append(_box_line(f"shared supply: {machine.shared_psu.model}"))
    lines.append(_rule("="))
    return "\n".join(lines)


def render_littlefe(machine: Machine, *, view: str = "front") -> str:
    """Figure 1 (rear) / Figure 2 (front) substitute for a LittleFe frame."""
    if machine.chassis.slots != 6:
        raise ValueError(
            f"render_littlefe expects the 6-slot LittleFe frame, got "
            f"{machine.chassis.model!r}"
        )
    return render_machine(machine, view=view)


def render_limulus(machine: Machine) -> str:
    """Figure 3 substitute: Limulus HPC200 internals (front view only —
    the deskside case hides its rear)."""
    if machine.chassis.slots != 4:
        raise ValueError(
            f"render_limulus expects the 4-slot Limulus case, got "
            f"{machine.chassis.model!r}"
        )
    return render_machine(machine, view="front")

"""The Ganglia-like monitoring substrate (Table 1's ganglia roll): per-host
gmond agents, the frontend gmetad aggregator, round-robin archives, and the
text dashboard.

:func:`monitor_cluster` wires a provisioned Rocks cluster into a working
monitoring mesh in one call.
"""

from ..rocks.installer import ProvisionedCluster
from .gmetad import ClusterSummary, Gmetad
from .gmond import Gmond
from .hierarchy import FleetRack, GmetadTree, GmondRack, monitor_fleet
from .metrics import CORE_METRICS, MetricKind, MetricSample, MetricSpec, MonitoringError
from .rrd import Rrd, RrdPoint

__all__ = [
    "MetricKind",
    "MetricSpec",
    "MetricSample",
    "CORE_METRICS",
    "MonitoringError",
    "Rrd",
    "RrdPoint",
    "Gmond",
    "Gmetad",
    "ClusterSummary",
    "monitor_cluster",
    "FleetRack",
    "GmondRack",
    "GmetadTree",
    "monitor_fleet",
]


def monitor_cluster(
    cluster: ProvisionedCluster,
    *,
    scheduler=None,
    poll_period_s: float = 15.0,
    kernel=None,
) -> Gmetad:
    """Attach gmonds to every node of a provisioned cluster.

    When ``scheduler`` (any :class:`~repro.scheduler.base.BaseScheduler`) is
    given, each node's load metric reports the cores the scheduler currently
    has allocated there — live integration between the batch system and the
    monitoring mesh.  Pass the scheduler's ``kernel`` (a
    :class:`~repro.sim.SimKernel`) to put polling on the same timeline; by
    default it is taken from the scheduler when one is given.
    """
    if kernel is None and scheduler is not None:
        kernel = scheduler.kernel
    gmetad = Gmetad(
        cluster.machine.name, poll_period_s=poll_period_s, kernel=kernel
    )

    def load_source_for(node_name: str):
        if scheduler is None:
            return None

        def busy() -> int:
            total = 0
            for job in scheduler.running:
                if job.allocation is None:
                    continue
                for name, cores in job.allocation.by_node:
                    if name == node_name:
                        total += cores
            return total

        return busy

    for host in cluster.hosts():
        # ProvisionedCluster exposes db_for; ExistingCluster (vendor-built
        # machines like the Limulus) reaches the database via its client.
        if hasattr(cluster, "db_for"):
            db = cluster.db_for(host)
        else:
            db = cluster.client_for(host).db
        gmetad.attach(
            Gmond(host, db, load_source=load_source_for(host.node.name))
        )
    return gmetad

"""GPU accelerator models.

Only one Table 3 site needs these: Marshall University's cluster has "8 GPU
Nodes, 3584 CUDA Cores".  The paper does not name the card; 3584/8 = 448
CUDA cores per card matches the Fermi C2050/M2050 generation.  The published
site Rpeak (6.0 TF for 264 CPU cores + 8 GPUs) implies ~380 GFLOPS per card
counted toward Rpeak, so :func:`calibrated_gpu` lets the deployment registry
solve for that figure — a documented substitution, same policy as
:func:`repro.hardware.cpu.calibrated_cpu`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CatalogError

__all__ = ["GpuModel", "TESLA_C2050", "calibrated_gpu"]


@dataclass(frozen=True)
class GpuModel:
    """A GPU accelerator SKU."""

    model: str
    cuda_cores: int
    rpeak_gflops: float  # double-precision peak counted toward site Rpeak
    tdp_watts: float
    price_usd: float

    def __post_init__(self) -> None:
        if self.cuda_cores <= 0:
            raise CatalogError(f"GPU {self.model} has non-positive core count")
        if self.rpeak_gflops <= 0:
            raise CatalogError(f"GPU {self.model} has non-positive Rpeak")


#: Fermi-generation card with 448 CUDA cores (515 GFLOPS DP at spec).
TESLA_C2050 = GpuModel(
    model="NVIDIA Tesla C2050",
    cuda_cores=448,
    rpeak_gflops=515.0,
    tdp_watts=238.0,
    price_usd=2500.0,
)


def calibrated_gpu(
    name: str,
    *,
    cuda_cores: int,
    target_rpeak_gflops: float,
    tdp_watts: float = 238.0,
    price_usd: float = 2500.0,
) -> GpuModel:
    """Synthesise a GPU whose counted Rpeak matches a published site figure."""
    if target_rpeak_gflops <= 0:
        raise CatalogError(
            f"calibrated GPU needs positive target Rpeak, got {target_rpeak_gflops}"
        )
    return GpuModel(
        model=name,
        cuda_cores=cuda_cores,
        rpeak_gflops=target_rpeak_gflops,
        tdp_watts=tdp_watts,
        price_usd=price_usd,
    )

"""The yum client: the administrator-facing verbs on one host.

``YumClient`` binds a host's RPM database to its enabled repositories (as
configured by the ``.repo`` files in ``/etc/yum.repos.d``) and implements
the workflow of Section 3: ``install``, ``update``, ``check-update``,
``erase``, ``repolist``, plus group installs (used by the XCBC roll).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..distro.host import Host
from ..errors import DependencyError, YumError
from ..rpm.database import RpmDatabase
from ..rpm.package import Package
from ..rpm.transaction import Transaction, TransactionResult
from .depsolver import Resolution, resolve_install, resolve_update
from .repoconfig import RepoStanza, parse_repo_file
from .repository import Repository, RepoSet

__all__ = ["YumClient", "UpdateInfo"]


@dataclass(frozen=True)
class UpdateInfo:
    """One pending update, as ``yum check-update`` would list it."""

    name: str
    installed_evr: str
    available_evr: str
    repo_id: str

    def __str__(self) -> str:
        return f"{self.name}: {self.installed_evr} -> {self.available_evr} ({self.repo_id})"


class YumClient:
    """Yum on one host."""

    def __init__(
        self,
        host: Host,
        db: RpmDatabase | None = None,
        repos: RepoSet | None = None,
    ) -> None:
        if db is not None and db.host is not host:
            raise YumError("RPM database belongs to a different host")
        self.host = host
        self.db = db if db is not None else RpmDatabase(host)
        self.repos = repos if repos is not None else RepoSet()
        #: transaction history, oldest first (yum history)
        self.history: list[TransactionResult] = []

    # -- repo management -----------------------------------------------------

    def configure_repo_file(
        self, filename: str, text: str, *, available: dict[str, Repository]
    ) -> list[Repository]:
        """Write a ``.repo`` file onto the host and enable the repositories
        it names.

        ``available`` maps repo ids to the actual :class:`Repository`
        objects "on the network" — a stanza naming an unknown id raises,
        mirroring a dead baseurl.  Returns the attached repositories.
        """
        if not filename.endswith(".repo"):
            raise YumError(f"repo file must end in .repo: {filename}")
        stanzas = parse_repo_file(text)
        attached = []
        for stanza in stanzas:
            if stanza.repo_id not in available:
                raise YumError(
                    f"{filename}: baseurl for [{stanza.repo_id}] is unreachable"
                )
            repo = available[stanza.repo_id]
            repo.priority = stanza.priority
            repo.enabled = stanza.enabled
            self.repos.add_repo(repo)
            attached.append(repo)
        self.host.fs.write(f"/etc/yum.repos.d/{filename}", text)
        return attached

    def repolist(self) -> list[tuple[str, int, int]]:
        """``yum repolist``: (id, priority, package count)."""
        return self.repos.repolist()

    # -- queries -----------------------------------------------------------------

    def list_installed(self) -> list[Package]:
        """``yum list installed``."""
        return self.db.installed()

    def list_available(self) -> list[str]:
        """``yum list available``: names with at least one candidate that is
        not installed."""
        return sorted(n for n in self.repos.all_names() if not self.db.has(n))

    def check_update(self) -> list[UpdateInfo]:
        """``yum check-update``: pending updates, no changes made."""
        pending: list[UpdateInfo] = []
        for pkg in self.db.installed():
            candidates = self.repos.candidates_by_name(pkg.name)
            if candidates and candidates[-1].evr > pkg.evr:
                newest = candidates[-1]
                repo_id = next(
                    (
                        r.repo_id
                        for r in self.repos.enabled_repos()
                        if any(v.nevra == newest.nevra for v in r.versions_of(newest.name))
                    ),
                    "?",
                )
                pending.append(
                    UpdateInfo(
                        name=pkg.name,
                        installed_evr=pkg.evr_string,
                        available_evr=newest.evr_string,
                        repo_id=repo_id,
                    )
                )
        return pending

    # -- mutations ----------------------------------------------------------------

    def _commit_resolution(self, resolution: Resolution) -> TransactionResult:
        txn = Transaction(self.db)
        for pkg in resolution.to_install:
            if pkg.name in resolution.upgrades or (
                self.db.has(pkg.name) and pkg.evr > self.db.get(pkg.name).evr
            ):
                txn.upgrade(pkg)
            else:
                txn.install(pkg)
        # obsoletes across name changes: erase the old names
        for old_name, new_pkg in resolution.upgrades.items():
            if old_name != new_pkg.name and self.db.has(old_name):
                txn.erase(old_name)
        result = txn.commit()
        self.history.append(result)
        return result

    def install(self, *names: str) -> TransactionResult:
        """``yum install name...`` — resolve closure and commit."""
        if not names:
            raise YumError("install requires at least one package name")
        already = [n for n in names if self.db.has(n)]
        goals = [n for n in names if n not in already]
        if not goals:
            raise YumError(
                f"nothing to do: already installed: {', '.join(sorted(already))}"
            )
        resolution = resolve_install(goals, self.repos, self.db)
        if resolution.is_empty():
            raise YumError("nothing to do")
        return self._commit_resolution(resolution)

    def update(self, *names: str) -> TransactionResult | None:
        """``yum update [name...]`` — apply all pending updates (or the
        named subset).  Returns ``None`` when everything is current."""
        resolution = resolve_update(
            self.repos, self.db, names=list(names) if names else None
        )
        if resolution.is_empty():
            return None
        return self._commit_resolution(resolution)

    def erase(self, *names: str, remove_dependants: bool = False) -> TransactionResult:
        """``yum erase name...``.

        Refuses to break dependants unless ``remove_dependants`` — in which
        case the dependant closure is erased too (yum's ``remove`` with
        cascades), computed to a fixed point.
        """
        if not names:
            raise YumError("erase requires at least one package name")
        to_erase = set(names)
        while True:
            blocked: dict[str, list[str]] = {}
            for name in sorted(to_erase):
                dependants = [
                    d.name
                    for d in self.db.whatrequires(name)
                    if d.name not in to_erase
                ]
                if dependants:
                    blocked[name] = dependants
            if not blocked:
                break
            if not remove_dependants:
                details = "; ".join(
                    f"{name} is required by {', '.join(deps)}"
                    for name, deps in sorted(blocked.items())
                )
                raise DependencyError(f"erase would break dependants: {details}")
            for deps in blocked.values():
                to_erase.update(deps)
        txn = Transaction(self.db)
        for name in sorted(to_erase):
            txn.erase(name)
        result = txn.commit()
        self.history.append(result)
        return result

    def history_undo(self, index: int = -1) -> TransactionResult:
        """``yum history undo``: reverse a past transaction.

        Installed packages are erased, erased packages reinstalled, and
        upgrades downgraded back to the old EVR.  The undo itself is a
        normal validated transaction (it can fail — e.g. erasing a package
        something now depends on), and it joins the history, so an undo can
        itself be undone.
        """
        if not self.history:
            raise YumError("no transactions in history")
        try:
            target = self.history[index]
        except IndexError:
            raise YumError(
                f"no transaction at history index {index} "
                f"(history has {len(self.history)})"
            ) from None
        txn = Transaction(self.db, allow_downgrade=True)
        for pkg in target.installed:
            txn.erase(pkg.name)
        for pkg in target.erased:
            txn.install(pkg)
        for old, new in target.upgraded:
            if old.name == new.name:
                txn.upgrade(old)
            else:  # an obsoletes-rename: put the old name back
                txn.erase(new.name)
                txn.install(old)
        result = txn.commit()
        self.history.append(result)
        return result

    def groupinstall(self, group_name: str, names: list[str]) -> TransactionResult:
        """Install a named set of packages as one transaction (used by the
        XCBC roll and the XNIT 'full toolkit' path)."""
        missing = [n for n in names if not self.db.has(n)]
        if not missing:
            raise YumError(f"group {group_name!r}: nothing to do")
        resolution = resolve_install(missing, self.repos, self.db)
        if resolution.is_empty():
            raise YumError(f"group {group_name!r}: nothing to do")
        return self._commit_resolution(resolution)

"""Package model tests: capabilities, conflicts, obsoletes, spec round-trip."""

import pytest

from repro.errors import RpmError
from repro.rpm import (
    Capability,
    Flag,
    Package,
    Requirement,
    build_spec,
    parse_spec,
)


def pkg(name="demo", version="1.0", **kw):
    return Package(name=name, version=version, **kw)


class TestIdentity:
    def test_nevra_without_epoch(self):
        assert pkg("gromacs", "4.6.5", release="2").nevra == "gromacs-4.6.5-2.x86_64"

    def test_nevra_with_epoch(self):
        assert pkg("openssl", "1.0.1", epoch=1).nevra == "openssl-1:1.0.1-1.x86_64"

    def test_empty_name_rejected(self):
        with pytest.raises(RpmError):
            Package(name="", version="1.0")

    def test_empty_version_rejected(self):
        with pytest.raises(RpmError):
            Package(name="x", version="")

    def test_is_newer_than(self):
        assert pkg(version="2.0").is_newer_than(pkg(version="1.9"))
        with pytest.raises(RpmError):
            pkg("a").is_newer_than(pkg("b"))


class TestCapabilities:
    def test_implicit_self_provide(self):
        p = pkg("fftw", "3.3.3")
        assert p.satisfies(Requirement("fftw"))
        assert p.satisfies(Requirement("fftw", Flag.GE, "3.0"))
        assert not p.satisfies(Requirement("fftw", Flag.GE, "3.4"))

    def test_explicit_provides(self):
        p = pkg("gnu-make", provides=(Capability("make-engine", "3.81"),))
        assert p.satisfies(Requirement("make-engine", Flag.EQ, "3.81"))
        assert p.satisfies(Requirement("make-engine"))

    def test_unversioned_provide_matches_versioned_requirement(self):
        p = pkg("mta", provides=(Capability("smtp-daemon"),))
        assert p.satisfies(Requirement("smtp-daemon", Flag.GE, "2.0"))

    @pytest.mark.parametrize(
        "flag, version, expected",
        [
            (Flag.EQ, "1.0", True),
            (Flag.LT, "1.1", True),
            (Flag.LT, "1.0", False),
            (Flag.LE, "1.0", True),
            (Flag.GT, "0.9", True),
            (Flag.GT, "1.0", False),
            (Flag.GE, "1.0", True),
        ],
    )
    def test_all_comparison_flags(self, flag, version, expected):
        p = pkg(version="1.0")
        assert p.satisfies(Requirement("demo", flag, version)) is expected

    def test_requirement_flag_version_consistency(self):
        with pytest.raises(RpmError):
            Requirement("x", Flag.GE, "")
        with pytest.raises(RpmError):
            Requirement("x", Flag.ANY, "1.0")


class TestConflictsObsoletes:
    def test_mutual_conflict_detection(self):
        torque = pkg("torque", conflicts=(Requirement("slurm"),))
        slurm = pkg("slurm")
        assert torque.conflicts_with(slurm)
        assert slurm.conflicts_with(torque)  # symmetric check

    def test_versioned_conflict(self):
        a = pkg("a", conflicts=(Requirement("b", Flag.LT, "2.0"),))
        assert a.conflicts_with(pkg("b", "1.9"))
        assert not a.conflicts_with(pkg("b", "2.0"))

    def test_obsoletes_by_name_and_version(self):
        new = pkg("gromacs5", obsoletes=(Requirement("gromacs", Flag.LT, "5.0"),))
        assert new.obsoletes_package(pkg("gromacs", "4.6.5"))
        assert not new.obsoletes_package(pkg("gromacs", "5.0.1"))


class TestPayload:
    def test_default_paths(self):
        p = pkg(
            "gromacs",
            commands=("mdrun",),
            libraries=("libgmx.so.8",),
            files=("/opt/gromacs/.keep",),
        )
        assert "/usr/bin/mdrun" in p.default_paths()
        assert "/usr/lib64/libgmx.so.8" in p.default_paths()
        assert "/opt/gromacs/.keep" in p.default_paths()


class TestSpecDialect:
    SPEC = """\
# molecular dynamics
Name: gromacs
Version: 4.6.5
Release: 2
Summary: Molecular dynamics package
Category: Scientific Applications
Requires: openmpi >= 1.6
Requires: fftw
Provides: gromacs-engine = 4.6.5
Conflicts: gromacs-mpich
Command: mdrun
Library: libgmx.so.8
Module: gromacs/4.6.5
"""

    def test_parse(self):
        p = parse_spec(self.SPEC)
        assert p.nevra == "gromacs-4.6.5-2.x86_64"
        assert Requirement("openmpi", Flag.GE, "1.6") in p.requires
        assert p.modulefile == "gromacs/4.6.5"

    def test_roundtrip(self):
        p = parse_spec(self.SPEC)
        assert parse_spec(build_spec(p)) == p

    def test_unknown_directive_rejected(self):
        with pytest.raises(RpmError, match="unknown directive"):
            parse_spec("Name: x\nVersion: 1\nColour: blue\n")

    def test_missing_name_rejected(self):
        with pytest.raises(RpmError, match="Name and Version"):
            parse_spec("Version: 1.0\n")

    def test_duplicate_field_rejected(self):
        with pytest.raises(RpmError, match="duplicate"):
            parse_spec("Name: x\nName: y\nVersion: 1\n")

    def test_malformed_dependency_rejected(self):
        with pytest.raises(RpmError, match="malformed"):
            parse_spec("Name: x\nVersion: 1\nRequires: a >= \n")

    def test_provides_with_range_rejected(self):
        with pytest.raises(RpmError, match="provides"):
            parse_spec("Name: x\nVersion: 1\nProvides: y >= 2\n")

#!/usr/bin/env python3
"""The capstone: rebuild the entire Table 3 fleet, each site its own way.

Every deployed cluster the paper reports is rebuilt end to end — hardware
from the (calibrated) parts, then software through the site's *actual*
adoption path from Section 4:

* XCBC sites (Kansas, Marshall, IU LittleFe) get the full Rocks
  from-scratch install;
* XNIT sites (Montana State, Hawaii, IU Limulus) are stood up under their
  own management and integrated from the repository;
* Montana also gets its 300 TB Lustre and Hawaii its 40+60 TB systems.

The fleet is then audited host by host and the Table 3 totals re-derived
from the living clusters.  This run builds ~300 hosts; expect ~20 seconds.
"""

from repro.core import (
    AdoptionPath,
    TABLE3_SITES,
    audit_cluster,
    build_existing_cluster,
    build_xcbc_cluster,
    build_xnit_repository,
    capacity_goal_projection,
    integrate_host,
    rebuild_site_hardware,
    setup_via_repo_rpm,
)
from repro.pfs import hawaii_storage, montana_hyalite_storage


def rebuild_site(site, repo):
    """One site, through its adoption path; returns (cluster, mean audit)."""
    machine = rebuild_site_hardware(site)
    if site.adoption is AdoptionPath.XCBC:
        cluster = build_xcbc_cluster(machine, include_optional_rolls=False).cluster
    else:
        cluster = build_existing_cluster(machine)
        for host in cluster.hosts():
            client = cluster.client_for(host)
            setup_via_repo_rpm(client, repo)
            integrate_host(client, full_toolkit=True)
    reports = audit_cluster(cluster)
    mean_audit = sum(r.overall for r in reports.values()) / len(reports)
    return cluster, mean_audit


def main() -> None:
    repo = build_xnit_repository()
    print(f"{'Site':<44}{'Nodes':>6}{'Cores':>7}{'TF':>7}"
          f"{'Path':>6}{'Audit':>8}")
    total_nodes = total_cores = 0
    total_gflops = 0.0
    for site in TABLE3_SITES:
        cluster, audit = rebuild_site(site, repo)
        machine = cluster.machine
        path = "XCBC" if site.adoption is AdoptionPath.XCBC else "XNIT"
        print(f"{site.site[:42]:<44}{machine.node_count:>6}"
              f"{machine.total_cores:>7}{machine.rpeak_gflops / 1000:>7.2f}"
              f"{path:>6}{audit:>7.0%}")
        total_nodes += machine.node_count
        total_cores += machine.total_cores
        total_gflops += machine.rpeak_gflops
    print(f"{'Total':<44}{total_nodes:>6}{total_cores:>7}"
          f"{total_gflops / 1000:>7.2f}")
    print(f"(paper totals: 304 / 2708 / 49.61)")

    print("\nSite storage (Table 3, other info):")
    hyalite = montana_hyalite_storage()
    persistent, scratch = hawaii_storage()
    print(f"  Montana Hyalite Lustre: {hyalite.capacity_bytes / 1e12:.0f} TB "
          f"over {len(hyalite.osts)} OSTs")
    print(f"  Hawaii PBARC: {persistent.capacity_bytes / 1e12:.0f} TB storage"
          f" + {scratch.capacity_bytes / 1e12:.0f} TB scratch")

    factor, annual = capacity_goal_projection()
    print(f"\nThe 2020 half-PetaFLOPS goal needs {factor:.1f}x growth "
          f"(~{annual:.0%}/year) from here.")


def cluster_definition():
    """Pre-flight views of every Table 3 site's hardware, for
    ``cluster-lint`` — each site is one definition in the run."""
    from repro.analyze import ClusterDefinition

    return [
        ClusterDefinition(
            name=site.site[:40], machine=rebuild_site_hardware(site)
        )
        for site in TABLE3_SITES
    ]


if __name__ == "__main__":
    main()

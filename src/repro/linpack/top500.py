"""TOP500-style reporting and price/performance (Table 5's derived columns).

The paper prices both machines in dollars per GFLOPS on both Rpeak and Rmax
and argues they sit "an order of magnitude lower than similarly powered
systems in a typical server configuration" — :func:`rank` and
:class:`PricePerformance` make those comparisons executable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LinpackError
from .hpl import HplReport

__all__ = ["PricePerformance", "price_performance", "rank", "render_table5_row"]


@dataclass(frozen=True)
class PricePerformance:
    """Cost figures for one system (the last three Table 5 columns)."""

    system: str
    cost_usd: float
    rpeak_gflops: float
    rmax_gflops: float

    @property
    def usd_per_rpeak_gflops(self) -> float:
        return self.cost_usd / self.rpeak_gflops

    @property
    def usd_per_rmax_gflops(self) -> float:
        return self.cost_usd / self.rmax_gflops


def price_performance(report: HplReport, cost_usd: float) -> PricePerformance:
    """Derive price/performance from an HPL report and a system cost."""
    if cost_usd <= 0:
        raise LinpackError(f"cost must be positive, got {cost_usd}")
    if report.rmax_gflops <= 0 or report.rpeak_gflops <= 0:
        raise LinpackError("report has non-positive performance")
    return PricePerformance(
        system=report.machine_name,
        cost_usd=cost_usd,
        rpeak_gflops=report.rpeak_gflops,
        rmax_gflops=report.rmax_gflops,
    )


def rank(reports: list[HplReport]) -> list[HplReport]:
    """TOP500 ordering: by Rmax, descending."""
    return sorted(reports, key=lambda r: -r.rmax_gflops)


def render_table5_row(pp: PricePerformance, *, estimated: bool = False) -> str:
    """One Table 5 row, formatted like the paper's."""
    star = "*" if estimated else " "
    return (
        f"{pp.system:<16} {pp.rpeak_gflops:7.1f} {pp.rmax_gflops:7.1f}{star} "
        f"${pp.cost_usd:<7.0f} "
        f"${pp.usd_per_rpeak_gflops:.0f}/GFLOP  ${pp.usd_per_rmax_gflops:.0f}/GFLOPS"
    )

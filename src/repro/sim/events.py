"""The event queue: a stable priority queue over simulated time.

Ordering is ``(time_s, seq)`` where ``seq`` is a per-queue submission
serial — events scheduled for the same instant fire in submission order
(stable FIFO tie-break), which is what makes whole-simulation runs
deterministic and traces byte-identical across runs.

The heap stores plain ``(time_s, seq, handle)`` tuples, so sift
comparisons run on C-level float/int pairs instead of calling back into
``EventHandle.__lt__`` — the single hottest line of the kernel before the
perf overhaul (see docs/PERF.md and ``python -m repro.perf``).

Cancellation is lazy: a cancelled handle stays in the heap and is skipped
at pop time, the standard O(log n) trick that avoids heap surgery.
:meth:`EventQueue.reschedule` is the first-class replacement for the "pull
the tuple out and heapify" pattern this module retired.

Lazy deletion must not turn into a leak: schedule/reschedule purge dead
entries that have reached the heap top, and once dead entries outnumber
live ones (past a small floor) the heap is compacted in O(n) — so heavy
cancel/reschedule churn (the fault injector's access pattern) keeps the
heap within a constant factor of the live event count.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..errors import SimulationError

__all__ = ["EventHandle", "EventQueue"]

_INF = float("inf")


class EventHandle:
    """One scheduled event; compare by ``(time_s, seq)`` for heap order."""

    __slots__ = ("time_s", "seq", "callback", "label", "_dead")

    def __init__(
        self, time_s: float, seq: int, callback: Callable[[], object], label: str
    ) -> None:
        self.time_s = time_s
        self.seq = seq
        self.callback = callback
        self.label = label
        self._dead = False  # cancelled or already fired

    @property
    def active(self) -> bool:
        """True while the event is still pending."""
        return not self._dead

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time_s, self.seq) < (other.time_s, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self.active else "dead"
        return f"EventHandle({self.label!r}, t={self.time_s}, seq={self.seq}, {state})"


#: Dead entries tolerated before compaction kicks in (keeps tiny queues
#: from compacting on every churn cycle).
_COMPACT_FLOOR = 64


class EventQueue:
    """The kernel's pending-event heap."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return self._live

    @property
    def next_seq(self) -> int:
        """The serial the next scheduled event will take (snapshot probe)."""
        return self._next_seq

    def snapshot_entries(self) -> list[tuple[float, int, str]]:
        """Live entries as ``(time_s, seq, label)``, heap-order-free.

        Callbacks are closures and cannot be serialized — this is the
        declarative shadow of the queue that checkpoints digest to verify
        a replayed run rebuilt the exact same pending-event set.
        """
        return sorted(
            (h.time_s, h.seq, h.label) for _, _, h in self._heap if h.active
        )

    @property
    def heap_size(self) -> int:
        """Physical heap entries, live + not-yet-purged dead (leak probe)."""
        return len(self._heap)

    def compact(self) -> int:
        """Drop every dead entry from the heap; returns how many went."""
        dead = len(self._heap) - self._live
        if dead:
            self._heap = [entry for entry in self._heap if entry[2].active]
            heapq.heapify(self._heap)
        return dead

    def _maybe_compact(self) -> None:
        self._prune()
        dead = len(self._heap) - self._live
        if dead > _COMPACT_FLOOR and dead > self._live:
            self.compact()

    def schedule(
        self,
        time_s: float,
        callback: Callable[[], object],
        *,
        label: str = "event",
    ) -> EventHandle:
        """Enqueue ``callback`` to fire at ``time_s``; returns its handle."""
        time_s = float(time_s)
        # One chained comparison rejects NaN (all comparisons false) and
        # both infinities without separate math.isnan/isinf calls.
        if not -_INF < time_s < _INF:
            raise SimulationError(f"cannot schedule an event at t={time_s}")
        self._maybe_compact()
        seq = self._next_seq
        self._next_seq = seq + 1
        handle = EventHandle(time_s, seq, callback, label)
        heapq.heappush(self._heap, (time_s, seq, handle))
        self._live += 1
        return handle

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event (lazy deletion)."""
        if not handle.active:
            raise SimulationError(
                f"event {handle.label!r} already fired or was cancelled"
            )
        handle._dead = True
        self._live -= 1

    def reschedule(self, handle: EventHandle, time_s: float) -> EventHandle:
        """Move a pending event to a new time; returns the new handle.

        The event re-enters the queue as if newly submitted (it takes a
        fresh serial, so it fires after events already scheduled for the
        same instant) — the first-class API that replaces mutating the
        heap representation in place.
        """
        callback, label = handle.callback, handle.label
        self.cancel(handle)
        return self.schedule(time_s, callback, label=label)

    def _prune(self) -> None:
        heap = self._heap
        while heap and heap[0][2]._dead:
            heapq.heappop(heap)

    def peek(self) -> EventHandle | None:
        """The earliest pending event, or None when empty."""
        self._prune()
        return self._heap[0][2] if self._heap else None

    def peek_time_s(self) -> float | None:
        """The earliest pending event's time, or None when empty."""
        self._prune()
        return self._heap[0][0] if self._heap else None

    def pop(self) -> EventHandle | None:
        """Remove and return the earliest pending event (None when empty)."""
        self._prune()
        if not self._heap:
            return None
        handle = heapq.heappop(self._heap)[2]
        handle._dead = True  # fired: the handle can no longer be cancelled
        self._live -= 1
        return handle

    def pop_batch(self) -> list[EventHandle]:
        """Remove and return every pending event sharing the earliest time,
        in submission (seq) order.

        Unlike :meth:`pop`, batch members stay *pending* until the caller
        fires them with :meth:`mark_fired` — so an earlier member's callback
        may still cancel (or reschedule) a later member of the same batch,
        exactly as it could when events were popped one at a time.
        """
        self._prune()
        heap = self._heap
        if not heap:
            return []
        time_s = heap[0][0]
        batch: list[EventHandle] = []
        heappop = heapq.heappop
        while heap and heap[0][0] == time_s:
            handle = heappop(heap)[2]
            if not handle._dead:
                batch.append(handle)
        return batch

    def mark_fired(self, handle: EventHandle) -> None:
        """Account a batch member as fired (pairs with :meth:`pop_batch`)."""
        handle._dead = True
        self._live -= 1

    def requeue(self, handles: list[EventHandle]) -> None:
        """Put unfired batch members back with their original (time, seq).

        The exception path of a batched :meth:`~repro.sim.SimKernel.run_until`:
        if a callback raises mid-batch, the not-yet-fired members return to
        the heap exactly as if they had never been popped.
        """
        for handle in handles:
            if handle.active:
                heapq.heappush(self._heap, (handle.time_s, handle.seq, handle))

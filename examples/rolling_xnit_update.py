#!/usr/bin/env python3
"""A rolling XNIT update across a 10,000-node fleet, under fire.

The paper's one-admin story at fleet scale: push a package update to ten
thousand nodes while the fleet misbehaves, without babysitting and
without half-bricking the machine.  This example drives
:class:`repro.shell.RollingUpdate` over a 25-rack synthetic fleet while a
declarative :class:`~repro.faults.FaultPlan` injects trouble mid-sweep:

* **node crashes** — 30 nodes die at scheduled instants; nodes that crash
  before their wave are *skipped and reported*, nodes that crash mid-wave
  burn their retries and land in the failed NodeSet;
* **a rack uplink flap** — rack 19's switch drops every connection for a
  long window; the wave that hits it fails en masse, which (a) trips the
  rack failure-domain limit (the rest of rack 19 is skipped, the sweep is
  not) and (b) crosses the sweep failure threshold, **auto-pausing** the
  update instead of marching on.

The operator waits out the flap, resumes, and the sweep completes: every
wave drained through the scheduler (straggler jobs force-requeued at the
drain deadline), executed with bounded fanout, health-verified through
the gmetad tree, and reported as folded NodeSets — never a 10,000-line
listing, never an exception.  Two runs with the same seed produce
byte-identical traces (checked below).
"""

import argparse
import sys

from repro.errors import ShellError
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.fleet import FleetTable
from repro.monitoring.hierarchy import FleetRack, GmetadTree
from repro.scheduler import ClusterResources, Job, TorqueScheduler
from repro.shell import RollingUpdate, ShellCommand, ShellEngine
from repro.sim import SimKernel

RACKS = 25
NODES_PER_RACK = 400            # 10,000 compute nodes
WAVE_SIZE = 512
FANOUT = 64
FLAP_RACK = 19
FLAP_START_S = 1500.0
FLAP_DURATION_S = 4500.0
MAX_FAILURES = 100
RACK_FAILURES_LIMIT = 50
JOB_COUNT = 32


def build_fleet() -> FleetTable:
    """25 racks x 400 installed compute nodes plus a frontend row."""
    fleet = FleetTable()
    fleet.add_row(
        name="xcbc-frontend", appliance="frontend", rack=0, rank=0,
        cores=16, state="os-installed",
    )
    for rack in range(RACKS):
        for rank in range(NODES_PER_RACK):
            fleet.add_row(
                name=f"compute-{rack}-{rank}", appliance="compute",
                rack=rack, rank=rank, cores=8, state="os-installed",
            )
    return fleet


def fault_plan() -> FaultPlan:
    """30 scattered node crashes plus one long rack uplink flap."""
    specs = [
        FaultSpec(
            kind=FaultKind.NODE_CRASH,
            target=f"compute-{(7 * k) % RACKS}-{(37 * k) % NODES_PER_RACK}",
            at_s=300.0 + 75.0 * k,
        )
        for k in range(30)
    ]
    specs.append(
        FaultSpec(
            kind=FaultKind.LINK_FLAP,
            target=f"rack-{FLAP_RACK}",
            at_s=FLAP_START_S,
            duration_s=FLAP_DURATION_S,
            params={"loss_prob": 1.0},
        )
    )
    return FaultPlan(name="rolling-update-chaos", faults=tuple(specs))


def run_update(seed: int = 42, trace_path=None) -> dict:
    """One full scenario: sweep, pause under fire, resume, finish."""
    fleet = build_fleet()
    kernel = SimKernel(seed=seed)
    resources = ClusterResources.from_fleet(fleet, label="xnit-fleet")
    scheduler = TorqueScheduler(resources, kernel=kernel)
    for k in range(JOB_COUNT):
        scheduler.submit(
            Job(
                name=f"mdrun-{k:02d}", user="student", cores=8,
                runtime_s=1500.0, walltime_limit_s=7200.0,
            )
        )

    tree = GmetadTree("xnit-fleet", kernel=kernel)
    indices = fleet.ordered_indices()
    for rack in range(RACKS):
        tree.add_rack(
            FleetRack(
                f"rack{rack:03d}", fleet,
                [i for i in indices if fleet.racks[i] == rack
                 and fleet.appliances[i] == "compute"],
            )
        )

    plan = fault_plan()
    plan.validate()
    flap_window = {"start_s": None, "end_s": None}
    sched_names = frozenset(resources.node_names())

    def crash(name: str) -> None:
        fleet.set_flag("responsive", fleet.index_of(name), False)
        if name in sched_names and not resources.is_failed(name):
            scheduler.crash_node(name, reason="fault injection")
        kernel.trace.emit(
            "fault.inject", t_s=kernel.now_s, subsystem="faults",
            fault=FaultKind.NODE_CRASH.value, target=name,
        )

    def flap_start(target: str, duration_s: float) -> None:
        flap_window["start_s"] = kernel.now_s
        flap_window["end_s"] = kernel.now_s + duration_s
        kernel.trace.emit(
            "fault.inject", t_s=kernel.now_s, subsystem="faults",
            fault=FaultKind.LINK_FLAP.value, target=target,
        )

    for spec in plan.faults:
        if spec.kind is FaultKind.NODE_CRASH:
            kernel.at(spec.at_s, lambda name=spec.target: crash(name),
                      label=f"fault:{spec.target}")
        elif spec.kind is FaultKind.LINK_FLAP:
            kernel.at(
                spec.at_s,
                lambda t=spec.target, d=spec.duration_s: flap_start(t, d),
                label=f"fault:{spec.target}",
            )

    def xnit_update(node: str) -> tuple[int, str]:
        """The simulated command: fails transport while its rack flaps."""
        start, end = flap_window["start_s"], flap_window["end_s"]
        in_window = start is not None and start <= kernel.now_s < end
        if in_window and fleet.racks[fleet.index_of(node)] == FLAP_RACK:
            raise ShellError("link flap: connection reset by peer")
        return 0, "xnit 0.0.9 applied"

    engine = ShellEngine(fleet, kernel=kernel)
    update = RollingUpdate(
        engine,
        scheduler=scheduler,
        tree=tree,
        wave_size=WAVE_SIZE,
        fanout=FANOUT,
        timeout_s=60.0,
        max_failures=MAX_FAILURES,
        rack_failures_limit=RACK_FAILURES_LIMIT,
        drain_deadline_s=120.0,
        health_cycles=3,
    )
    command = ShellCommand(
        "yum -y update xnit-release", duration_s=30.0, jitter=0.2,
        handler=xnit_update,
    )
    report = update.run(fleet.nodeset(fleet.compute_indices()), command)
    paused_at = len(report.waves)
    pause_reason = report.pause_reason
    if report.state == "paused":
        # The operator waits out the flap, then resumes with a fresh
        # failure budget; failed nodes stay parked offline for repair.
        flap_end = flap_window["end_s"]
        if flap_end is not None and kernel.now_s < flap_end:
            kernel.run_until(flap_end)
        report = update.resume()

    if trace_path is not None:
        kernel.trace.write_jsonl(trace_path)
    return {
        "report": report,
        "update": update,
        "kernel": kernel,
        "resources": resources,
        "scheduler": scheduler,
        "tree": tree,
        "paused_at": paused_at,
        "pause_reason": pause_reason,
        "jsonl": kernel.trace.to_jsonl(),
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write the JSONL trace here")
    args = parser.parse_args(argv if argv is not None else [])

    run = run_update(args.seed, trace_path=args.trace)
    report, kernel = run["report"], run["kernel"]
    trace = kernel.trace

    print(f"=== Rolling XNIT update: {RACKS * NODES_PER_RACK} nodes, "
          f"waves of {WAVE_SIZE}, fanout {FANOUT} ===")
    for event in trace.events:
        if event.kind == "shell.wave":
            d = event.data
            print(f"wave {d['wave']:>2}: {d['status']:<9} "
                  f"ok={d['ok']:<4} failed={d['failed']:<4} "
                  f"skipped={d['skipped']:<4} {d['nodes']}")
        elif event.kind == "shell.abort":
            print(f"ABORT GATE: {event.data['reason']}")

    print(f"\nauto-paused after wave {run['paused_at'] - 1}: "
          f"{run['pause_reason']}")
    print(f"final state: {report.state}")
    ok, failed, skipped = (
        report.ok_nodes(), report.failed_nodes(), report.skipped_nodes()
    )
    print(f"updated ok ({len(ok)} nodes): {str(ok)[:70]}...")
    print(f"failed   ({len(failed)} nodes): {failed}")
    print(f"skipped  ({len(skipped)} nodes): {skipped}")
    peak = max(
        (w.report.max_inflight for w in report.waves if w.report is not None),
        default=0,
    )
    print(f"peak in-flight workers: {peak} (bound: {FANOUT})")
    print(f"jobs force-requeued by drain deadlines: "
          f"{trace.count('job.requeue')}")
    counts = {k: v for k, v in sorted(trace.by_kind.items())
              if k.startswith("shell.")}
    print(f"shell.* events: {counts}")

    again = run_update(args.seed)
    identical = again["jsonl"] == run["jsonl"]
    print(f"\nsame seed re-run, traces byte-identical: {identical}")
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(validate: python -m repro.sim {args.trace})")


def cluster_definition():
    """An equivalent synthetic site, for ``cluster-lint``."""
    from repro.analyze import ClusterDefinition
    from repro.core.deployments import build_synthetic_fleet
    from repro.scheduler import default_queue_for

    machine = build_synthetic_fleet(300)
    return ClusterDefinition(
        name="rolling-xnit-update",
        machine=machine,
        queues=(default_queue_for(machine),),
    )


if __name__ == "__main__":
    main(sys.argv[1:])

"""Reference-build tests: the exact machines of Tables 4-5 and Figures 1-3."""

import pytest

from repro.errors import ClearanceError
from repro.hardware import (
    INTEL_STOCK_LGA1150,
    build_limulus_hpc200,
    build_littlefe_modified,
    build_littlefe_original,
    render_limulus,
    render_littlefe,
    render_machine,
)


class TestLittleFeModified:
    def test_table4_characteristics(self, littlefe_quote):
        m = littlefe_quote.machine
        assert m.node_count == 6
        assert m.cpu_count == 6
        assert m.total_cores == 12
        assert m.clock_ghz == pytest.approx(2.8)

    def test_table5_rpeak(self, littlefe_quote):
        assert littlefe_quote.machine.rpeak_gflops == pytest.approx(537.6)

    def test_every_node_has_a_disk_for_rocks(self, littlefe_quote):
        assert all(not n.diskless for n in littlefe_quote.machine.nodes)

    def test_every_node_has_own_psu(self, littlefe_quote):
        assert all(n.psu is not None for n in littlefe_quote.machine.nodes)
        assert littlefe_quote.machine.shared_psu is None

    def test_quoted_price_is_under_4000(self, littlefe_quote):
        # "can be built from easily available components for less than $4,000"
        assert littlefe_quote.quoted_usd < 4000
        assert littlefe_quote.bom_usd < 4000

    def test_bom_within_20pct_of_quote(self, littlefe_quote):
        assert littlefe_quote.cost_delta_fraction < 0.20

    def test_luggable_weight(self, littlefe_quote):
        # "weighs less than 50 pounds"
        assert littlefe_quote.machine.weight_lb < 50
        assert littlefe_quote.machine.chassis.portable

    def test_stock_cooler_reproduces_paper_failure(self):
        with pytest.raises(ClearanceError):
            build_littlefe_modified(cooler=INTEL_STOCK_LGA1150)


class TestLimulus:
    def test_table4_characteristics(self, limulus_quote):
        m = limulus_quote.machine
        assert m.node_count == 4
        assert m.total_cores == 16
        assert m.clock_ghz == pytest.approx(3.1)

    def test_table5_rpeak(self, limulus_quote):
        assert limulus_quote.machine.rpeak_gflops == pytest.approx(793.6)

    def test_compute_nodes_are_diskless(self, limulus_quote):
        assert all(n.diskless for n in limulus_quote.machine.compute_nodes)
        assert not limulus_quote.machine.head.diskless

    def test_single_850w_supply(self, limulus_quote):
        m = limulus_quote.machine
        assert m.shared_psu is not None
        assert m.shared_psu.rating_watts == pytest.approx(850.0)
        assert all(n.psu is None for n in m.nodes)

    def test_weight_is_50_lb(self, limulus_quote):
        assert limulus_quote.machine.weight_lb == pytest.approx(50.0)

    def test_quoted_price(self, limulus_quote):
        assert limulus_quote.quoted_usd == pytest.approx(5995.0)

    def test_more_cores_than_littlefe_in_fewer_nodes(
        self, limulus_quote, littlefe_quote
    ):
        # Section 5.2: "16 cores ... versus the 12 cores in the IU-built
        # LittleFe"
        assert limulus_quote.machine.total_cores > littlefe_quote.machine.total_cores
        assert limulus_quote.machine.node_count < littlefe_quote.machine.node_count


class TestOriginalLittleFe:
    def test_diskless_by_design(self, original_littlefe_quote):
        assert all(n.diskless for n in original_littlefe_quote.machine.nodes)

    def test_atom_rpeak_is_tiny(self, original_littlefe_quote):
        # 12 cores x 1.66 GHz x 2 flops/cycle
        assert original_littlefe_quote.machine.rpeak_gflops == pytest.approx(39.84)

    def test_modified_build_is_much_faster(
        self, original_littlefe_quote, littlefe_quote
    ):
        # Section 5.1: "significant gains in single-core performance"
        ratio = (
            littlefe_quote.machine.rpeak_gflops
            / original_littlefe_quote.machine.rpeak_gflops
        )
        assert ratio > 10

    def test_power_went_up_with_haswell(
        self, original_littlefe_quote, littlefe_quote
    ):
        assert (
            littlefe_quote.machine.draw_watts
            > original_littlefe_quote.machine.draw_watts
        )


class TestRenderings:
    def test_littlefe_front_view_shows_six_slots(self, littlefe_quote):
        art = render_littlefe(littlefe_quote.machine, view="front")
        assert art.count("[slot") == 6
        assert "Rosewill" in art
        assert "Crucial" in art

    def test_littlefe_rear_view_shows_psus_and_nics(self, littlefe_quote):
        art = render_littlefe(littlefe_quote.machine, view="rear")
        assert "picoPSU" in art
        assert "eth1:up" in art  # dual-homed head
        assert "eth1:unused" in art  # compute second port

    def test_limulus_view_shows_diskless_blades(self, limulus_quote):
        art = render_limulus(limulus_quote.machine)
        assert art.count("(diskless)") == 3
        assert "850W" in art

    def test_render_rejects_bad_view(self, littlefe_quote):
        with pytest.raises(ValueError):
            render_machine(littlefe_quote.machine, view="top")

    def test_render_littlefe_rejects_wrong_chassis(self, limulus_quote):
        with pytest.raises(ValueError):
            render_littlefe(limulus_quote.machine)

    def test_renders_are_deterministic(self, littlefe_quote):
        a = render_littlefe(littlefe_quote.machine)
        b = render_littlefe(littlefe_quote.machine)
        assert a == b

    def test_summary_line_has_core_count(self, littlefe_quote):
        art = render_littlefe(littlefe_quote.machine)
        assert "12 cores" in art

"""A SLURM-like scheduler: multifactor priority with fair-share.

XCBC lets the administrator "choose one" of Torque/SLURM/SGE (Table 1).
SLURM's distinguishing behaviour at this scale is the multifactor priority
plugin: job priority is a weighted sum of age (time in queue), job size
(small jobs favoured), and fair-share (users who have consumed less get
more).  Backfill is on by default.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import SimKernel
from .base import BaseScheduler, ClusterResources
from .job import Job

__all__ = ["SlurmScheduler", "MultifactorWeights"]


@dataclass(frozen=True)
class MultifactorWeights:
    """Weights of the priority factors (slurm.conf PriorityWeight*)."""

    age: float = 1.0          # per queued second
    size: float = 100.0       # scaled by (1 - cores/total)
    fairshare: float = 1000.0 # scaled by each user's unused share


class SlurmScheduler(BaseScheduler):
    """Multifactor priority + EASY backfill."""

    scheduler_name = "slurm"
    backfill = True

    def __init__(
        self,
        resources: ClusterResources,
        *,
        weights: MultifactorWeights | None = None,
        kernel: SimKernel | None = None,
    ) -> None:
        super().__init__(resources, kernel=kernel)
        self.weights = weights or MultifactorWeights()
        #: core-seconds consumed per user (decayed usage in real SLURM;
        #: cumulative here, which preserves the fair-share ordering)
        self.usage: dict[str, float] = {}

    def _fairshare_factor(self, user: str) -> float:
        """1.0 for an unused user, approaching 0 as usage grows."""
        used = self.usage.get(user, 0.0)
        total = sum(self.usage.values()) or 1.0
        return 1.0 - used / total if total > 0 else 1.0

    def priority_of(self, job: Job) -> float:
        """The multifactor score (higher runs earlier)."""
        age = (self.now_s - job.submit_time_s) * self.weights.age
        size = (1.0 - job.cores / self.resources.total_cores) * self.weights.size
        fairshare = self._fairshare_factor(job.user) * self.weights.fairshare
        return age + size + fairshare + job.priority

    def _schedulable_order(self) -> list[Job]:
        return sorted(
            self.pending,
            key=lambda j: (-self.priority_of(j), j.submit_time_s, j.job_id),
        )

    def _on_job_end(self, job: Job) -> None:
        """Complete the job, then charge its core-seconds to user usage.

        Charging happens after the post-completion scheduling pass (inside
        ``super()``), matching real SLURM where the decay thread updates
        usage asynchronously from the scheduling loop.
        """
        super()._on_job_end(job)
        self.usage[job.user] = self.usage.get(job.user, 0.0) + job.core_seconds

"""PXE network boot.

Rocks installs compute nodes by PXE-booting them into a kickstart install
served by the frontend.  The boot sequence modelled here:

1. the node broadcasts DHCP DISCOVER (handled by :class:`DhcpServer`);
2. the offer carries next-server + boot filename;
3. the node TFTPs the boot image and chains into the installer.

A node with no NIC on the boot segment, or a server with no boot image
registered for it, fails with :class:`PxeError` — these are the failure
modes the provisioning tests inject.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PxeError
from .dhcp import DhcpLease, DhcpServer

__all__ = ["BootImage", "PxeServer", "PxeBootResult"]


@dataclass(frozen=True)
class BootImage:
    """A bootable installer image (vmlinuz + initrd + kickstart pointer)."""

    name: str
    kickstart_profile: str  # name of the kickstart graph profile to run
    size_bytes: int = 64 * 1024 * 1024


@dataclass(frozen=True)
class PxeBootResult:
    """A successful PXE handshake."""

    lease: DhcpLease
    image: BootImage
    tftp_server_ip: str


class PxeServer:
    """The frontend's PXE service (dhcpd options + tftpd)."""

    def __init__(self, dhcp: DhcpServer) -> None:
        self.dhcp = dhcp
        self._default_image: BootImage | None = None
        self._per_mac: dict[str, BootImage] = {}
        self.boot_log: list[str] = []

    def set_default_image(self, image: BootImage) -> None:
        """Image offered to any MAC without a specific assignment."""
        self._default_image = image

    def assign_image(self, mac: str, image: BootImage) -> None:
        """Pin an image to one node (e.g. re-install just this node)."""
        self._per_mac[mac] = image

    def clear_assignment(self, mac: str) -> None:
        """Return a node to the default image (post-install 'boot local')."""
        self._per_mac.pop(mac, None)

    def boot(self, mac: str, *, hostname: str = "") -> PxeBootResult:
        """Run the PXE handshake for one node."""
        image = self._per_mac.get(mac, self._default_image)
        if image is None:
            raise PxeError(
                f"no boot image registered for {mac} and no default set"
            )
        lease = self.dhcp.offer(mac, hostname=hostname)
        self.boot_log.append(f"{mac} -> {lease.ip} image={image.name}")
        return PxeBootResult(
            lease=lease, image=image, tftp_server_ip=self.dhcp.server_ip
        )

"""The fan-out engine: bounded-window parallel execution on the kernel.

``clush -w compute-0-[0-9999] -f 64 <cmd>`` as a discrete-event machine:
a :class:`ShellEngine` walks a :class:`~repro.fleet.NodeSet` with at most
``fanout`` workers in flight at once.  Each worker is a kernel event —
dispatch schedules a completion at ``now + duration`` (capped by the
timeout), completion either records the command's ``(rc, output)`` or
classifies a *transport* failure (timeout, node died mid-flight, handler
raised) and retries it under a :class:`~repro.faults.RetryPolicy`,
spending the backoff as simulated time while the worker slot stays held.

Graceful degradation is the point: nodes the :class:`~repro.fleet.FleetTable`
flags as failed, powered off, or unresponsive are *skipped and reported*
in the :class:`ShellReport`, never raised — a fleet-wide sweep completes
with partial results no matter how many nodes are down.  Scheduler-drained
nodes are **not** skipped: the admin plane is exactly what you run against
a drained node (that is how :class:`~repro.shell.RollingUpdate` updates a
wave it just drained).

Nonzero return codes are *results*, not failures to retry — clush
semantics: the command ran, the node answered, the answer was "no".
Only transport failures burn retry attempts.

Determinism: targets dispatch in NodeSet iteration order, jitter and
backoff draw from the kernel's seeded RNG, and every event lands on the
trace bus (``shell.cmd`` per run, ``shell.retry`` per backoff,
``shell.gather`` per merged output group) — same seed, byte-identical
trace, even mid-fault-storm.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..errors import HeadnodeCrashError, NodeOfflineError, ReproError, ShellError
from ..faults import CircuitBreaker, RetryPolicy, call_with_retry
from ..fleet import FleetTable, NodeSet
from ..sim import SimKernel
from .gather import OutputGroup, bucket_by_rc, gather, render_groups, worst_rc

__all__ = [
    "DEFAULT_RETRY",
    "TRANSPORT_RC",
    "ShellCommand",
    "NodeResult",
    "ShellReport",
    "ShellEngine",
]

#: Default per-node retry behaviour for fleet sweeps: three tries with a
#: couple of seconds of jittered backoff — enough to ride out a link flap,
#: bounded enough that a dead node costs seconds, not minutes.
DEFAULT_RETRY = RetryPolicy(
    max_attempts=3, base_delay_s=2.0, multiplier=2.0, max_delay_s=30.0, jitter=0.1
)

#: The rc recorded for nodes the transport gave up on (ssh's exit code for
#: "could not reach the host").
TRANSPORT_RC = 255


@dataclass(frozen=True)
class ShellCommand:
    """One simulated remote command.

    ``handler(node) -> (rc, output)`` models what running it does; raising
    a :class:`~repro.errors.ReproError` from the handler is a *transport*
    failure (connection refused, mid-command crash) and is retried.  With
    no handler the command succeeds everywhere with ``output``.
    ``duration_s`` is the per-node wall time, widened by up to ±``jitter``
    (a fraction, drawn from the kernel RNG) so a fleet's completions
    spread out the way real nodes do.
    """

    line: str
    duration_s: float = 1.0
    jitter: float = 0.0
    output: str = "ok"
    handler: Callable[[str], tuple[int, str]] | None = None

    def __post_init__(self) -> None:
        if not self.line:
            raise ShellError("command line must be non-empty")
        if self.duration_s < 0:
            raise ShellError(f"duration must be >= 0, got {self.duration_s}")
        if not 0 <= self.jitter < 1:
            raise ShellError(f"jitter must be in [0, 1), got {self.jitter}")


@dataclass
class NodeResult:
    """One node's outcome: ``ok`` (ran, rc 0), ``failed`` (ran with a
    nonzero rc, or the transport gave up), or ``skipped`` (never tried —
    the fleet table said the node cannot answer)."""

    node: str
    status: str
    rc: int | None = None
    output: str = ""
    attempts: int = 0
    reason: str = ""
    started_s: float | None = None
    ended_s: float | None = None


class ShellReport:
    """The (always partial-safe) outcome of one :meth:`ShellEngine.run`.

    ``results`` fills in as workers finish, so the report is readable even
    if the run is unwound mid-sweep (head-node crash): whatever completed
    is in it.  Folded views never enumerate nodes — ``ok_nodes()`` on a
    9,990-of-10,000 sweep is one NodeSet, not a list.
    """

    def __init__(self, command: str, *, fanout: int) -> None:
        self.command = command
        self.fanout = fanout
        #: node name -> :class:`NodeResult`, in dispatch order
        self.results: dict[str, NodeResult] = {}
        #: high-water mark of concurrently held worker slots
        self.max_inflight = 0
        #: False until every target was finalized
        self.complete = False

    def _nodes_with(self, status: str) -> NodeSet:
        return NodeSet.from_names(
            name for name, r in self.results.items() if r.status == status
        )

    def ok_nodes(self) -> NodeSet:
        return self._nodes_with("ok")

    def failed_nodes(self) -> NodeSet:
        return self._nodes_with("failed")

    def skipped_nodes(self) -> NodeSet:
        return self._nodes_with("skipped")

    def counts(self) -> tuple[int, int, int]:
        """``(ok, failed, skipped)`` totals."""
        ok = failed = skipped = 0
        for r in self.results.values():
            if r.status == "ok":
                ok += 1
            elif r.status == "failed":
                failed += 1
            else:
                skipped += 1
        return ok, failed, skipped

    def executed(self) -> list[tuple[str, int, str]]:
        """``(node, rc, output)`` for every node that was actually tried.

        Transport-failed nodes report :data:`TRANSPORT_RC` and their
        failure reason as the output, so they fold into gather groups like
        everything else.
        """
        out: list[tuple[str, int, str]] = []
        for name, r in self.results.items():
            if r.status == "skipped":
                continue
            if r.rc is None:
                out.append((name, TRANSPORT_RC, r.reason))
            else:
                out.append((name, r.rc, r.output))
        return out

    def groups(self) -> list[OutputGroup]:
        """clubak view: identical outputs merged under folded labels."""
        return gather(self.executed())

    def by_rc(self) -> dict[int, NodeSet]:
        """One folded NodeSet per return code."""
        return bucket_by_rc(self.groups())

    @property
    def worst_rc(self) -> int:
        return worst_rc(self.groups())

    def render(self) -> str:
        """Operator summary: gathered groups plus the skip/fail fold."""
        ok, failed, skipped = self.counts()
        lines = [
            f"{self.command!r}: {ok} ok, {failed} failed, {skipped} skipped "
            f"(fanout {self.fanout}, peak {self.max_inflight} in flight)"
        ]
        grouped = render_groups(self.groups())
        if grouped:
            lines.append(grouped)
        if skipped:
            lines.append(f"skipped: {self.skipped_nodes()}")
        return "\n".join(lines)


class _RunState:
    """Book-keeping for one in-progress :meth:`ShellEngine.run`."""

    __slots__ = (
        "command", "fanout", "timeout_s", "policy", "breaker",
        "queue", "inflight", "pending", "report",
    )

    def __init__(
        self,
        command: ShellCommand,
        *,
        fanout: int,
        timeout_s: float,
        policy: RetryPolicy,
        breaker: CircuitBreaker | None,
        targets: list[str],
    ) -> None:
        self.command = command
        self.fanout = fanout
        self.timeout_s = timeout_s
        self.policy = policy
        self.breaker = breaker
        self.queue: deque[str] = deque(targets)
        self.inflight = 0
        self.pending = len(targets)
        self.report = ShellReport(command.line, fanout=fanout)


class ShellEngine:
    """Bounded-fanout parallel executor over a shared fleet table."""

    def __init__(
        self,
        fleet: FleetTable,
        *,
        kernel: SimKernel | None = None,
        subsystem: str = "shell",
    ) -> None:
        self.fleet = fleet
        self.kernel = kernel if kernel is not None else SimKernel()
        self.subsystem = subsystem
        #: the most recent run's report — partial results survive an unwind
        self.last_report: ShellReport | None = None

    # -- liveness (the graceful-degradation gate) ----------------------------

    def skip_reason(self, name: str) -> str | None:
        """Why this node would be skipped right now (None = reachable).

        Reads the shared fleet flag columns: a failed, powered-off, or
        unresponsive node cannot answer the admin plane.  Offline/draining
        are scheduler states, not reachability — drained nodes execute.
        """
        fleet = self.fleet
        if not fleet.has(name):
            return "not in fleet table"
        index = fleet.index_of(name)
        if fleet.failed[index]:
            return "failed"
        if not fleet.powered[index]:
            return "powered off"
        if not fleet.responsive[index]:
            return "unresponsive"
        return None

    # -- the sliding window --------------------------------------------------

    def run(
        self,
        nodes: NodeSet | str,
        command: ShellCommand | str,
        *,
        fanout: int = 64,
        timeout_s: float = 30.0,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> ShellReport:
        """Execute ``command`` across ``nodes`` with a sliding window.

        At most ``fanout`` workers are in flight at any simulated instant
        (a slot is held through a worker's retries and backoff, so the
        bound covers the whole per-node conversation).  Never raises for
        per-node trouble: unreachable nodes are skipped, transport
        failures retried then recorded, nonzero rcs recorded — the report
        always comes back.
        """
        if isinstance(nodes, str):
            nodes = NodeSet.parse(nodes)
        if isinstance(command, str):
            command = ShellCommand(command)
        if fanout < 1:
            raise ShellError(f"fanout must be >= 1, got {fanout}")
        if timeout_s <= 0:
            raise ShellError(f"timeout must be positive, got {timeout_s}")
        targets = list(nodes)
        state = _RunState(
            command,
            fanout=fanout,
            timeout_s=timeout_s,
            policy=policy if policy is not None else DEFAULT_RETRY,
            breaker=breaker,
            targets=targets,
        )
        self.last_report = state.report
        self.kernel.trace.emit(
            "shell.cmd", t_s=self.kernel.now_s, subsystem=self.subsystem,
            nodes=nodes.fold(), command=command.line, fanout=fanout,
            count=len(targets),
        )
        self._fill(state)
        while state.pending:
            if not self.kernel.step():
                raise ShellError(
                    f"kernel idle with {state.pending} worker(s) outstanding"
                )
        state.report.complete = True
        for group in state.report.groups():
            self.kernel.trace.emit(
                "shell.gather", t_s=self.kernel.now_s, subsystem=self.subsystem,
                nodes=group.nodes.fold(), rc=group.rc, count=group.count,
            )
        return state.report

    def _fill(self, state: _RunState) -> None:
        """Top up the window: dispatch until full or the queue drains."""
        while state.queue and state.inflight < state.fanout:
            name = state.queue.popleft()
            reason = self.skip_reason(name)
            if reason is not None:
                self._finalize(state, name, status="skipped", reason=reason)
                continue
            if state.breaker is not None and not state.breaker.allow(
                self.kernel.now_s
            ):
                self._finalize(state, name, status="skipped", reason="circuit open")
                continue
            state.inflight += 1
            state.report.max_inflight = max(
                state.report.max_inflight, state.inflight
            )
            self._dispatch(state, name, attempt=1, started_s=self.kernel.now_s)

    def _duration(self, command: ShellCommand) -> float:
        duration = command.duration_s
        if command.jitter:
            duration *= 1.0 + command.jitter * (2.0 * self.kernel.rng.random() - 1.0)
        return duration

    def _dispatch(
        self, state: _RunState, name: str, *, attempt: int, started_s: float
    ) -> None:
        """Start one attempt: schedule its completion event."""
        duration = self._duration(state.command)
        timed_out = duration > state.timeout_s
        eta = self.kernel.now_s + (state.timeout_s if timed_out else duration)
        self.kernel.at(
            eta,
            lambda: self._on_complete(state, name, attempt, started_s, timed_out),
            label=f"shell.done:{name}",
        )

    def _execute(self, command: ShellCommand, name: str) -> tuple[int, str]:
        if command.handler is None:
            return 0, command.output
        rc, output = command.handler(name)
        return int(rc), str(output)

    def _on_complete(
        self,
        state: _RunState,
        name: str,
        attempt: int,
        started_s: float,
        timed_out: bool,
    ) -> None:
        """A worker's completion event: record, retry, or give up."""
        failure = self.skip_reason(name)  # did the node die mid-flight?
        if failure is None and not timed_out:
            try:
                rc, output = self._execute(state.command, name)
            except HeadnodeCrashError:
                # The machine driving this sweep just died; partial results
                # stay readable on the report, the exception must unwind.
                raise
            except ReproError as exc:
                failure = str(exc) or type(exc).__name__
            else:
                if state.breaker is not None:
                    state.breaker.record_success()
                self._finalize(
                    state, name,
                    status="ok" if rc == 0 else "failed",
                    rc=rc, output=output, attempts=attempt,
                    reason="" if rc == 0 else f"rc {rc}",
                    started_s=started_s, held_slot=True,
                )
                return
        if failure is None:
            failure = f"timeout after {state.timeout_s:g}s"
        if state.breaker is not None:
            state.breaker.record_failure(self.kernel.now_s)
        now = self.kernel.now_s
        out_of_attempts = attempt >= state.policy.max_attempts
        delay = state.policy.delay_for(attempt, self.kernel.rng)
        over_deadline = (
            state.policy.deadline_s is not None
            and now + delay - started_s > state.policy.deadline_s
        )
        if out_of_attempts or over_deadline:
            self._finalize(
                state, name, status="failed", attempts=attempt,
                reason=failure, started_s=started_s, held_slot=True,
            )
            return
        self.kernel.trace.emit(
            "shell.retry", t_s=now, subsystem=self.subsystem,
            node=name, attempt=attempt, delay_s=delay,
        )
        # The slot stays held through the backoff: fanout bounds the whole
        # per-node conversation, not just the instants a command is running.
        self.kernel.at(
            now + delay,
            lambda: self._dispatch(
                state, name, attempt=attempt + 1, started_s=started_s
            ),
            label=f"shell.retry:{name}",
        )

    def _finalize(
        self,
        state: _RunState,
        name: str,
        *,
        status: str,
        rc: int | None = None,
        output: str = "",
        attempts: int = 0,
        reason: str = "",
        started_s: float | None = None,
        held_slot: bool = False,
    ) -> None:
        state.report.results[name] = NodeResult(
            node=name, status=status, rc=rc, output=output,
            attempts=attempts, reason=reason,
            started_s=started_s, ended_s=self.kernel.now_s,
        )
        state.pending -= 1
        if held_slot:
            state.inflight -= 1
            self._fill(state)

    # -- single node, synchronous --------------------------------------------

    def run_one(
        self,
        node: str,
        command: ShellCommand | str,
        *,
        timeout_s: float = 30.0,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> tuple[int, str]:
        """Run on one node via :func:`~repro.faults.call_with_retry`.

        The strict sibling of :meth:`run`: an unreachable node *raises*
        (:class:`~repro.errors.RetryExhaustedError` after the policy's
        attempts) instead of degrading — for callers acting on a single
        node who need the failure, not a report.
        """
        if isinstance(command, str):
            command = ShellCommand(command)
        if timeout_s <= 0:
            raise ShellError(f"timeout must be positive, got {timeout_s}")

        def attempt() -> tuple[int, str]:
            reason = self.skip_reason(node)
            if reason is not None:
                raise NodeOfflineError(f"{node}: {reason}")
            duration = self._duration(command)
            if duration > timeout_s:
                self.kernel.run_until(self.kernel.now_s + timeout_s)
                raise ShellError(f"{node}: timeout after {timeout_s:g}s")
            self.kernel.run_until(self.kernel.now_s + duration)
            return self._execute(command, node)

        return call_with_retry(
            self.kernel, attempt,
            policy=policy if policy is not None else DEFAULT_RETRY,
            op=f"shell:{node}", subsystem=self.subsystem, breaker=breaker,
        )

"""MPI collectives over the simulated world: correct data, costed rounds.

Each collective takes per-rank input data, runs the textbook algorithm
through :class:`~repro.mpi.simulator.MpiWorld` point-to-point primitives,
and returns the per-rank results.  Because the algorithms use the real
send/recv machinery, both the *answers* and the *accounted time* come out of
the same execution:

* ``bcast`` — binomial tree, ceil(log2 p) rounds;
* ``reduce`` — binomial tree (mirror of bcast);
* ``allreduce`` — recursive doubling (power-of-two ranks pairwise exchange);
* ``gather`` / ``scatter`` — linear at the root (fine at these scales);
* ``allgather`` — ring, p-1 rounds;
* ``alltoall`` — pairwise exchange rounds.

Non-power-of-two sizes are handled with the standard fold-in/fold-out trick
for allreduce.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from ..errors import MpiError
from .simulator import MpiWorld

__all__ = ["bcast", "reduce", "allreduce", "gather", "scatter", "allgather", "alltoall"]

T = TypeVar("T")


def _check_world_data(world: MpiWorld, data: Sequence[object]) -> None:
    if len(data) != world.size:
        raise MpiError(
            f"need one datum per rank: got {len(data)} for world of {world.size}"
        )


def bcast(world: MpiWorld, value: T, *, root: int = 0) -> list[T]:
    """Binomial-tree broadcast; returns the value as seen by every rank."""
    world._check_rank(root)
    p = world.size
    have: dict[int, T] = {root: value}
    # Relabel so the root is rank 0 in tree coordinates.
    def real(r: int) -> int:
        return (r + root) % p

    distance = 1
    while distance < p:
        # Every virtual rank below `distance` already has the value and
        # seeds the rank `distance` above it — the binomial tree.
        for vrank in range(distance):
            partner = vrank + distance
            if partner < p:
                src, dst = real(vrank), real(partner)
                world.send(src, dst, have[src], tag=101)
                have[dst] = world.recv(dst, src, tag=101)  # type: ignore[assignment]
        distance *= 2
    return [have[r] for r in range(p)]


def reduce(
    world: MpiWorld,
    data: Sequence[T],
    op: Callable[[T, T], T],
    *,
    root: int = 0,
) -> T:
    """Binomial-tree reduction to ``root``; returns the reduced value.

    ``op`` must be associative (it is applied in tree order, not rank
    order) — all the usual MPI ops qualify.
    """
    _check_world_data(world, data)
    world._check_rank(root)
    p = world.size

    def real(r: int) -> int:
        return (r + root) % p

    partial: dict[int, T] = {real(v): data[real(v)] for v in range(p)}
    distance = 1
    while distance < p:
        for vrank in range(0, p, 2 * distance):
            partner = vrank + distance
            if partner < p:
                src, dst = real(partner), real(vrank)
                world.send(src, dst, partial[src], tag=102)
                incoming = world.recv(dst, src, tag=102)
                partial[dst] = op(partial[dst], incoming)  # type: ignore[arg-type]
        distance *= 2
    return partial[root]


def allreduce(
    world: MpiWorld, data: Sequence[T], op: Callable[[T, T], T]
) -> list[T]:
    """Recursive-doubling allreduce; every rank gets the full reduction.

    Non-power-of-two worlds fold the excess ranks into the power-of-two
    core first and fan the result back out afterwards.
    """
    _check_world_data(world, data)
    p = world.size
    if p == 1:
        return [data[0]]
    # Largest power of two <= p.
    core = 1
    while core * 2 <= p:
        core *= 2
    values: list[T] = list(data)  # type: ignore[arg-type]
    excess = p - core
    # Fold in: ranks core..p-1 send to their partner in the core.
    for i in range(excess):
        src, dst = core + i, i
        world.send(src, dst, values[src], tag=103)
        incoming = world.recv(dst, src, tag=103)
        values[dst] = op(values[dst], incoming)  # type: ignore[arg-type]
    # Recursive doubling within the core.
    distance = 1
    while distance < core:
        for rank in range(core):
            partner = rank ^ distance
            if partner > rank:
                got_a, got_b = world.sendrecv(
                    rank, partner, values[rank], values[partner], tag=104
                )
                merged = op(values[rank], values[partner])  # type: ignore[arg-type]
                values[rank] = merged
                values[partner] = merged
        distance *= 2
    # Fan out to the folded ranks.
    for i in range(excess):
        src, dst = i, core + i
        world.send(src, dst, values[src], tag=105)
        values[dst] = world.recv(dst, src, tag=105)  # type: ignore[assignment]
    return values


def gather(world: MpiWorld, data: Sequence[T], *, root: int = 0) -> list[T]:
    """Linear gather to ``root``; returns the gathered list (rank order)."""
    _check_world_data(world, data)
    world._check_rank(root)
    out: list[T] = []
    for rank in range(world.size):
        if rank == root:
            out.append(data[rank])
        else:
            world.send(rank, root, data[rank], tag=106)
            out.append(world.recv(root, rank, tag=106))  # type: ignore[arg-type]
    return out


def scatter(world: MpiWorld, chunks: Sequence[T], *, root: int = 0) -> list[T]:
    """Linear scatter from ``root``; returns what each rank received."""
    _check_world_data(world, chunks)
    world._check_rank(root)
    received: list[T] = list(chunks)  # type: ignore[arg-type]
    for rank in range(world.size):
        if rank != root:
            world.send(root, rank, chunks[rank], tag=107)
            received[rank] = world.recv(rank, root, tag=107)  # type: ignore[assignment]
    return received


def allgather(world: MpiWorld, data: Sequence[T]) -> list[list[T]]:
    """Ring allgather; every rank ends with the full rank-ordered list."""
    _check_world_data(world, data)
    p = world.size
    buffers: list[list[T]] = [[data[r]] for r in range(p)]  # type: ignore[list-item]
    if p == 1:
        return buffers
    for step in range(p - 1):
        for rank in range(p):
            dst = (rank + 1) % p
            # each rank forwards the piece it received `step` rounds ago
            piece_owner = (rank - step) % p
            world.send(rank, dst, data[piece_owner], tag=108 + step)
        for rank in range(p):
            src = (rank - 1) % p
            piece = world.recv(rank, src, tag=108 + step)
            buffers[rank].append(piece)  # type: ignore[arg-type]
    # Reorder each buffer into rank order.
    ordered: list[list[T]] = []
    for rank in range(p):
        ranks_in_arrival = [rank] + [(rank - 1 - s) % p for s in range(p - 1)]
        by_rank = dict(zip(ranks_in_arrival, buffers[rank]))
        ordered.append([by_rank[r] for r in range(p)])
    return ordered


def alltoall(world: MpiWorld, matrix: Sequence[Sequence[T]]) -> list[list[T]]:
    """Pairwise-exchange alltoall.

    ``matrix[i][j]`` is what rank i sends to rank j; the result's
    ``[j][i]`` is what rank j received from rank i.
    """
    _check_world_data(world, matrix)
    p = world.size
    for row in matrix:
        if len(row) != p:
            raise MpiError("alltoall needs a full p x p matrix")
    out: list[list[T]] = [[matrix[j][j] if i == j else None for j in range(p)] for i in range(p)]  # type: ignore[misc]
    for i in range(p):
        out[i][i] = matrix[i][i]  # type: ignore[index]
    for step in range(1, p):
        for rank in range(p):
            partner = rank ^ step if (rank ^ step) < p else None
            if partner is not None and partner > rank:
                got_a, got_b = world.sendrecv(
                    rank, partner, matrix[rank][partner], matrix[partner][rank],
                    tag=300 + step,
                )
                out[rank][partner] = got_a  # type: ignore[index]
                out[partner][rank] = got_b  # type: ignore[index]
    # XOR pairing misses some pairs for non-power-of-two p; finish linearly.
    for i in range(p):
        for j in range(p):
            if out[i][j] is None:
                world.send(j, i, matrix[j][i], tag=399)
                out[i][j] = world.recv(i, j, tag=399)  # type: ignore[index]
    return out

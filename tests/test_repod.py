"""repro.repod: the overload-tolerant repository service.

The contract under test is robustness with receipts: the origin sheds
instead of melting, proxies coalesce and degrade to stale instead of
failing, clients retry under a budget instead of storming, every request
reaches a terminal state exactly once, and — same seed — the whole storm
replays byte-identically."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultError, RepodError, RetryExhaustedError
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryBudget,
    RetryPolicy,
    call_with_retry,
)
from repro.repod import (
    RepoClient,
    RepoServer,
    SiteProxy,
    UpdateStormScenario,
    payload_for,
    repod_confluence_problems,
)
from repro.rpm.package import Package
from repro.sim import SimKernel
from repro.yum.mirror import MirrorLink, RepoMirror
from repro.yum.repository import Repository

KB = 1024


def make_origin(kernel, *, slots=2, queue_limit=2, names=("alpha", "beta")):
    origin = RepoServer(
        "origin", kernel=kernel,
        link=MirrorLink(bandwidth_bytes_s=1024 * KB, latency_s=0.01),
        slots=slots, queue_limit=queue_limit,
    )
    origin.publish(
        [Package(name, "1.0", size_bytes=512 * KB) for name in names]
    )
    return origin


def drain(kernel, limit=100_000):
    fired = 0
    while kernel.step():
        fired += 1
        assert fired < limit, "kernel never quiesced"


# --- RepoServer: admission control ------------------------------------------------


class TestRepoServer:
    def test_validates_configuration(self):
        kernel = SimKernel(seed=0)
        link = MirrorLink(bandwidth_bytes_s=KB)
        with pytest.raises(RepodError, match="slot"):
            RepoServer("o", kernel=kernel, link=link, slots=0)
        with pytest.raises(RepodError, match="queue"):
            RepoServer("o", kernel=kernel, link=link, queue_limit=-1)

    def test_publish_newest_evr_wins_and_bumps_serial(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel)
        assert origin.serial == 1
        serial = origin.publish(
            [
                Package("alpha", "1.0", size_bytes=KB),
                Package("alpha", "2.0", size_bytes=KB),
            ]
        )
        assert serial == 2
        results = []
        origin.request("alpha", requester="t", on_result=results.append)
        drain(kernel)
        assert results[0].ok and "alpha-2.0" in results[0].payload

    def test_slots_queue_and_shedding(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel, slots=2, queue_limit=2)
        results = []
        for _ in range(5):
            origin.request("alpha", requester="t", on_result=results.append)
        # 2 in service, 2 queued, the 5th shed synchronously at the door
        assert [r.error_kind for r in results] == ["shed"]
        assert origin.active_count == 2 and origin.queued_count == 2
        drain(kernel)
        assert origin.served == 4 and origin.shed_full == 1
        assert sum(1 for r in results if r.ok) == 4
        assert kernel.trace.count("repod.shed") == 1
        assert origin.problems() == []

    def test_deadline_expired_requests_are_shed_not_served(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel, slots=1, queue_limit=4)
        kernel.run_until(100.0)
        results = []
        # dead on arrival: deadline in the past
        origin.request(
            "alpha", requester="t", deadline_s=99.0, on_result=results.append
        )
        assert results[0].error_kind == "shed"
        assert origin.shed_deadline == 1
        # expires while queued: the slot is busy past this waiter's deadline
        origin.request("alpha", requester="t", on_result=results.append)
        origin.request(
            "beta", requester="t", deadline_s=100.1, on_result=results.append
        )
        drain(kernel)
        assert origin.shed_deadline == 2
        beta = [r for r in results if r.artifact == "beta"][0]
        assert not beta.ok and beta.error_kind == "shed"
        assert origin.problems() == []

    def test_missing_artifact_and_refusal_when_down(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel)
        results = []
        origin.request("gamma", requester="t", on_result=results.append)
        assert results[-1].error_kind == "missing"
        origin.crash()
        origin.request("alpha", requester="t", on_result=results.append)
        assert results[-1].error_kind == "refused"
        assert origin.missing == 1 and origin.refused == 1
        assert origin.problems() == []

    def test_crash_fails_active_and_queued_then_recovers(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel, slots=1, queue_limit=2)
        results = []
        for _ in range(3):
            origin.request("alpha", requester="t", on_result=results.append)
        origin.crash()
        assert [r.error_kind for r in results] == ["crash"] * 3
        assert origin.crashed_inflight == 3
        drain(kernel)  # the cancelled transfer event must not fire
        assert origin.served == 0
        origin.recover()
        origin.request("alpha", requester="t", on_result=results.append)
        drain(kernel)
        assert results[-1].ok
        assert origin.problems() == []


# --- SiteProxy: hits, coalescing, serve-stale -------------------------------------


class TestSiteProxy:
    def test_miss_fills_cache_then_hits(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel)
        proxy = SiteProxy("px", origin, kernel=kernel)
        first = proxy.fetch_blocking("alpha")
        assert first.ok and first.source == "px-miss"
        second = proxy.fetch_blocking("alpha")
        assert second.ok and second.source == "px-hit"
        assert second.payload == first.payload
        assert (proxy.hits, proxy.misses) == (1, 1)
        assert origin.arrivals == 1
        assert proxy.problems() == []

    def test_concurrent_misses_coalesce_into_one_origin_fetch(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel)
        proxy = SiteProxy("px", origin, kernel=kernel)
        results = []
        for i in range(4):
            proxy.request("alpha", requester=f"c{i}", on_result=results.append)
        drain(kernel)
        assert origin.arrivals == 1
        assert len(results) == 4 and all(r.ok for r in results)
        assert len({r.payload for r in results}) == 1
        assert proxy.coalesced == 3
        assert kernel.trace.count("repod.coalesce") == 3
        assert proxy.problems() == []

    def test_notice_release_invalidates_without_mutation(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel)
        proxy = SiteProxy("px", origin, kernel=kernel)
        proxy.fetch_blocking("alpha")
        serial = origin.publish([Package("alpha", "2.0", size_bytes=KB)])
        proxy.notice_release(serial)
        fresh = proxy.fetch_blocking("alpha")
        assert fresh.source == "px-miss" and "alpha-2.0" in fresh.payload
        with pytest.raises(RepodError, match="backwards"):
            proxy.notice_release(serial - 1)

    def test_serves_stale_while_origin_is_down(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel)
        proxy = SiteProxy("px", origin, kernel=kernel)
        v1 = proxy.fetch_blocking("alpha")
        serial = origin.publish([Package("alpha", "2.0", size_bytes=KB)])
        proxy.notice_release(serial)
        origin.crash()
        stale = proxy.fetch_blocking("alpha")
        assert stale.ok and stale.source == "px-stale"
        assert stale.payload == v1.payload and stale.serial < serial
        assert proxy.stale_served == 1
        assert kernel.trace.count("repod.stale") == 1
        # no prior copy -> the failure propagates
        miss = proxy.fetch_blocking("beta")
        assert not miss.ok and miss.error_kind == "refused"
        assert proxy.problems() == []

    def test_serve_stale_can_be_disabled(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel)
        proxy = SiteProxy("px", origin, kernel=kernel, serve_stale=False)
        proxy.fetch_blocking("alpha")
        serial = origin.publish([Package("alpha", "2.0", size_bytes=KB)])
        proxy.notice_release(serial)
        origin.crash()
        result = proxy.fetch_blocking("alpha")
        assert not result.ok and result.error_kind == "refused"

    def test_uplink_reset_fails_fetch_but_stale_still_serves(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel)
        proxy = SiteProxy("px", origin, kernel=kernel)
        proxy.fetch_blocking("alpha")
        serial = origin.publish([Package("alpha", "2.0", size_bytes=KB)])
        proxy.notice_release(serial)
        proxy.set_uplink_loss(1.0)
        result = proxy.fetch_blocking("alpha")
        assert result.ok and result.source == "px-stale"
        assert proxy.uplink_resets == 1
        fail = proxy.fetch_blocking("beta")
        assert not fail.ok and fail.error_kind == "reset"
        with pytest.raises(RepodError, match=r"\[0, 1\]"):
            proxy.set_uplink_loss(1.5)


# --- RepoClient: budgeted retries -------------------------------------------------


def make_tier(kernel, **origin_kwargs):
    origin = make_origin(kernel, **origin_kwargs)
    proxy = SiteProxy("px", origin, kernel=kernel)
    return origin, proxy


class TestRepoClient:
    def test_sync_walks_artifacts_with_one_terminal_each(self):
        kernel = SimKernel(seed=0)
        origin, proxy = make_tier(kernel)
        client = RepoClient(
            "c0", proxy, kernel=kernel,
            policy=RetryPolicy(max_attempts=3, jitter=0.0),
        )
        client.sync(["alpha", "beta"], at_s=1.0)
        drain(kernel)
        assert client.done
        assert client.outcomes() == {"alpha": "ok", "beta": "ok"}
        assert kernel.trace.count("repod.request") == 2
        assert client.problems() == []

    def test_retries_through_an_origin_outage(self):
        kernel = SimKernel(seed=0)
        origin, proxy = make_tier(kernel)
        origin.crash()
        kernel.at(30.0, origin.recover, label="heal")
        client = RepoClient(
            "c0", proxy, kernel=kernel,
            policy=RetryPolicy(max_attempts=6, base_delay_s=10.0, jitter=0.0),
        )
        client.sync(["alpha"], at_s=0.0)
        drain(kernel)
        assert client.outcomes() == {"alpha": "ok"}
        assert client.records["alpha"].attempts > 1
        assert kernel.trace.count("fault.retry") >= 1

    def test_budget_denial_is_a_terminal_failure(self):
        kernel = SimKernel(seed=0)
        origin, proxy = make_tier(kernel)
        origin.crash()  # never recovers
        budget = RetryBudget(capacity=1.0, refill_per_s=0.0, kernel=kernel)
        client = RepoClient(
            "c0", proxy, kernel=kernel,
            policy=RetryPolicy(max_attempts=10, base_delay_s=5.0, jitter=0.0),
            budget=budget,
        )
        client.sync(["alpha"], at_s=0.0)
        drain(kernel)
        assert client.outcomes() == {"alpha": "failed"}
        # attempt 1 free, retry 2 paid for, retry 3 denied -> terminal
        assert client.records["alpha"].attempts == 2
        assert budget.granted == 1 and budget.denied == 1
        events = [e for e in kernel.trace.events if e.kind == "repod.retry_budget"]
        assert [e.data["allowed"] for e in events] == [True, False]

    def test_patience_bounds_the_retry_ladder(self):
        kernel = SimKernel(seed=0)
        origin, proxy = make_tier(kernel)
        origin.crash()
        client = RepoClient(
            "c0", proxy, kernel=kernel,
            policy=RetryPolicy(max_attempts=100, base_delay_s=40.0, jitter=0.0),
            patience_s=60.0,
        )
        client.sync(["alpha"], at_s=0.0)
        drain(kernel)
        assert client.outcomes() == {"alpha": "failed"}
        assert kernel.now_s <= 61.0


# --- fault kinds: origin.crash + conn.reset (satellite 1) -------------------------


class TestRepodFaultKinds:
    def test_origin_crash_injects_and_recovers_with_trace(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel)
        injector = FaultInjector(kernel, origins=[origin])
        plan = FaultPlan(
            "t",
            (
                FaultSpec(
                    FaultKind.ORIGIN_CRASH, "origin", at_s=10.0, duration_s=5.0
                ),
            ),
        )
        injector.apply(plan)
        kernel.run_until(12.0)
        assert not origin.up
        kernel.run_until(16.0)
        assert origin.up
        assert kernel.trace.count("fault.inject") == 1
        assert kernel.trace.count("fault.recover") == 1

    def test_conn_reset_sets_and_clears_uplink_loss(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel)
        proxy = SiteProxy("px", origin, kernel=kernel)
        injector = FaultInjector(kernel, proxies=[proxy])
        plan = FaultPlan(
            "t",
            (
                FaultSpec(
                    FaultKind.CONN_RESET, "px", at_s=5.0, duration_s=5.0,
                    params={"loss_prob": 0.7},
                ),
            ),
        )
        injector.apply(plan)
        kernel.run_until(6.0)
        assert proxy._uplink_loss == 0.7
        kernel.run_until(11.0)
        assert proxy._uplink_loss == 0.0

    def test_unknown_targets_fail_loudly_with_wired_names(self):
        kernel = SimKernel(seed=0)
        origin = make_origin(kernel)
        injector = FaultInjector(kernel, origins=[origin], proxies=[])
        injector.apply(
            FaultPlan(
                "t", (FaultSpec(FaultKind.ORIGIN_CRASH, "nope", at_s=1.0),)
            )
        )
        with pytest.raises(FaultError, match="unknown origin 'nope'.*origin"):
            kernel.run_until(2.0)
        kernel2 = SimKernel(seed=0)
        injector2 = FaultInjector(kernel2)
        injector2.apply(
            FaultPlan("t", (FaultSpec(FaultKind.CONN_RESET, "px", at_s=1.0),))
        )
        with pytest.raises(FaultError, match="unknown proxy 'px'.*none"):
            kernel2.run_until(2.0)

    def test_conn_reset_loss_prob_is_validated_in_the_plan(self):
        spec = FaultSpec(
            FaultKind.CONN_RESET, "px", at_s=1.0, params={"loss_prob": 1.5}
        )
        assert any("loss_prob" in p for p in spec.problems())


# --- deadline clamp in call_with_retry (satellite 2) ------------------------------


class TestDeadlineClamp:
    def test_backoff_never_oversleeps_the_deadline(self):
        kernel = SimKernel(seed=0)
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=5.0, multiplier=3.0, jitter=0.0,
            deadline_s=8.0,
        )

        def always_fails():
            raise RepodError("nope")

        with pytest.raises(RetryExhaustedError, match="deadline"):
            call_with_retry(
                kernel, always_fails, policy=policy, op="t",
                retry_on=(RepodError,),
            )
        # attempt 1 at t=0 (sleep 5), attempt 2 at t=5: delay 15 > 3
        # remaining -> sleep exactly 3 and give up ON the deadline.
        assert kernel.now_s == pytest.approx(8.0)
        giveup = [e for e in kernel.trace.events if e.kind == "fault.giveup"][0]
        assert giveup.data["unslept_s"] == pytest.approx(12.0)

    def test_events_due_inside_the_clamped_sleep_still_fire(self):
        kernel = SimKernel(seed=0)
        fired = []
        kernel.at(7.0, lambda: fired.append(kernel.now_s), label="inside")
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=5.0, multiplier=3.0, jitter=0.0,
            deadline_s=8.0,
        )
        with pytest.raises(RetryExhaustedError):
            call_with_retry(
                kernel, lambda: (_ for _ in ()).throw(RepodError("x")),
                policy=policy, op="t", retry_on=(RepodError,),
            )
        assert fired == [7.0]

    @given(
        base=st.floats(min_value=0.1, max_value=50.0),
        multiplier=st.floats(min_value=1.0, max_value=4.0),
        deadline=st.floats(min_value=0.5, max_value=200.0),
        attempts=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_giveup_never_lands_past_the_deadline(
        self, base, multiplier, deadline, attempts
    ):
        kernel = SimKernel(seed=1)
        policy = RetryPolicy(
            max_attempts=attempts, base_delay_s=base, multiplier=multiplier,
            jitter=0.0, deadline_s=deadline,
        )

        def always_fails():
            raise RepodError("nope")

        with pytest.raises(RetryExhaustedError):
            call_with_retry(
                kernel, always_fails, policy=policy, op="t",
                retry_on=(RepodError,),
            )
        assert kernel.now_s <= deadline + 1e-9


# --- RetryBudget ------------------------------------------------------------------


class TestRetryBudget:
    def test_refill_is_lazy_and_capped(self):
        budget = RetryBudget(capacity=2.0, refill_per_s=1.0)
        assert budget.try_spend(0.0) and budget.try_spend(0.0)
        assert not budget.try_spend(0.0)
        assert budget.try_spend(1.5)          # refilled 1.5 tokens
        assert budget.tokens(1000.0) == pytest.approx(2.0)  # capped
        assert (budget.granted, budget.denied) == (3, 1)

    def test_validation(self):
        with pytest.raises(FaultError, match="capacity"):
            RetryBudget(capacity=0.0)
        with pytest.raises(FaultError, match="refill"):
            RetryBudget(refill_per_s=-1.0)

    def test_decisions_are_traced_when_a_kernel_is_wired(self):
        kernel = SimKernel(seed=0)
        budget = RetryBudget(capacity=1.0, refill_per_s=0.0, kernel=kernel)
        budget.try_spend(0.0, op="x")
        budget.try_spend(0.0, op="x")
        events = [e for e in kernel.trace.events if e.kind == "repod.retry_budget"]
        assert [e.data["allowed"] for e in events] == [True, False]
        assert events[0].data["tokens"] == pytest.approx(0.0)


# --- the update storm -------------------------------------------------------------


class TestUpdateStorm:
    def test_governed_storm_meets_the_goodput_floor(self):
        report = UpdateStormScenario(seed=2015, governed=True).run()
        assert report.problems == []
        assert report.goodput_ratio >= 0.9
        assert report.failed == 0
        assert report.stale > 0                # serve-stale carried the outage
        assert report.origin_shed_full >= 1    # admission control engaged
        assert report.proxy_coalesced >= 1     # coalescing engaged
        assert report.budget_granted > 0       # retries were paid for

    def test_same_seed_is_byte_identical_different_seed_is_not(self):
        def jsonl(seed):
            scenario = UpdateStormScenario(
                seed=seed, campuses=3, clients_per_campus=3
            )
            scenario.run()
            return scenario.kernel.trace.to_jsonl()

        assert jsonl(7) == jsonl(7)
        assert jsonl(7) != jsonl(8)

    def test_naive_ablation_shows_the_retry_storm(self):
        governed = UpdateStormScenario(seed=2015, governed=True).run()
        naive = UpdateStormScenario(seed=2015, governed=False).run()
        # no budget + impatient backoff: the origin sees the herd
        assert naive.origin_arrivals >= 2 * governed.origin_arrivals
        assert naive.retries >= 3 * governed.retries
        assert naive.budget_granted == naive.budget_denied == 0

    def test_audit_catches_duplicate_terminals_and_goodput_breach(self):
        events = [
            {"kind": "repod.request",
             "data": {"req": "c0:a", "outcome": "ok"}},
            {"kind": "repod.request",
             "data": {"req": "c0:a", "outcome": "failed"}},
        ]
        problems = repod_confluence_problems(events)
        assert any("terminal state 2 times" in p for p in problems)
        starved = [
            {"kind": "repod.request",
             "data": {"req": f"c{i}:a", "outcome": "failed"}}
            for i in range(10)
        ]
        problems = repod_confluence_problems(
            starved, offered=10, goodput_floor=0.9
        )
        assert any("below the 90% floor" in p for p in problems)
        assert repod_confluence_problems([]) == []  # vacuous without repod

    def test_campus_bounds_are_validated(self):
        with pytest.raises(RepodError, match="campuses"):
            UpdateStormScenario(campuses=0)
        with pytest.raises(RepodError, match="client"):
            UpdateStormScenario(clients_per_campus=0)


# --- hypothesis properties (satellite 3) ------------------------------------------


ARTIFACTS = ("alpha", "beta", "gamma")


class TestProxyByteIdentityProperty:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["fetch", "publish", "crash", "recover"]),
                st.sampled_from(ARTIFACTS),
            ),
            min_size=1, max_size=30,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_proxy_responses_match_the_origin_bytes(self, ops, seed):
        """Whatever the hit/miss/stale interleaving, a successful proxy
        response carries exactly the bytes the origin published at the
        serial the response claims — the cache never invents or mixes
        content."""
        kernel = SimKernel(seed=seed)
        origin = RepoServer(
            "origin", kernel=kernel,
            link=MirrorLink(bandwidth_bytes_s=1024 * KB, latency_s=0.01),
            slots=2, queue_limit=2,
        )
        version = dict.fromkeys(ARTIFACTS, 1)
        origin.publish(
            [Package(a, "1", size_bytes=64 * KB) for a in ARTIFACTS]
        )
        # payloads by (serial, artifact), as published
        ledger = {
            (origin.serial, a): payload_for(origin._content[a])
            for a in ARTIFACTS
        }
        proxy = SiteProxy("px", origin, kernel=kernel)
        for action, artifact in ops:
            if action == "publish":
                version[artifact] += 1
                serial = origin.publish(
                    [Package(artifact, str(version[artifact]),
                             size_bytes=64 * KB)]
                )
                for name in ARTIFACTS:
                    ledger[(serial, name)] = payload_for(
                        origin._content[name]
                    )
                proxy.notice_release(serial)
            elif action == "crash":
                origin.crash()
            elif action == "recover":
                origin.recover()
            else:
                result = proxy.fetch_blocking(artifact)
                if result.ok:
                    assert result.payload == ledger[(result.serial, artifact)]
                    if not result.source.endswith("-stale"):
                        assert result.serial == origin.serial
        drain(kernel)
        assert proxy.problems() == []
        assert origin.problems() == []

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(ARTIFACTS),
                st.integers(min_value=1, max_value=5),
            ),
            min_size=1, max_size=12,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_coalesced_fanout_equals_direct_origin_fetch(self, ops):
        """N concurrent waiters for one artifact all receive the identical
        payload a direct origin fetch would have produced, at the cost of
        at most one origin arrival per cache fill."""
        kernel = SimKernel(seed=3)
        origin = make_origin(kernel, names=ARTIFACTS)
        direct = {a: payload_for(origin._content[a]) for a in ARTIFACTS}
        proxy = SiteProxy("px", origin, kernel=kernel)
        results = []
        for artifact, fanout in ops:
            for i in range(fanout):
                proxy.request(
                    artifact, requester=f"c{i}",
                    on_result=lambda r: results.append(r),
                )
        drain(kernel)
        assert len(results) == sum(f for _, f in ops)
        for result in results:
            assert result.ok
            assert result.payload == direct[result.artifact]
        assert origin.arrivals <= len(ARTIFACTS)
        assert proxy.problems() == []


class TestRetryBudgetProperty:
    @given(
        capacity=st.floats(min_value=1.0, max_value=8.0),
        refill=st.floats(min_value=0.0, max_value=0.2),
        crash_at=st.floats(min_value=0.0, max_value=60.0),
        crash_for=st.floats(min_value=10.0, max_value=400.0),
        clients=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_budget_is_never_exceeded_under_adversarial_outages(
        self, capacity, refill, crash_at, crash_for, clients, seed
    ):
        """However long the outage and however eager the clients, total
        granted retries never exceed capacity plus everything the bucket
        could possibly have refilled, and every client still reaches a
        terminal state exactly once per artifact."""
        kernel = SimKernel(seed=seed)
        origin = make_origin(kernel, names=("alpha",))
        proxy = SiteProxy("px", origin, kernel=kernel)
        injector = FaultInjector(kernel, origins=[origin])
        injector.apply(
            FaultPlan(
                "t",
                (
                    FaultSpec(
                        FaultKind.ORIGIN_CRASH, "origin",
                        at_s=crash_at, duration_s=crash_for,
                    ),
                ),
            )
        )
        budget = RetryBudget(
            capacity=capacity, refill_per_s=refill, kernel=kernel
        )
        fleet = [
            RepoClient(
                f"c{i}", proxy, kernel=kernel,
                policy=RetryPolicy(
                    max_attempts=20, base_delay_s=2.0, jitter=0.3
                ),
                budget=budget, patience_s=2000.0,
            )
            for i in range(clients)
        ]
        for i, client in enumerate(fleet):
            client.sync(["alpha"], at_s=float(i))
        drain(kernel)
        max_refill = refill * kernel.now_s
        assert budget.granted <= capacity + max_refill + 1e-6
        assert budget.tokens(kernel.now_s) >= -1e-9
        for client in fleet:
            assert client.problems() == []
        assert repod_confluence_problems(
            kernel.trace.events,
            servers=[origin], proxies=[proxy], clients=fleet,
        ) == []

"""Extended CLI surfaces: yum groups, condor, ganglia, lfs."""

import pytest

from repro.cli import ClusterShell
from repro.core import build_xnit_repository, xnit_group_catalog
from repro.htc import pool_from_cluster, HtcJob, ClassAd
from repro.monitoring import monitor_cluster
from repro.pfs import montana_hyalite_storage


@pytest.fixture
def loaded_shell(xcbc_littlefe):
    cluster = xcbc_littlefe.cluster
    pool = pool_from_cluster(cluster)
    pool.submit(HtcJob(ad=ClassAd("sweep-1"), owner="grad", runtime_cycles=3))
    pool.step()
    gmetad = monitor_cluster(cluster)
    gmetad.poll_cycle()
    lustre = montana_hyalite_storage()
    lustre.create("/hyalite/data.bin", 10**9, stripe_count=4)
    return ClusterShell(
        cluster,
        repositories={"xsede": build_xnit_repository()},
        group_catalog=xnit_group_catalog(),
        condor_pool=pool,
        gmetad=gmetad,
        lustre=lustre,
    )


class TestYumGroups:
    def test_grouplist(self, loaded_shell):
        output = loaded_shell.run("yum grouplist").output
        assert "XNIT Bioinformatics Pipeline" in output

    def test_groupinfo(self, loaded_shell):
        output = loaded_shell.run("yum groupinfo xnit-molecular-dynamics").output
        assert "gromacs" in output and "Mandatory Packages" in output

    def test_groupinstall_extras_via_shell(self, loaded_shell):
        # the md group is already on an XCBC build; data-climate optional
        # extras are not, so use a domain group with uninstalled optionals
        result = loaded_shell.run("yum groupinstall xnit-data-climate")
        # everything mandatory is already installed on XCBC -> nothing to do
        assert not result.ok and "nothing to do" in result.output

    def test_group_verbs_need_catalog(self, xcbc_littlefe):
        shell = ClusterShell(xcbc_littlefe.cluster)
        assert not shell.run("yum grouplist").ok


class TestCondorCli:
    def test_condor_status(self, loaded_shell):
        output = loaded_shell.run("condor_status").output
        assert "slot1@compute-0-0" in output
        assert "Claimed" in output  # the stepped job is running

    def test_condor_q(self, loaded_shell):
        output = loaded_shell.run("condor_q").output
        assert "sweep-1" in output and "1 running" in output

    def test_condor_requires_pool(self, xcbc_littlefe):
        shell = ClusterShell(xcbc_littlefe.cluster)
        assert not shell.run("condor_status").ok


class TestGangliaCli:
    def test_dashboard(self, loaded_shell):
        output = loaded_shell.run("ganglia").output
        assert "Ganglia" in output and "6/6 up" in output

    def test_requires_gmetad(self, xcbc_littlefe):
        shell = ClusterShell(xcbc_littlefe.cluster)
        assert not shell.run("ganglia").ok


class TestLfsCli:
    def test_lfs_df(self, loaded_shell):
        output = loaded_shell.run("lfs df").output
        assert "hyalite-OST0000" in output and "total" in output

    def test_lfs_getstripe(self, loaded_shell):
        output = loaded_shell.run("lfs getstripe /hyalite/data.bin").output
        assert "lmm_stripe_count:  4" in output

    def test_lfs_usage_errors(self, loaded_shell):
        assert not loaded_shell.run("lfs frobnicate").ok
        assert not loaded_shell.run("lfs getstripe /no/such").ok

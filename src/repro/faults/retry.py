"""Retry/backoff policies and the circuit breaker.

Campus-cluster recovery loops (PXE re-boot, mirror re-sync, GridFTP
re-transfer) all share the same shape: try, fail, wait an exponentially
growing-but-jittered delay, try again, give up after a bounded number of
attempts or a wall-clock budget.  :class:`RetryPolicy` is that shape as
data; :func:`call_with_retry` executes it *on the simulation kernel* —
backoff delays are spent with ``kernel.run_until`` so co-simulated events
fire inside the wait, jitter comes from the kernel's seeded RNG (same seed
⇒ same delays ⇒ byte-identical traces), and every attempt is published as
a ``fault.retry`` / ``fault.giveup`` trace event.

:class:`CircuitBreaker` guards a repeatedly failing dependency: after
``failure_threshold`` consecutive failures the circuit opens and calls
fail fast (no load on the dying service) until ``reset_timeout_s`` of
simulated time has passed, then one probe is allowed through (half-open).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..errors import FaultError, HeadnodeCrashError, ReproError, RetryExhaustedError

__all__ = ["RetryPolicy", "CircuitBreaker", "call_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative exponential-backoff-with-jitter retry behaviour.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    try plus two retries.  ``deadline_s`` is a total simulated-time budget
    measured from the first attempt; once it is exhausted no further retry
    is scheduled even if attempts remain.  ``jitter`` is the +/- fraction
    applied to each delay (0 disables it; determinism is preserved either
    way because the randomness comes from the kernel RNG).
    """

    max_attempts: int = 4
    base_delay_s: float = 1.0
    multiplier: float = 2.0
    max_delay_s: float = 60.0
    jitter: float = 0.1
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise FaultError("delays must be non-negative")
        if self.multiplier < 1:
            raise FaultError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0 <= self.jitter < 1:
            raise FaultError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise FaultError("deadline must be positive")

    def delay_for(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise FaultError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1)
        )
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class CircuitBreaker:
    """Consecutive-failure circuit breaker over simulated time.

    States: *closed* (calls flow), *open* (calls fail fast with
    :class:`~repro.errors.FaultError`), *half-open* (one probe allowed
    after ``reset_timeout_s``; success closes the circuit, failure
    re-opens it).
    """

    def __init__(
        self, *, failure_threshold: int = 5, reset_timeout_s: float = 300.0
    ) -> None:
        if failure_threshold < 1:
            raise FaultError("failure threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise FaultError("reset timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._consecutive_failures = 0
        self._opened_at_s: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        return (
            "closed"
            if self._opened_at_s is None
            else ("half-open" if self._probing else "open")
        )

    def allow(self, now_s: float) -> bool:
        """May a call proceed at ``now_s``?  (half-open admits one probe)"""
        if self._opened_at_s is None:
            return True
        if now_s - self._opened_at_s >= self.reset_timeout_s:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._opened_at_s = None
        self._probing = False

    def record_failure(self, now_s: float) -> None:
        self._consecutive_failures += 1
        if self._probing or self._consecutive_failures >= self.failure_threshold:
            self._opened_at_s = now_s
            self._probing = False

    def guard(self, now_s: float, service: str) -> None:
        """Raise :class:`FaultError` when the circuit refuses the call."""
        if not self.allow(now_s):
            remaining = self.reset_timeout_s - (now_s - (self._opened_at_s or 0.0))
            raise FaultError(
                f"circuit open for {service}: "
                f"{self._consecutive_failures} consecutive failure(s), "
                f"retry allowed in {remaining:.0f}s"
            )


def call_with_retry(
    kernel,
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    op: str,
    subsystem: str = "faults",
    retry_on: tuple[type[BaseException], ...] = (ReproError,),
    breaker: CircuitBreaker | None = None,
) -> T:
    """Run ``fn`` under ``policy`` on a :class:`~repro.sim.SimKernel`.

    Backoff is spent as simulated time (co-simulated events due inside the
    wait fire first), each retry emits ``fault.retry``, and exhaustion
    emits ``fault.giveup`` then raises
    :class:`~repro.errors.RetryExhaustedError` chaining the last failure.
    """
    if breaker is not None:
        breaker.guard(kernel.now_s, op)
    started_s = kernel.now_s
    attempt = 0
    while True:
        attempt += 1
        try:
            result = fn()
        except HeadnodeCrashError:
            # A head-node crash is control flow, not a transient failure:
            # the machine running this retry loop just died, so no retry,
            # no backoff, no giveup event — the exception must unwind the
            # whole run untouched (recovery is checkpoint + journal).
            raise
        except retry_on as exc:
            if breaker is not None:
                breaker.record_failure(kernel.now_s)
            out_of_attempts = attempt >= policy.max_attempts
            delay = policy.delay_for(attempt, kernel.rng)
            over_deadline = (
                policy.deadline_s is not None
                and kernel.now_s + delay - started_s > policy.deadline_s
            )
            if out_of_attempts or over_deadline:
                kernel.trace.emit(
                    "fault.giveup", t_s=kernel.now_s, subsystem=subsystem,
                    op=op, attempts=attempt,
                )
                reason = "deadline exceeded" if over_deadline else "attempts exhausted"
                raise RetryExhaustedError(
                    f"{op} failed after {attempt} attempt(s) ({reason}): {exc}",
                    attempts=attempt,
                    last_error=exc,
                ) from exc
            kernel.trace.emit(
                "fault.retry", t_s=kernel.now_s, subsystem=subsystem,
                op=op, attempt=attempt, delay_s=delay,
            )
            kernel.run_until(kernel.now_s + delay)
        else:
            if breaker is not None:
                breaker.record_success()
            return result

"""The RPM package model: NEVRA identity, capabilities, and payload.

A :class:`Package` is a *built* RPM: identity (name-epoch:version-release.arch),
dependency metadata (provides / requires / conflicts / obsoletes over
versioned :class:`Capability` / :class:`Requirement` pairs), and a payload
description (files, commands, libraries, services, modulefile) that the
transaction layer materialises onto a host.

Capability matching follows RPM:

* every package implicitly provides its own ``name = EVR``;
* a :class:`Requirement` with no version matches any provider of the name;
* a versioned requirement matches if the provider's version satisfies the
  comparison (with RPM's "missing release matches any" rule, handled in
  :mod:`repro.rpm.version`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import RpmError
from .version import EVR, parse_evr

__all__ = ["Flag", "Capability", "Requirement", "Package", "nevra"]


class Flag(str, Enum):
    """Comparison flag on a versioned dependency."""

    ANY = ""  # unversioned
    EQ = "="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True)
class Capability:
    """Something a package provides: ``name`` optionally ``= version``."""

    name: str
    version: str = ""  # empty = unversioned provide

    def __str__(self) -> str:
        return f"{self.name} = {self.version}" if self.version else self.name


@dataclass(frozen=True)
class Requirement:
    """Something a package needs: ``name`` with an optional version range."""

    name: str
    flag: Flag = Flag.ANY
    version: str = ""

    def __post_init__(self) -> None:
        if (self.flag is Flag.ANY) != (not self.version):
            raise RpmError(
                f"requirement {self.name!r}: flag and version must both be "
                f"set or both be empty (flag={self.flag!r}, "
                f"version={self.version!r})"
            )

    def __str__(self) -> str:
        if self.flag is Flag.ANY:
            return self.name
        return f"{self.name} {self.flag.value} {self.version}"

    def matches(self, cap: Capability) -> bool:
        """True if ``cap`` satisfies this requirement."""
        if cap.name != self.name:
            return False
        if self.flag is Flag.ANY:
            return True
        if not cap.version:
            # Unversioned provide satisfies any versioned requirement (RPM).
            return True
        have = parse_evr(cap.version)
        want = parse_evr(self.version)
        if self.flag is Flag.EQ:
            return have == want
        if self.flag is Flag.LT:
            return have < want
        if self.flag is Flag.LE:
            return have <= want
        if self.flag is Flag.GT:
            return have > want
        if self.flag is Flag.GE:
            return have >= want
        raise AssertionError(f"unhandled flag {self.flag}")


@dataclass(frozen=True)
class Package:
    """A built RPM.

    Payload fields describe what installing the package does:

    * ``files`` — extra paths written verbatim;
    * ``commands`` — names that land as executables in ``/usr/bin``;
    * ``libraries`` — shared-object names that land in ``/usr/lib64``
      ("libraries are in the same place as on XSEDE clusters", Section 2);
    * ``services`` — daemons registered with the service manager;
    * ``modulefile`` — ``name/version`` installed into environment modules.
    """

    name: str
    version: str
    release: str = "1"
    epoch: int = 0
    arch: str = "x86_64"
    summary: str = ""
    category: str = ""  # Table 1/2 category this package belongs to
    size_bytes: int = 1024 * 1024
    provides: tuple[Capability, ...] = ()
    requires: tuple[Requirement, ...] = ()
    conflicts: tuple[Requirement, ...] = ()
    obsoletes: tuple[Requirement, ...] = ()
    files: tuple[str, ...] = ()
    commands: tuple[str, ...] = ()
    libraries: tuple[str, ...] = ()
    services: tuple[str, ...] = ()
    modulefile: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise RpmError("package name must be non-empty")
        if not self.version:
            raise RpmError(f"package {self.name}: version must be non-empty")
        if self.epoch < 0:
            raise RpmError(f"package {self.name}: negative epoch")
        if self.size_bytes < 0:
            raise RpmError(f"package {self.name}: negative size")

    # -- identity ----------------------------------------------------------

    @property
    def evr(self) -> EVR:
        """The package's own epoch:version-release."""
        return EVR(self.epoch, self.version, self.release)

    @property
    def evr_string(self) -> str:
        return str(self.evr)

    @property
    def nevra(self) -> str:
        """Full ``name-[epoch:]version-release.arch`` identity."""
        e = f"{self.epoch}:" if self.epoch else ""
        return f"{self.name}-{e}{self.version}-{self.release}.{self.arch}"

    # -- capabilities -------------------------------------------------------

    def all_provides(self) -> tuple[Capability, ...]:
        """Explicit provides plus the implicit self-provide."""
        self_cap = Capability(self.name, str(self.evr))
        return (self_cap,) + tuple(self.provides)

    def satisfies(self, req: Requirement) -> bool:
        """True if this package satisfies ``req`` via any capability."""
        return any(req.matches(cap) for cap in self.all_provides())

    def conflicts_with(self, other: "Package") -> bool:
        """True if either package declares a conflict matched by the other."""
        return any(other.satisfies(c) for c in self.conflicts) or any(
            self.satisfies(c) for c in other.conflicts
        )

    def obsoletes_package(self, other: "Package") -> bool:
        """True if this package obsoletes ``other`` (by name match)."""
        return any(
            o.name == other.name and o.matches(Capability(other.name, str(other.evr)))
            for o in self.obsoletes
        )

    def is_newer_than(self, other: "Package") -> bool:
        """EVR comparison between same-name packages."""
        if self.name != other.name:
            raise RpmError(
                f"cannot compare versions of different packages: "
                f"{self.name} vs {other.name}"
            )
        return self.evr > other.evr

    def default_paths(self) -> list[str]:
        """Every path this package materialises (files+commands+libraries)."""
        paths = list(self.files)
        paths += [f"/usr/bin/{c}" for c in self.commands]
        paths += [f"/usr/lib64/{lib}" for lib in self.libraries]
        return paths

    def __str__(self) -> str:
        return self.nevra


def nevra(pkg: Package) -> str:
    """Free-function spelling of :attr:`Package.nevra` (sorting key helper)."""
    return pkg.nevra

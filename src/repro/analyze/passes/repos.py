"""Yum repository checks: configuration stanzas and priority interactions.

Section 3's setup instructions hinge on ``yum-plugin-priorities``: the XSEDE
repo is given a better (lower) priority than the OS base so its builds win.
The same mechanism is a famous foot-gun in the other direction — a
higher-priority repo *hides every newer NEVRA* a lower-priority repo
publishes, which is how clusters quietly stop receiving updates.  RC202
detects that shadowing statically, from repository contents.
"""

from __future__ import annotations

from collections import Counter

from ..diagnostic import Severity
from ..registry import rule

RC201 = rule(
    "RC201",
    "repo",
    Severity.ERROR,
    "duplicate repository id across the definition",
    "yum refuses duplicate [sections]; rename one of the repos",
)
RC202 = rule(
    "RC202",
    "repo",
    Severity.WARNING,
    "priority shadowing hides every newer build of a package",
    "lower the shadowed repo's priority number (or raise the shadowing "
    "repo's) so the newer NEVRA is visible — the yum-plugin-priorities "
    "foot-gun Section 3 warns about",
)
RC203 = rule(
    "RC203",
    "repo",
    Severity.ERROR,
    "repository the recipe depends on is disabled or missing",
    "set enabled=1 on the stanza, or remove the dependency on the repo",
)
RC204 = rule(
    "RC204",
    "repo",
    Severity.INFO,
    "GPG signature checking is disabled on an enabled repository",
    "set gpgcheck=1 and import the signing key once the repo publishes one",
)
RC205 = rule(
    "RC205",
    "repo",
    Severity.ERROR,
    "repository priority outside the valid 1..99 range",
    "yum-plugin-priorities clamps silently; use a value in 1..99",
)


def run(definition, emit) -> None:
    stanzas = list(definition.repo_stanzas)
    repositories = list(definition.repositories)
    if not stanzas and not repositories and not definition.required_repo_ids:
        return

    # RC201: duplicate ids across everything the definition declares.
    counts = Counter(
        [s.repo_id for s in stanzas] + [r.repo_id for r in repositories]
    )
    for repo_id, count in sorted(counts.items()):
        if count > 1:
            emit(
                "RC201",
                f"repository id {repo_id!r} is declared {count} times",
                location=f"repo:[{repo_id}]",
            )

    # RC205 / RC204: stanza-level configuration checks.
    for stanza in stanzas:
        if not 1 <= stanza.priority <= 99:
            emit(
                "RC205",
                f"[{stanza.repo_id}] priority={stanza.priority} is outside 1..99",
                location=f"repo:[{stanza.repo_id}]",
            )
        if stanza.enabled and not stanza.gpgcheck:
            emit(
                "RC204",
                f"[{stanza.repo_id}] has gpgcheck=0: packages install unsigned",
                location=f"repo:[{stanza.repo_id}]",
            )

    # RC203: every repo the recipe references must exist and be enabled.
    enabled_ids = {s.repo_id for s in stanzas if s.enabled}
    enabled_ids |= {r.repo_id for r in repositories if r.enabled}
    known_ids = {s.repo_id for s in stanzas} | {r.repo_id for r in repositories}
    for repo_id in definition.required_repo_ids:
        if repo_id not in known_ids:
            emit(
                "RC203",
                f"recipe references repository {repo_id!r}, which is not defined",
                location=f"repo:[{repo_id}]",
            )
        elif repo_id not in enabled_ids:
            emit(
                "RC203",
                f"recipe references repository {repo_id!r}, which is disabled",
                location=f"repo:[{repo_id}]",
            )

    # RC202: content-level priority shadowing.  For each package name, the
    # best-priority repos are the only ones yum will consider; if a worse-
    # priority repo holds a strictly newer EVR than anything the best tier
    # offers, every newer build of that name is invisible.
    enabled_repos = [r for r in repositories if r.enabled]
    if len(enabled_repos) > 1:
        names: set[str] = set()
        for repo in enabled_repos:
            names |= repo.names()
        for name in sorted(names):
            offering = [r for r in enabled_repos if r.has(name)]
            if len(offering) < 2:
                continue
            best = min(r.priority for r in offering)
            if all(r.priority == best for r in offering):
                continue
            visible_newest = max(
                r.latest(name).evr for r in offering if r.priority == best
            )
            for repo in offering:
                if repo.priority == best:
                    continue
                hidden_newest = repo.latest(name)
                if hidden_newest.evr > visible_newest:
                    winner = ", ".join(
                        sorted(
                            r.repo_id for r in offering if r.priority == best
                        )
                    )
                    emit(
                        "RC202",
                        f"{hidden_newest.nevra} in repo {repo.repo_id!r} "
                        f"(priority {repo.priority}) is hidden by "
                        f"priority-{best} repo(s) {winner} whose newest "
                        f"{name} is older",
                        location=f"repo:[{repo.repo_id}]/{name}",
                    )

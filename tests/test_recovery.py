"""repro.recovery: journal, snapshots, checkpoint/restore, supervisor.

Covers the write-ahead journal lifecycle (intent before mutation, replay
vs rollback recovery, the JSONL write-ahead file), WAL-hardened RPM
transactions and Rocks installs (no phantom packages, no half-registered
nodes after a crash), crash-consistent snapshots with digest
verification, state-verified deterministic replay restore (including the
hypothesis property: restoring at *any* step boundary reproduces the
remaining trace byte-for-byte), each self-healing supervisor policy, and
the ISSUE's headnode-crash/resume acceptance scenario end to end.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    CheckpointError,
    HeadnodeCrashError,
    JournalError,
    RecoveryError,
    TransactionError,
)
from repro.faults.chaos import CLUSTERS, ChaosWorld, demo_plan
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.recovery import (
    CheckpointManager,
    Journal,
    OpState,
    RecoveryHandler,
    RecoveryPolicy,
    Snapshot,
    Supervisor,
    TxnState,
    canonical_json,
    diff_states,
    recover_incomplete,
    register_world_factory,
    state_digest,
    world_factories,
)
from repro.faults.retry import RetryPolicy
from repro.rocks.database import InstallState
from repro.rocks.installer import RocksInstaller, recover_install
from repro.rpm import Package, RpmDatabase, Transaction
from repro.rpm.transaction import recover_transaction
from repro.scheduler import ClusterResources, Job, JobState, MauiScheduler
from repro.sim import SimKernel


def mk(name, version="1.0", **kw):
    return Package(name=name, version=version, **kw)


def _job(name, cores, runtime_s=600.0, **kw):
    return Job(name, "chaos", cores=cores, walltime_limit_s=7200.0,
               runtime_s=runtime_s, **kw)


def _crash_plan(machine, at_s):
    base = demo_plan(machine)
    return FaultPlan(
        name=f"{base.name}+crash",
        faults=base.faults
        + (FaultSpec(FaultKind.HEADNODE_CRASH, "frontend", at_s=at_s),),
    )


# --- the write-ahead journal ----------------------------------------------------


class TestJournal:
    def test_lifecycle_intent_applied_commit(self):
        journal = Journal()
        txn = journal.begin("rpm.txn", host="fe")
        op = journal.intent(txn, "install", name="a", nevra="a-1.0")
        assert op.state is OpState.INTENT
        journal.applied(txn, op)
        assert op.state is OpState.APPLIED
        journal.commit(txn)
        assert txn.state is TxnState.COMMITTED
        assert journal.open_txns() == []
        assert len(journal) == 1

    def test_open_txns_filters_by_kind(self):
        journal = Journal()
        journal.begin("rpm.txn", host="fe")
        journal.begin("mirror.sync", repo="xsede")
        assert len(journal.open_txns()) == 2
        assert [t.kind for t in journal.open_txns("mirror.sync")] == ["mirror.sync"]

    def test_closed_txn_rejects_ops(self):
        journal = Journal()
        txn = journal.begin("rpm.txn")
        journal.commit(txn)
        with pytest.raises(JournalError, match="committed"):
            journal.intent(txn, "install", name="a")
        with pytest.raises(JournalError, match="cannot commit"):
            journal.commit(txn)

    def test_undone_valid_from_intent_and_applied_but_not_twice(self):
        journal = Journal()
        txn = journal.begin("rpm.txn")
        op_a = journal.intent(txn, "install", name="a")
        op_b = journal.intent(txn, "install", name="b")
        journal.applied(txn, op_b)
        journal.undone(txn, op_a)   # crashed between intent and applied
        journal.undone(txn, op_b)   # normal rollback path
        with pytest.raises(JournalError, match="already undone"):
            journal.undone(txn, op_a)

    def test_wal_file_roundtrip_reconstructs_in_flight_work(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path=path)
        done = journal.begin("rpm.txn", host="fe")
        op = journal.intent(done, "install", name="a", nevra="a-1.0")
        journal.applied(done, op)
        journal.commit(done)
        crashed = journal.begin("rocks.install", mac="aa:bb")
        reg = journal.intent(crashed, "register", name="compute-0-0")
        journal.applied(crashed, reg)
        journal.intent(crashed, "install", name="compute-0-0")
        # ...process dies here; a fresh process replays the WAL file:
        loaded = Journal.load(path)
        assert len(loaded) == 2
        open_txns = loaded.open_txns()
        assert [t.kind for t in open_txns] == ["rocks.install"]
        txn = open_txns[0]
        assert txn.meta == {"mac": "aa:bb"}
        assert [op.state for op in txn.ops] == [OpState.APPLIED, OpState.INTENT]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("not json\n")
        with pytest.raises(JournalError, match="line 1"):
            Journal.load(path)
        path.write_text('{"event":"applied","txn_id":1,"seq":9}\n')
        with pytest.raises(JournalError, match="unknown transaction"):
            Journal.load(path)

    def test_recover_incomplete_rolls_back_in_strict_reverse_order(self):
        journal = Journal()
        txn = journal.begin("rpm.txn")
        ops = []
        for name in ("a", "b", "c"):
            op = journal.intent(txn, "install", name=name)
            journal.applied(txn, op)
            ops.append(op)
        undone = []
        resolved = recover_incomplete(
            journal,
            {"rpm.txn": RecoveryHandler(
                "rollback", undo=lambda op: undone.append(op.payload["name"])
            )},
        )
        assert undone == ["c", "b", "a"]
        assert resolved == [txn]
        assert txn.state is TxnState.ROLLED_BACK

    def test_recover_incomplete_replay_mode(self):
        journal = Journal()
        txn = journal.begin("mirror.sync", repo="xsede")
        replayed = []
        recover_incomplete(
            journal,
            {"mirror.sync": RecoveryHandler(
                "replay", redo=lambda t: replayed.append(t.kind)
            )},
        )
        assert replayed == ["mirror.sync"]
        assert txn.state is TxnState.REPLAYED

    def test_recover_incomplete_strict_raises_on_unhandled_kind(self):
        journal = Journal()
        journal.begin("mystery.kind")
        with pytest.raises(JournalError, match="no recovery handler"):
            recover_incomplete(journal, {})
        assert recover_incomplete(journal, {}, strict=False) == []

    def test_handler_validation(self):
        with pytest.raises(JournalError, match="unknown recovery mode"):
            RecoveryHandler("meditate")
        with pytest.raises(JournalError, match="needs an undo"):
            RecoveryHandler("rollback")
        with pytest.raises(JournalError, match="needs a redo"):
            RecoveryHandler("replay")


# --- WAL-hardened RPM transactions ----------------------------------------------


class TestTransactionWal:
    @pytest.fixture
    def db(self, frontend_host):
        return RpmDatabase(frontend_host)

    def test_committed_transaction_is_journaled(self, db):
        journal = Journal()
        Transaction(db, journal=journal).install(mk("a")).commit()
        (txn,) = journal.transactions("rpm.txn")
        assert txn.state is TxnState.COMMITTED
        assert [(op.op, op.state) for op in txn.ops] == [
            ("install", OpState.APPLIED)
        ]

    def test_mid_commit_failure_rolls_back_through_journal(self, db, monkeypatch):
        journal = Journal()
        txn = Transaction(db, journal=journal).install(mk("a")).install(mk("boom"))
        real = db._install_unchecked

        def explode(pkg):
            if pkg.name == "boom":
                raise RuntimeError("disk full")
            real(pkg)

        monkeypatch.setattr(db, "_install_unchecked", explode)
        with pytest.raises(TransactionError, match="rolled back"):
            txn.commit()
        assert db.names() == set()
        (jtxn,) = journal.transactions("rpm.txn")
        assert jtxn.state is TxnState.ROLLED_BACK

    def test_headnode_crash_mid_commit_leaves_open_txn_no_rollback(
        self, db, monkeypatch
    ):
        journal = Journal()
        txn = Transaction(db, journal=journal).install(mk("a")).install(mk("b"))
        real = db._install_unchecked

        def crash(pkg):
            if pkg.name == "b":
                raise HeadnodeCrashError("power cut")
            real(pkg)

        monkeypatch.setattr(db, "_install_unchecked", crash)
        with pytest.raises(HeadnodeCrashError):
            txn.commit()
        # The corpse ran no cleanup: "a" half-landed, the journal txn is OPEN.
        assert db.has("a")
        (jtxn,) = journal.open_txns("rpm.txn")
        assert [op.state for op in jtxn.ops] == [OpState.APPLIED, OpState.INTENT]

    def test_recover_transaction_removes_phantom_packages(self, db, monkeypatch):
        journal = Journal()
        txn = Transaction(db, journal=journal).install(mk("a")).install(mk("b"))
        real = db._install_unchecked
        monkeypatch.setattr(
            db, "_install_unchecked",
            lambda pkg: (_ for _ in ()).throw(HeadnodeCrashError("power cut"))
            if pkg.name == "b" else real(pkg),
        )
        with pytest.raises(HeadnodeCrashError):
            txn.commit()
        monkeypatch.undo()
        resolved = recover_transaction(journal, db)
        assert len(resolved) == 1
        assert resolved[0].state is TxnState.ROLLED_BACK
        assert not db.has("a")          # no phantom packages
        assert journal.open_txns() == []

    def test_check_reports_tx707_until_recovered(self, db, monkeypatch):
        journal = Journal()
        txn = Transaction(db, journal=journal).install(mk("a"))
        monkeypatch.setattr(
            db, "_install_unchecked",
            lambda pkg: (_ for _ in ()).throw(HeadnodeCrashError("power cut")),
        )
        with pytest.raises(HeadnodeCrashError):
            txn.commit()
        monkeypatch.undo()
        fresh = Transaction(db, journal=journal).install(mk("c"))
        assert any(d.code == "TX707" for d in fresh.check_diagnostics())
        with pytest.raises(TransactionError, match="TX707|still open"):
            fresh.commit()
        recover_transaction(journal, db)
        assert not any(d.code == "TX707" for d in fresh.check_diagnostics())
        fresh.commit()
        assert db.has("c")

    def test_recover_erase_rebuilds_package_from_registry(self, db, monkeypatch):
        journal = Journal()
        keep = mk("keep", commands=("keep",))
        Transaction(db).install(keep).commit()
        txn = Transaction(db, journal=journal)
        txn.erase("keep")
        txn.install(mk("next"))
        monkeypatch.setattr(
            db, "_install_unchecked",
            lambda pkg: (_ for _ in ()).throw(HeadnodeCrashError("power cut")),
        )
        with pytest.raises(HeadnodeCrashError):
            txn.commit()
        monkeypatch.undo()
        assert not db.has("keep")       # the erase landed before the crash
        recover_transaction(journal, db)
        assert db.has("keep")           # rollback re-installed the erased pkg
        assert db.host.has_command("keep")


# --- WAL-hardened Rocks installs ------------------------------------------------


class TestRocksInstallWal:
    def test_full_install_commits_one_txn_per_compute(self, littlefe_machine):
        journal = Journal()
        installer = RocksInstaller(littlefe_machine, journal=journal)
        installer.run()
        txns = journal.transactions("rocks.install")
        assert len(txns) == len(littlefe_machine.compute_nodes)
        assert all(t.state is TxnState.COMMITTED for t in txns)

    def test_kickstart_failure_aborts_cleanly(self, littlefe_machine):
        journal = Journal()
        installer = RocksInstaller(littlefe_machine, journal=journal)
        installer.inject_kickstart_crash(
            littlefe_machine.compute_nodes[0].mac_address
        )
        installer.run(continue_on_error=True)
        aborted = [
            t for t in journal.transactions("rocks.install")
            if t.state is TxnState.ABORTED
        ]
        assert len(aborted) == 1
        assert "kickstart failed" in aborted[0].meta["abort_note"]
        assert journal.open_txns() == []

    def test_recover_install_removes_half_registered_host(self):
        from repro.rocks.database import HostRecord, RocksDatabase

        journal = Journal()
        rocksdb = RocksDatabase()
        rocksdb.add_host(HostRecord(
            name="compute-0-1", mac="aa:bb:cc:00:00:02", ip="10.1.255.253",
            appliance="compute", rack=0, rank=1,
            state=InstallState.INSTALLING,
        ))
        # The exact shape installer.run() leaves behind when the frontend
        # dies between insert-ethers' row write and the kickstart finish.
        txn = journal.begin("rocks.install", mac="aa:bb:cc:00:00:02")
        reg = journal.intent(txn, "register", name="compute-0-1",
                             mac="aa:bb:cc:00:00:02")
        journal.applied(txn, reg)
        journal.intent(txn, "install", name="compute-0-1")

        resolved = recover_install(journal, rocksdb)
        assert [t.txn_id for t in resolved] == [txn.txn_id]
        assert txn.state is TxnState.ROLLED_BACK
        assert rocksdb.hosts() == []          # no half-registered phantom
        assert journal.open_txns() == []

    def test_recover_install_tolerates_row_that_never_landed(self):
        from repro.rocks.database import RocksDatabase

        journal = Journal()
        rocksdb = RocksDatabase()
        txn = journal.begin("rocks.install", mac="aa:bb:cc:00:00:03")
        journal.intent(txn, "register", name="compute-0-2",
                       mac="aa:bb:cc:00:00:03")
        # Crash hit between intent and the row write: recovery must force
        # the op to definitely-not-happened without raising.
        recover_install(journal, rocksdb)
        assert txn.state is TxnState.ROLLED_BACK
        assert rocksdb.hosts() == []


# --- snapshots ------------------------------------------------------------------


class TestSnapshot:
    def _snap(self, state):
        return Snapshot(
            world="chaos", steps=3, now_s=42.0, events_processed=5,
            config={"seed": 1}, state=state, trace_len=0,
            trace_sha256="0" * 64, digest=state_digest(state),
        )

    def test_json_roundtrip(self):
        snap = self._snap({"a": [1, 2], "b": {"c": None}})
        again = Snapshot.from_json(snap.to_json())
        assert again == snap

    def test_save_load(self, tmp_path):
        snap = self._snap({"x": 1.5})
        path = tmp_path / "world.ckpt"
        snap.save(path)
        assert Snapshot.load(path) == snap

    def test_corrupted_state_is_rejected(self):
        snap = self._snap({"x": 1})
        bad = dict(snap.to_dict())
        bad["state"] = {"x": 2}
        with pytest.raises(CheckpointError, match="digest mismatch"):
            Snapshot.from_dict(bad)

    def test_missing_fields_and_bad_version_rejected(self):
        snap = self._snap({})
        truncated = {k: v for k, v in snap.to_dict().items() if k != "state"}
        with pytest.raises(CheckpointError, match="missing fields"):
            Snapshot.from_dict(truncated)
        stale = dict(snap.to_dict())
        stale["version"] = 99
        with pytest.raises(CheckpointError, match="v99"):
            Snapshot.from_dict(stale)
        with pytest.raises(CheckpointError, match="not valid JSON"):
            Snapshot.from_json("{nope")

    def test_canonical_json_rejects_nan_and_objects(self):
        with pytest.raises(CheckpointError, match="not canonical"):
            canonical_json(float("nan"))
        with pytest.raises(CheckpointError, match="not canonical"):
            canonical_json(object())

    def test_diff_states_pinpoints_divergence(self):
        a = {"kernel": {"now_s": 10.0}, "jobs": [1, 2, 3]}
        b = {"kernel": {"now_s": 12.0}, "jobs": [1, 2, 3]}
        assert diff_states(a, b) == ["kernel.now_s: 10.0 != 12.0"]
        assert diff_states({"x": [1]}, {"x": [1, 2]}) == ["x: length 1 != 2"]
        assert diff_states({"a": 1}, {"b": 1}) == [
            "a: missing from actual", "b: unexpected (only in actual)"
        ]


# --- checkpoint/restore ---------------------------------------------------------


class TestCheckpointManager:
    def test_interval_validation(self):
        world = ChaosWorld({"seed": 0, "job_count": 2})
        with pytest.raises(CheckpointError, match=">= 1"):
            CheckpointManager(world, every=0)

    def test_maybe_capture_cadence(self):
        world = ChaosWorld({"seed": 0, "job_count": 2})
        manager = CheckpointManager(world, every=10)
        taken = []
        for _ in range(25):
            world.step()
            snap = manager.maybe_capture()
            if snap is not None:
                taken.append(snap.steps)
        assert taken == [10, 20]
        assert manager.latest.steps == 20

    def test_restore_unknown_world_raises(self):
        state = {"x": 1}
        snap = Snapshot(
            world="atlantis", steps=1, now_s=0.0, events_processed=0,
            config={}, state=state, trace_len=0, trace_sha256="0" * 64,
            digest=state_digest(state),
        )
        with pytest.raises(CheckpointError, match="atlantis"):
            CheckpointManager.restore(snap)
        assert "chaos" in world_factories()

    def test_restore_detects_divergent_config(self):
        world = ChaosWorld({"seed": 5, "job_count": 4})
        manager = CheckpointManager(world)
        for _ in range(40):
            world.step()
        snap = manager.capture()
        # A different seed replays a different world; the digest check
        # must refuse to hand it back as if nothing happened.
        with pytest.raises(CheckpointError, match="verification failed"):
            CheckpointManager.restore(snap, seed=snap.config["seed"] + 1)

    def test_restore_resumes_byte_identical(self):
        reference = ChaosWorld({"seed": 11, "job_count": 6})
        reference.run()
        expected = reference.kernel.trace.to_jsonl()

        world = ChaosWorld({"seed": 11, "job_count": 6})
        manager = CheckpointManager(world)
        for _ in range(120):
            assert world.step()
        snap = manager.capture()
        resumed = CheckpointManager.restore(Snapshot.from_json(snap.to_json()))
        resumed.run()
        assert resumed.kernel.trace.to_jsonl() == expected
        assert resumed.result().report.ok


# --- property: restore at ANY step boundary is byte-exact -----------------------


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    cut=st.integers(min_value=1, max_value=10_000),
)
@settings(max_examples=8, deadline=None)
def test_snapshot_restore_at_random_boundary_is_byte_identical(seed, cut):
    """Checkpoint a seeded chaos run at an arbitrary driver-step boundary,
    restore it, run both to completion: the remaining traces must agree
    byte for byte (and the audited report must stay green)."""
    config = {"seed": seed, "job_count": 4}
    reference = ChaosWorld(config)
    reference.run()
    expected = reference.kernel.trace.to_jsonl()
    total_steps = reference.steps

    world = ChaosWorld(config)
    boundary = cut % max(1, total_steps - 1) + 1
    for _ in range(boundary):
        world.step()
    snap = CheckpointManager(world).capture()
    resumed = CheckpointManager.restore(snap)
    resumed.run()
    assert resumed.kernel.trace.to_jsonl() == expected
    assert resumed.result().report.ok, resumed.result().report.violations


# --- the supervisor -------------------------------------------------------------


def _mini_stack(machine):
    kernel = SimKernel(seed=0)
    scheduler = MauiScheduler(ClusterResources(machine), kernel=kernel)
    return kernel, scheduler


class TestSupervisorPolicies:
    def test_policy_validation(self):
        with pytest.raises(RecoveryError, match="unknown recovery action"):
            RecoveryPolicy("reboot.universe")
        with pytest.raises(RecoveryError, match="negative"):
            RecoveryPolicy("reboot.node", delay_s=-1.0)
        kernel = SimKernel()
        with pytest.raises(RecoveryError, match="positive"):
            Supervisor(kernel, period_s=0)
        sup = Supervisor(kernel)
        sup.start()
        with pytest.raises(RecoveryError, match="already running"):
            sup.start()
        sup.stop()
        sup.stop()  # idempotent
        with pytest.raises(RecoveryError, match="no policy"):
            sup.policy("made.up")

    def test_reboot_node_recovers_failed_node(self, littlefe_machine):
        kernel, scheduler = _mini_stack(littlefe_machine)
        sup = Supervisor(kernel, scheduler=scheduler, machine=littlefe_machine,
                         period_s=60.0)
        victim = littlefe_machine.compute_nodes[0].name
        scheduler.crash_node(victim, reason="test")
        sup.sweep()
        assert victim in sup._pending_reboots
        kernel.run_until(kernel.now_s + sup.policy("reboot.node").delay_s + 1)
        assert not scheduler.resources.is_failed(victim)
        assert victim in sup.repaired_nodes
        assert kernel.trace.count("recover.node") == 1
        assert [r.action for r in sup.repairs] == ["reboot.node"]

    def test_reboot_skipped_when_power_is_dead(self, littlefe_machine):
        kernel, scheduler = _mini_stack(littlefe_machine)
        sup = Supervisor(kernel, scheduler=scheduler,
                         power_probe=lambda node: False, period_s=60.0)
        victim = littlefe_machine.compute_nodes[0].name
        scheduler.crash_node(victim, reason="psu")
        sup.sweep()
        assert sup._pending_reboots == set()
        assert scheduler.resources.is_failed(victim)
        assert sup.repairs == []

    def test_reboot_attempts_are_bounded(self, littlefe_machine):
        kernel, scheduler = _mini_stack(littlefe_machine)
        policies = (RecoveryPolicy("reboot.node",
                                   retry=RetryPolicy(max_attempts=1),
                                   delay_s=10.0),)
        sup = Supervisor(kernel, scheduler=scheduler, policies=policies,
                         period_s=60.0)
        victim = littlefe_machine.compute_nodes[0].name
        scheduler.crash_node(victim, reason="flaky")
        sup.sweep()
        kernel.run_until(kernel.now_s + 11)
        assert not scheduler.resources.is_failed(victim)
        scheduler.crash_node(victim, reason="flaky again")
        sup.sweep()   # bound spent: no second reboot
        kernel.run_until(kernel.now_s + 100)
        assert scheduler.resources.is_failed(victim)
        assert len(sup.repairs) == 1

    def test_restart_gmond_restores_heartbeat(self, littlefe_machine):
        from repro.distro import CENTOS_6_5, Host
        from repro.monitoring import Gmetad, Gmond

        kernel, scheduler = _mini_stack(littlefe_machine)
        gmetad = Gmetad(littlefe_machine.name, kernel=kernel)
        for node in littlefe_machine.nodes:
            gmetad.attach(Gmond(Host(node, CENTOS_6_5)))
        sup = Supervisor(kernel, scheduler=scheduler, gmetad=gmetad,
                         period_s=60.0)
        victim = littlefe_machine.compute_nodes[0].name
        gmetad.gmond_for(victim).fail_heartbeat()
        sup.sweep()
        assert gmetad.gmond_for(victim).responsive
        assert kernel.trace.count("recover.gmond") == 1

    def test_restart_gmond_skips_powered_off_hosts(self, littlefe_machine):
        from repro.distro import CENTOS_6_5, Host
        from repro.monitoring import Gmetad, Gmond

        kernel, scheduler = _mini_stack(littlefe_machine)
        gmetad = Gmetad(littlefe_machine.name, kernel=kernel)
        for node in littlefe_machine.nodes:
            gmetad.attach(Gmond(Host(node, CENTOS_6_5)))
        victim = littlefe_machine.compute_nodes[0]
        victim.powered_on = False
        gmetad.gmond_for(victim.name).fail_heartbeat()
        sup = Supervisor(kernel, gmetad=gmetad)
        sup.sweep()
        assert not gmetad.gmond_for(victim.name).responsive
        assert sup.repairs == []

    def test_undrain_returns_healthy_node_to_service(self, littlefe_machine):
        kernel, scheduler = _mini_stack(littlefe_machine)
        sup = Supervisor(kernel, scheduler=scheduler, period_s=60.0)
        node = littlefe_machine.compute_nodes[0].name
        scheduler.resources.set_draining(node, True)
        sup.sweep()
        assert node not in scheduler.resources.draining_nodes()
        assert kernel.trace.count("recover.undrain") == 1

    def test_resubmit_failed_in_queue_job(self, littlefe_machine):
        kernel, scheduler = _mini_stack(littlefe_machine)
        sup = Supervisor(kernel, scheduler=scheduler, period_s=60.0)
        total = scheduler.resources.usable_cores
        # Fail every compute node so a wide job dies in the queue...
        for node in [n.name for n in littlefe_machine.compute_nodes][1:]:
            scheduler.crash_node(node, reason="test")
        job = _job("wide", total)
        scheduler.submit(job)
        assert job.state is JobState.FAILED and job.start_time_s is None
        # ...then restore capacity and let the supervisor resubmit it.
        for node in [n.name for n in littlefe_machine.compute_nodes][1:]:
            scheduler.recover_node(node)
        sup.sweep()
        assert job.state is not JobState.FAILED
        assert kernel.trace.count("recover.resubmit") == 1
        kernel.run_until(kernel.now_s + job.runtime_s + 60)
        assert job.state is JobState.COMPLETED

    def test_resubmit_skips_jobs_that_cannot_fit(self, littlefe_machine):
        kernel, scheduler = _mini_stack(littlefe_machine)
        sup = Supervisor(kernel, scheduler=scheduler, period_s=60.0)
        total = scheduler.resources.usable_cores
        for node in [n.name for n in littlefe_machine.compute_nodes][1:]:
            scheduler.crash_node(node, reason="test")
        job = _job("wide", total)
        scheduler.submit(job)
        assert job.state is JobState.FAILED and job.start_time_s is None
        # Capacity never comes back: the job still cannot fit, so the
        # supervisor must leave it failed rather than resubmit-thrash.
        sup.sweep()
        assert job.state is JobState.FAILED
        assert sup.repairs == []

    def test_reinstall_failed_node(self, littlefe_machine):
        journal = Journal()
        installer = RocksInstaller(littlefe_machine, journal=journal)
        victim = littlefe_machine.compute_nodes[0]
        installer.inject_kickstart_crash(victim.mac_address)
        cluster = installer.run(continue_on_error=True)
        failed = [r for r in cluster.rocksdb.compute_hosts()
                  if r.state is InstallState.FAILED]
        assert len(failed) == 1
        kernel = SimKernel(seed=0)
        sup = Supervisor(kernel, installer=installer, cluster=cluster,
                         machine=littlefe_machine)
        repairs = sup.sweep()
        assert [r.action for r in repairs] == ["reinstall.node"]
        assert repairs[0].ok
        assert all(r.state is InstallState.INSTALLED
                   for r in cluster.rocksdb.compute_hosts())
        assert kernel.trace.count("recover.reinstall") == 1

    def test_state_dict_is_canonical_jsonable(self, littlefe_machine):
        kernel, scheduler = _mini_stack(littlefe_machine)
        sup = Supervisor(kernel, scheduler=scheduler)
        scheduler.crash_node(littlefe_machine.compute_nodes[0].name,
                             reason="test")
        sup.sweep()
        canonical_json(sup.state_dict())  # must not raise


# --- the acceptance scenario: crash, resume, byte-identical ---------------------


class TestCrashResumeAcceptance:
    def test_headnode_crash_resume_matches_uninterrupted_run(self):
        machine = CLUSTERS["littlefe"]()
        plan = _crash_plan(machine, at_s=1200.0)
        config = {"seed": 3, "plan": plan.to_dict()}

        # The reference: identical plan, crash disarmed (same event
        # sequence, no raise).
        baseline = ChaosWorld({**config, "crash_armed": False})
        baseline.run()
        expected = baseline.kernel.trace.to_jsonl()
        assert baseline.result().report.ok

        # The crashing run, checkpointing as it goes.
        world = ChaosWorld(config)
        manager = CheckpointManager(world, every=25)
        with pytest.raises(HeadnodeCrashError):
            while world.step():
                manager.maybe_capture()
        assert manager.latest is not None

        # Resume from the last checkpoint with the crash disarmed.
        resumed = CheckpointManager.restore(manager.latest, crash_armed=False)
        resumed.run()
        assert resumed.kernel.trace.to_jsonl() == expected
        report = resumed.result().report
        assert report.ok, report.violations
        # The disarmed crash still emits its fault.inject marker.
        assert report.faults_injected == 6

    def test_crash_mid_mirror_sync_leaves_recoverable_journal(self):
        machine = CLUSTERS["littlefe"]()
        plan = _crash_plan(machine, at_s=25.0)   # inside the sync window
        world = ChaosWorld({"seed": 3, "plan": plan.to_dict()})
        with pytest.raises(HeadnodeCrashError):
            world.run()
        (txn,) = world.journal.open_txns("mirror.sync")
        # The mirror resync is idempotent: recovery mode is replay.
        resolved = recover_incomplete(
            world.journal,
            {"mirror.sync": RecoveryHandler("replay", redo=lambda t: None)},
        )
        assert resolved == [txn]
        assert world.journal.open_txns() == []

    def test_supervisor_repairs_appear_in_chaos_trace(self):
        from repro.faults.chaos import run_chaos

        run = run_chaos(seed=0, cluster="littlefe")
        assert run.report.ok
        assert run.report.repairs >= 1
        kinds = {e.kind for e in run.kernel.trace.events}
        assert any(k.startswith("recover.") for k in kinds)
        # Audit green with zero open journal transactions.
        assert run.journal.open_txns() == []

    def test_cli_crash_checkpoint_resume_cycle(self, tmp_path, capsys):
        from repro.faults.__main__ import main

        ckpt = tmp_path / "chaos.ckpt"
        resumed = tmp_path / "resumed.jsonl"
        baseline = tmp_path / "baseline.jsonl"
        assert main([
            "--seed", "3", "--checkpoint-every", "50",
            "--checkpoint-path", str(ckpt), "--crash-at", "1800", "--quiet",
        ]) == 3
        err = capsys.readouterr().err
        assert "CRASH" in err and "resume with --resume" in err
        assert ckpt.exists()
        assert main([
            "--seed", "3", "--checkpoint-path", str(ckpt), "--resume",
            "--trace", str(resumed), "--quiet",
        ]) == 0
        assert main([
            "--seed", "3", "--crash-at", "1800", "--no-crash",
            "--trace", str(baseline), "--quiet",
        ]) == 0
        assert resumed.read_bytes() == baseline.read_bytes()

    def test_cli_flag_validation(self, capsys):
        from repro.faults.__main__ import main

        assert main(["--resume"]) == 2
        assert main(["--crash-at", "100", "--check-determinism"]) == 2
        assert main(["--checkpoint-every", "0"]) == 2

"""Known-bad fixture: mutator skips the epoch bump (SL201).

``PackageIndex`` speaks the epoch protocol (``install`` bumps), so every
path that mutates an indexed field must either bump, sync a validity
marker, or raise.  ``sneaky_remove`` and the else-branch of
``maybe_install`` do none of those.
"""


class PackageIndex:
    def __init__(self):
        self._by_name = {}
        self._epoch = 0

    def install(self, name, pkg):
        self._by_name[name] = pkg
        self._epoch += 1

    def sneaky_remove(self, name):  # SL201: mutates, never bumps
        del self._by_name[name]

    def maybe_install(self, name, pkg, force):
        self._by_name[name] = pkg
        if force:
            self._epoch += 1
        # SL201: the not-force path falls through with the bump pending

"""Chaos-run CLI: replay a fault plan against a simulated cluster.

::

    python -m repro.faults                         # built-in demo plan, littlefe
    python -m repro.faults --cluster limulus --seed 7
    python -m repro.faults --plan plans/crash.json --trace out.jsonl
    python -m repro.faults --check-determinism     # run twice, diff traces

Exits non-zero when any invariant is violated or (with
``--check-determinism``) when two same-seed runs diverge byte-for-byte.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from ..errors import ReproError
from .chaos import CLUSTERS, run_chaos
from .plan import FaultPlan


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Replay a fault plan against a simulated cluster "
        "and audit invariants.",
    )
    parser.add_argument(
        "--plan", type=pathlib.Path, default=None,
        help="JSON fault plan (default: built-in two-node-crash demo)",
    )
    parser.add_argument(
        "--cluster", choices=sorted(CLUSTERS), default="littlefe",
        help="which reference machine to build (default: littlefe)",
    )
    parser.add_argument("--seed", type=int, default=0, help="kernel RNG seed")
    parser.add_argument(
        "--jobs", type=int, default=12, help="workload size (default: 12)"
    )
    parser.add_argument(
        "--trace", type=pathlib.Path, default=None,
        help="write the JSONL trace here",
    )
    parser.add_argument(
        "--check-determinism", action="store_true",
        help="run the scenario twice and require byte-identical traces",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the report"
    )
    args = parser.parse_args(argv)

    try:
        plan = FaultPlan.load(args.plan) if args.plan is not None else None
        run = run_chaos(
            plan, seed=args.seed, cluster=args.cluster, job_count=args.jobs
        )
    except (ReproError, OSError, ValueError) as exc:
        # OSError: unreadable --plan path; ValueError: malformed JSON.
        print(f"chaos run failed: {exc}", file=sys.stderr)
        return 2

    if args.trace is not None:
        args.trace.write_text(run.jsonl)

    if not args.quiet:
        print(
            f"chaos: cluster={args.cluster} seed={args.seed} "
            f"events={run.kernel.events_processed} "
            f"t_end={run.kernel.now_s:.0f}s"
        )
        print(run.report.render())

    status = 0 if run.report.ok else 1

    if args.check_determinism:
        rerun = run_chaos(
            FaultPlan.load(args.plan) if args.plan is not None else None,
            seed=args.seed, cluster=args.cluster, job_count=args.jobs,
        )
        if rerun.jsonl != run.jsonl:
            print(
                "determinism check FAILED: same seed produced different "
                "traces", file=sys.stderr,
            )
            status = 1
        elif not args.quiet:
            print(
                f"determinism check: OK "
                f"({len(run.jsonl.encode())} bytes, both runs identical)"
            )

    return status


if __name__ == "__main__":
    sys.exit(main())

"""The analysis driver: run every pass, collect, filter, and render.

:func:`analyze` is the single entry point: definition in,
:class:`AnalysisResult` out.  The engine owns cross-cutting concerns the
passes should not care about — per-rule enable/disable, baseline
suppression, deterministic ordering, text/JSON rendering, and the exit-code
contract CI gates on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from .diagnostic import Diagnostic, Severity
from .registry import RULES, AnalysisConfig, Baseline
from .spec import ClusterDefinition
from . import passes as _passes

__all__ = ["AnalysisResult", "analyze", "ANALYSIS_SCHEMA"]

#: Schema tag for JSON output; bump only on incompatible change.
ANALYSIS_SCHEMA = "repro.analyze/v1"

#: Ordered (subsystem, pass) list — order is part of the output contract.
_PASS_ORDER: list[tuple[str, Callable]] = [
    ("hardware", _passes.hardware.run),
    ("network", _passes.network.run),
    ("kickstart", _passes.kickstart.run),
    ("repo", _passes.repos.run),
    ("rpm", _passes.rpmdeps.run),
    ("scheduler", _passes.scheduler.run),
]


@dataclass
class AnalysisResult:
    """Everything one run of the analyzer found."""

    definition_name: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    fail_on: Severity = Severity.ERROR

    # -- queries -----------------------------------------------------------

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        return self.by_severity(Severity.INFO)

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    @property
    def is_clean(self) -> bool:
        return not self.diagnostics

    @property
    def failed(self) -> bool:
        """True if any kept diagnostic is at/above the failure threshold."""
        return any(d.severity.at_least(self.fail_on) for d in self.diagnostics)

    @property
    def exit_code(self) -> int:
        """0 = gate passes, 1 = findings at/above the threshold."""
        return 1 if self.failed else 0

    # -- rendering ---------------------------------------------------------

    def summary_line(self) -> str:
        counts = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )
        if self.suppressed:
            counts += f", {len(self.suppressed)} baseline-suppressed"
        return f"{self.definition_name}: {counts}"

    def render_text(self) -> str:
        lines = [self.summary_line()]
        lines += [d.render() for d in self.diagnostics]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-stable document (schema documented in docs/ANALYZE.md)."""
        return {
            "schema": ANALYSIS_SCHEMA,
            "definition": self.definition_name,
            "fail_on": self.fail_on.value,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
                "info": len(self.infos),
                "suppressed": len(self.suppressed),
            },
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def analyze(
    definition: ClusterDefinition,
    *,
    config: AnalysisConfig | None = None,
    baseline: Baseline | None = None,
) -> AnalysisResult:
    """Run every registered pass over ``definition``.

    ``config`` selects rules and the failure threshold; ``baseline`` moves
    known findings out of the report (they remain visible in
    ``result.suppressed`` and the JSON document).
    """
    config = config or AnalysisConfig()
    collected: list[Diagnostic] = []

    for subsystem, run_pass in _PASS_ORDER:

        def emit(
            code: str,
            message: str,
            *,
            location: str = "",
            severity: Severity | None = None,
            hint: str | None = None,
            _subsystem: str = subsystem,
        ) -> None:
            rule = RULES.get(code)
            if not config.is_enabled(code):
                return
            collected.append(
                Diagnostic(
                    code=code,
                    severity=severity or rule.severity,
                    message=message,
                    subsystem=rule.subsystem or _subsystem,
                    location=location,
                    hint=rule.hint if hint is None else hint,
                )
            )

        run_pass(definition, emit)

    collected.sort(key=lambda d: d.sort_key)
    if baseline is not None:
        kept, suppressed = baseline.split(collected)
    else:
        kept, suppressed = collected, []
    return AnalysisResult(
        definition_name=definition.name,
        diagnostics=kept,
        suppressed=suppressed,
        fail_on=config.fail_on,
    )

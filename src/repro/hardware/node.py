"""Assembled compute/head nodes.

A :class:`Node` is a validated assembly of board + CPU + DIMMs + storage +
cooler (+ optionally its own PSU, as in the modified LittleFe).  Validation
happens eagerly in :func:`assemble_node`, so any :class:`Node` object you can
hold is a physically buildable machine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import AssemblyError
from .cooling import CoolerModel, check_cooler_fit
from .cpu import CpuModel
from .gpu import GpuModel
from .memory import DimmModel
from .motherboard import MotherboardModel
from .nic import NicModel
from .power import PsuModel, check_budget, total_draw
from .storage import MountKind, StorageModel

__all__ = ["Node", "assemble_node", "NodeRole"]


class NodeRole:
    """Role constants; Rocks distinguishes the frontend from compute nodes."""

    FRONTEND = "frontend"
    COMPUTE = "compute"


_node_serial = itertools.count(1)


@dataclass
class Node:
    """A fully assembled node.

    Construct via :func:`assemble_node`, which enforces the physical rules;
    the attributes here are plain data.  ``psu`` is ``None`` when the node is
    powered by a chassis-level supply (historical LittleFe, Limulus).
    """

    name: str
    role: str
    board: MotherboardModel
    cpu: CpuModel
    dimms: tuple[DimmModel, ...]
    storage: tuple[StorageModel, ...]
    cooler: CoolerModel | None
    psu: PsuModel | None
    gpus: tuple[GpuModel, ...] = ()
    mac_address: str = ""
    powered_on: bool = True

    def __post_init__(self) -> None:
        if not self.mac_address:
            # Deterministic locally administered MAC derived from a serial.
            serial = next(_node_serial)
            self.mac_address = "02:xc:bc:%02x:%02x:%02x" % (
                (serial >> 16) & 0xFF,
                (serial >> 8) & 0xFF,
                serial & 0xFF,
            )

    # -- derived characteristics ------------------------------------------

    @property
    def cores(self) -> int:
        """Physical cores in the node (single socket in all paper machines)."""
        return self.cpu.cores

    @property
    def clock_ghz(self) -> float:
        """CPU base clock."""
        return self.cpu.clock_ghz

    @property
    def memory_bytes(self) -> int:
        """Total installed RAM."""
        return sum(d.capacity_bytes for d in self.dimms)

    @property
    def storage_bytes(self) -> int:
        """Total installed storage (0 for diskless nodes)."""
        return sum(s.capacity_bytes for s in self.storage)

    @property
    def diskless(self) -> bool:
        """True if the node has no local drive (Limulus compute nodes)."""
        return not self.storage

    @property
    def nics(self) -> tuple[NicModel, ...]:
        """The node's network interfaces (all on-board in the paper builds)."""
        return self.board.nics

    @property
    def dual_homed_capable(self) -> bool:
        """True if the node can front two networks (head-node requirement)."""
        return self.board.dual_homed_capable

    @property
    def rpeak_gflops(self) -> float:
        """Theoretical peak of this node (CPU plus any accelerators)."""
        return self.cpu.rpeak_gflops + sum(g.rpeak_gflops for g in self.gpus)

    @property
    def draw_watts(self) -> float:
        """Worst-case component power draw of this node (at the DC rail)."""
        parts = [self.cpu.tdp_watts, self.board.power_watts]
        parts += [d.power_watts for d in self.dimms]
        parts += [s.power_watts for s in self.storage]
        parts += [n.power_watts for n in self.board.nics]
        parts += [g.tdp_watts for g in self.gpus]
        if self.cooler is not None:
            parts.append(self.cooler.power_watts)
        return total_draw(parts)

    @property
    def idle_watts(self) -> float:
        """Approximate idle draw: boards and fans stay on, CPU drops to ~30 %."""
        return self.draw_watts - self.cpu.tdp_watts * 0.7

    @property
    def price_usd(self) -> float:
        """Sum of component street prices."""
        total = self.board.price_usd + self.cpu.price_usd
        total += sum(d.price_usd for d in self.dimms)
        total += sum(s.price_usd for s in self.storage)
        total += sum(g.price_usd for g in self.gpus)
        if self.cooler is not None:
            total += self.cooler.price_usd
        if self.psu is not None:
            total += self.psu.price_usd
        return total

    def describe(self) -> str:
        """One-line human description used by the chassis renderer."""
        disk = "diskless" if self.diskless else f"{self.storage_bytes // 10**9}GB disk"
        return (
            f"{self.name}: {self.cpu.model} ({self.cores}c @ "
            f"{self.clock_ghz:g}GHz), {self.memory_bytes // 1024**3}GiB RAM, {disk}"
        )


def assemble_node(
    name: str,
    *,
    role: str,
    board: MotherboardModel,
    cpu: CpuModel,
    dimms: tuple[DimmModel, ...],
    storage: tuple[StorageModel, ...] = (),
    cooler: CoolerModel | None = None,
    psu: PsuModel | None = None,
    gpus: tuple[GpuModel, ...] = (),
) -> Node:
    """Assemble and validate a node.

    Enforced rules (each mirrors a constraint the paper discusses):

    * socketed CPUs must match the board socket; system-on-board boards
      (``board.socket is None``) accept only their soldered CPU model;
    * DIMM count must not exceed the board's slots;
    * board-mounted (mSATA) drives must not exceed the board's mSATA slots,
      chassis drives must not exceed SATA ports;
    * a socketed CPU needs a cooler, and the cooler must clear the board's
      height limit and the CPU's TDP (:func:`check_cooler_fit`);
    * a per-node PSU, when present, must carry the node's draw with headroom;
    * a frontend node must be dual-homed capable.
    """
    if role not in (NodeRole.FRONTEND, NodeRole.COMPUTE):
        raise AssemblyError(f"{name}: unknown node role {role!r}")

    if board.socket is None:
        # System-on-board: the CPU is part of the board; accept only a CPU
        # marked with a BGA-style socket (soldered) to keep models honest.
        if not cpu.socket.startswith("FCBGA"):
            raise AssemblyError(
                f"{name}: board {board.model!r} has a soldered CPU; cannot "
                f"install socketed {cpu.model!r}"
            )
    elif cpu.socket != board.socket:
        raise AssemblyError(
            f"{name}: CPU {cpu.model!r} is {cpu.socket} but board "
            f"{board.model!r} is {board.socket}"
        )

    if not dimms:
        raise AssemblyError(f"{name}: a node needs at least one DIMM")
    if len(dimms) > board.dimm_slots:
        raise AssemblyError(
            f"{name}: {len(dimms)} DIMMs exceed the {board.dimm_slots} slots "
            f"on {board.model!r}"
        )

    board_drives = [s for s in storage if s.mount is MountKind.BOARD]
    chassis_drives = [s for s in storage if s.mount is MountKind.CHASSIS]
    if len(board_drives) > board.msata_slots:
        raise AssemblyError(
            f"{name}: {len(board_drives)} mSATA drives exceed the "
            f"{board.msata_slots} mSATA slots on {board.model!r}"
        )
    if len(chassis_drives) > board.sata_ports:
        raise AssemblyError(
            f"{name}: {len(chassis_drives)} SATA drives exceed the "
            f"{board.sata_ports} SATA ports on {board.model!r}"
        )

    needs_cooler = board.socket is not None
    if needs_cooler and cooler is None:
        raise AssemblyError(
            f"{name}: socketed CPU {cpu.model!r} requires a cooler"
        )
    if cooler is not None:
        check_cooler_fit(cooler, cpu, board, what=name)

    node = Node(
        name=name,
        role=role,
        board=board,
        cpu=cpu,
        dimms=tuple(dimms),
        storage=tuple(storage),
        cooler=cooler,
        psu=psu,
        gpus=tuple(gpus),
    )

    if psu is not None:
        check_budget(psu, node.draw_watts, what=name)

    if role == NodeRole.FRONTEND and not node.dual_homed_capable:
        raise AssemblyError(
            f"{name}: a frontend must be dual-homed (public + cluster "
            f"network) but {board.model!r} has {board.nic_count} NIC(s)"
        )

    return node

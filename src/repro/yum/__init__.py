"""The Yum layer: repositories, .repo configuration, priorities, dependency
resolution, the client verbs, update notification, and mirroring.

XNIT *is* a yum repository plus a documented workflow (Section 3); this
package makes that workflow executable.
"""

from .client import UpdateInfo, YumClient
from .groups import GroupCatalog, PackageGroup, groupinstall
from .depsolver import Resolution, best_provider, resolve_install, resolve_update
from .mirror import MirrorLink, RepoMirror, SyncStats
from .repoconfig import (
    XSEDE_REPO_STANZA,
    RepoStanza,
    parse_repo_file,
    render_repo_file,
)
from .repository import DEFAULT_PRIORITY, Repository, RepoSet
from .updatenotifier import (
    AutoApplyPolicy,
    NotifyPolicy,
    StagedRollout,
    UpdateReport,
)

__all__ = [
    "Repository",
    "RepoSet",
    "DEFAULT_PRIORITY",
    "RepoStanza",
    "parse_repo_file",
    "render_repo_file",
    "XSEDE_REPO_STANZA",
    "Resolution",
    "resolve_install",
    "resolve_update",
    "best_provider",
    "YumClient",
    "UpdateInfo",
    "PackageGroup",
    "GroupCatalog",
    "groupinstall",
    "NotifyPolicy",
    "AutoApplyPolicy",
    "StagedRollout",
    "UpdateReport",
    "MirrorLink",
    "RepoMirror",
    "SyncStats",
]

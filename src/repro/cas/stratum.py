"""The stratum hierarchy: origin catalog, replicas, and site chunk caches.

CVMFS's deployment shape, applied to package delivery:

* :class:`Stratum0` — the origin.  It owns the catalog: an append-only
  run of *generations*, each mapping NEVRA → :class:`PackageManifest`.
  Publishing a release is a **transactional catalog flip** journaled
  through :mod:`repro.recovery` (intent → retain chunks + append
  generation → applied → commit), so a crash mid-publish leaves an open
  journal transaction that :func:`recover_stratum0` rolls back — the
  half-published generation vanishes, refcounts and all.  Rollback is a
  *new* generation pointing at the previous content (Guix-style: the
  serial only ever moves forward, which is what lets downstream caches
  keep their monotonic release protocol).
* :class:`Stratum1` — a full replica.  :meth:`Stratum1.replicate` moves
  only the chunks the replica does not already hold — the delta is
  *missing chunks*, not missing NEVRAs — and an interrupted replication
  keeps everything that landed, so the retry resumes at chunk
  granularity.
* :class:`SiteChunkCache` — the campus tier.  It holds whatever chunks
  local installs have pulled (``_chunk_cache``), fetches misses from its
  upstream on first reference, and can be seeded for free by a
  :class:`~repro.repod.SiteProxy` that already paid to move a package
  over its uplink (:meth:`SiteChunkCache.ingest_package`).

Chunks are content-addressed, so a release never *invalidates* cached
chunks — the ``_chunk_epoch`` marker records the newest origin serial the
cache has heard of (the simlint SL202 validity marker), and only catalog
lookups go stale, never content.

All transfer time is spent on the shared simulation kernel; every tier
traces its traffic as ``cas.*`` events.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CasError, FaultError
from ..faults.retry import RetryPolicy, call_with_retry
from ..rpm.package import Package
from ..sim import SimKernel
from ..yum.mirror import MirrorLink
from .chunks import Chunk, ChunkingPolicy, PackageManifest
from .store import ChunkStore

__all__ = [
    "PublishStats",
    "ReplicateStats",
    "ChunkFetchStats",
    "Stratum0",
    "Stratum1",
    "SiteChunkCache",
    "recover_stratum0",
]


@dataclass
class PublishStats:
    """One catalog flip's accounting."""

    serial: int
    packages: int
    chunks: int       # chunks referenced by the new generation
    new_chunks: int   # chunks the store did not already hold
    nbytes: int       # bytes those new chunks added (the dedup delta)


@dataclass
class ReplicateStats:
    """One replication pass's accounting."""

    serial: int
    chunks: int    # chunks transferred (the missing delta)
    nbytes: int
    skipped: bool = False  # catalog already current; nothing to do


@dataclass
class ChunkFetchStats:
    """One lazy fetch's accounting at one tier."""

    artifact: str
    chunks: int      # chunks requested
    hit_chunks: int  # served from this tier's holdings
    nbytes: int      # bytes pulled from upstream (the tier's WAN cost)


class Stratum0:
    """The origin: generation catalog + retained chunk store."""

    def __init__(
        self,
        name: str,
        *,
        kernel: SimKernel | None = None,
        journal=None,
        policy: ChunkingPolicy | None = None,
    ) -> None:
        self.name = name
        self.kernel = kernel if kernel is not None else SimKernel()
        #: optional write-ahead :class:`~repro.recovery.Journal`: each
        #: publish (and rollback — also a flip) is a ``cas.publish``
        #: transaction, so a crash mid-flip is recoverable.
        self.journal = journal
        self.policy = policy if policy is not None else ChunkingPolicy()
        self.store = ChunkStore(f"{name}-store")
        #: serial -> generation catalog (NEVRA -> manifest); generation 0
        #: is the empty pre-release catalog.
        self._catalogs: dict[int, dict[str, PackageManifest]] = {0: {}}
        self.serial = 0

    # -- catalog reads ---------------------------------------------------------

    @property
    def catalog(self) -> dict[str, PackageManifest]:
        """The current generation's catalog (NEVRA -> manifest)."""
        return self._catalogs[self.serial]

    def catalog_at(self, serial: int) -> dict[str, PackageManifest]:
        gen = self._catalogs.get(serial)
        if gen is None:
            raise CasError(
                f"stratum0 {self.name}: generation {serial} unknown "
                f"(pruned or never published)"
            )
        return gen

    def manifest_for(self, nevra: str) -> PackageManifest:
        manifest = self.catalog.get(nevra)
        if manifest is None:
            raise CasError(
                f"stratum0 {self.name}: {nevra} not in generation {self.serial}"
            )
        return manifest

    @property
    def generations(self) -> list[int]:
        return sorted(self._catalogs)

    # -- the transactional flip ------------------------------------------------

    def _flip(self, catalog: dict[str, PackageManifest], meta: str) -> PublishStats:
        """Append ``catalog`` as the next generation (journaled, atomic)."""
        next_serial = self.serial + 1
        txn = (
            self.journal.begin("cas.publish", catalog=self.name, note=meta)
            if self.journal is not None
            else None
        )
        flip_op = (
            self.journal.intent(
                txn, "flip", serial=next_serial, nevras=sorted(catalog)
            )
            if txn is not None
            else None
        )
        new_chunks = 0
        nbytes = 0
        total = 0
        for nevra in sorted(catalog):
            manifest = catalog[nevra]
            total += len(manifest.chunks)
            for chunk in manifest.chunks:
                if not self.store.has(chunk.digest):
                    new_chunks += 1
                    nbytes += chunk.size
            self.store.retain(manifest)
        self._catalogs[next_serial] = catalog
        self.serial = next_serial
        if txn is not None:
            self.journal.applied(txn, flip_op)
            self.journal.commit(txn)
        return PublishStats(
            serial=next_serial,
            packages=len(catalog),
            chunks=total,
            new_chunks=new_chunks,
            nbytes=nbytes,
        )

    def publish(self, packages: list[Package]) -> PublishStats:
        """Flip the catalog to a new generation holding ``packages``.

        The whole release is chunked and retained before the flip lands;
        the chunk store deduplicates, so a version bump only adds the
        delta chunks.
        """
        catalog = {p.nevra: self.policy.manifest(p) for p in packages}
        stats = self._flip(catalog, "publish")
        self.kernel.trace.emit(
            "cas.publish", t_s=self.kernel.now_s, subsystem="cas",
            catalog=self.name, serial=stats.serial, packages=stats.packages,
            chunks=stats.chunks, new_chunks=stats.new_chunks,
            nbytes=stats.nbytes,
        )
        return stats

    def rollback(self) -> PublishStats:
        """Revert to the previous generation's content — as a *new* one.

        The serial moves forward (Guix generations, not git reset): the
        new generation holds the old content, so downstream caches see a
        normal monotonic release and their content-addressed chunks for
        it are already warm.
        """
        if self.serial == 0:
            raise CasError(
                f"stratum0 {self.name}: nothing published, nothing to roll back"
            )
        restored = self.serial - 1
        if restored not in self._catalogs:
            raise CasError(
                f"stratum0 {self.name}: generation {restored} was pruned; "
                f"cannot roll back past it"
            )
        stats = self._flip(dict(self._catalogs[restored]), "rollback")
        self.kernel.trace.emit(
            "cas.rollback", t_s=self.kernel.now_s, subsystem="cas",
            catalog=self.name, serial=stats.serial, restored=restored,
        )
        return stats

    def prune(self, *, keep: int = 2) -> tuple[int, int, int]:
        """Drop all but the newest ``keep`` generations and collect garbage.

        Returns (generations dropped, chunks evicted, bytes freed).  This
        is where a refcount leak would surface: a generation whose pins
        were double-counted leaves its chunks uncollectable forever.
        """
        if keep < 1:
            raise CasError(f"must keep at least one generation, got {keep}")
        serials = sorted(self._catalogs)
        doomed = serials[:-keep] if len(serials) > keep else []
        for serial in doomed:
            gen = self._catalogs.pop(serial)
            for nevra in sorted(gen):
                self.store.release(gen[nevra])
        evicted, freed = self.store.gc()
        return len(doomed), evicted, freed

    def _undo_flip(self, serial: int) -> None:
        """Recovery: make a half-published generation not-have-happened."""
        gen = self._catalogs.pop(serial)
        for nevra in sorted(gen):
            self.store.release(gen[nevra])
        self.serial = max(self._catalogs)
        self.store.gc()

    def live_manifests(self) -> list[PackageManifest]:
        """Every retained manifest, one entry per generation referencing
        it — the expected-refcount input for the store audit."""
        out = []
        for serial in sorted(self._catalogs):
            gen = self._catalogs[serial]
            for nevra in sorted(gen):
                out.append(gen[nevra])
        return out


def recover_stratum0(journal, s0: Stratum0) -> list:
    """Resolve open ``cas.publish`` transactions after a crash.

    A crash between intent and commit may have left the new generation
    half-landed (catalog appended, chunks retained, commit never written).
    Each open transaction's flip is undone — generation removed, pins
    released, orphaned chunks collected — so the catalog clients see is
    exactly the last *committed* generation.  Returns the transactions
    rolled back.
    """
    from ..recovery.journal import OpState

    resolved = []
    for txn in journal.open_txns("cas.publish"):
        if txn.meta.get("catalog") != s0.name:
            continue
        for op in reversed(txn.ops):
            if op.state is OpState.UNDONE:
                continue
            serial = op.payload.get("serial")
            if (
                serial is not None
                and serial == s0.serial
                and serial in s0._catalogs
            ):
                s0._undo_flip(serial)
            journal.undone(txn, op)
        journal.rolled_back(txn)
        resolved.append(txn)
    return resolved


class Stratum1:
    """A full replica of one stratum-0, synced at chunk granularity."""

    def __init__(
        self,
        name: str,
        origin: Stratum0,
        link: MirrorLink,
        *,
        kernel: SimKernel | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.name = name
        self.origin = origin
        self.link = link
        self.kernel = kernel if kernel is not None else origin.kernel
        self.retry = retry
        self.policy = origin.policy
        self.store = ChunkStore(f"{name}-store")
        #: the replicated catalog (NEVRA -> manifest), valid for origin
        #: serial ``_catalog_epoch`` — the SL202 validity marker.
        self._catalog_cache: dict[str, PackageManifest] = {}
        self._catalog_epoch = -1  # -1: never replicated
        #: manifests the current replicated generation pins in the store
        self._retained: list[PackageManifest] = []
        self._interruptions_pending = 0
        self.replicate_history: list[ReplicateStats] = []

    # -- fault injection -------------------------------------------------------

    def inject_interruptions(self, count: int) -> None:
        """Fail the next ``count`` replication passes mid-transfer; the
        chunks that landed stay put, so the retry resumes the delta."""
        if count < 0:
            raise CasError(f"interruption count must be non-negative, got {count}")
        self._interruptions_pending = count

    # -- replication -----------------------------------------------------------

    def _spend(self, seconds: float) -> None:
        self.kernel.run_until(self.kernel.now_s + seconds)

    @property
    def is_current(self) -> bool:
        return self._catalog_epoch == self.origin.serial

    @property
    def catalog(self) -> dict[str, PackageManifest]:
        """The replicated catalog (may lag the origin until replicate())."""
        return self._catalog_cache

    def replicate(self) -> ReplicateStats:
        """Bring the replica to the origin's generation, moving only the
        chunks it does not already hold.

        With a :class:`RetryPolicy`, interruptions retry with backoff and
        every retry resumes from the chunks already landed.
        """
        if self.retry is None:
            return self._replicate_once()
        return call_with_retry(
            self.kernel,
            self._replicate_once,
            policy=self.retry,
            op=f"cas.replicate:{self.name}",
            subsystem="cas",
            retry_on=(CasError, FaultError),
        )

    def _replicate_once(self) -> ReplicateStats:
        # Catalog probe always costs one round trip.
        self._spend(self.link.transfer_time_s(16 * 1024))
        target_serial = self.origin.serial
        if self._catalog_epoch == target_serial:
            stats = ReplicateStats(
                serial=target_serial, chunks=0, nbytes=0, skipped=True
            )
            self.replicate_history.append(stats)
            self.kernel.trace.emit(
                "cas.replicate", t_s=self.kernel.now_s, subsystem="cas",
                replica=self.name, serial=target_serial, chunks=0, nbytes=0,
                skipped=True,
            )
            return stats
        target = self.origin.catalog_at(target_serial)
        ordered = [target[nevra] for nevra in sorted(target)]
        missing = self.store.missing_of(
            [c for manifest in ordered for c in manifest.chunks]
        )
        if self._interruptions_pending > 0:
            self._interruptions_pending -= 1
            landed = missing[: len(missing) // 2]
            nbytes = 0
            for chunk in landed:
                self.store.put(chunk)
                nbytes += chunk.size
            if nbytes:
                self._spend(self.link.transfer_time_s(nbytes))
            raise CasError(
                f"stratum1 {self.name}: replication interrupted after "
                f"{len(landed)}/{len(missing)} chunk(s); landed chunks kept "
                f"for resume"
            )
        nbytes = 0
        for chunk in missing:
            self.store.put(chunk)
            nbytes += chunk.size
        if missing:
            self._spend(self.link.transfer_time_s(nbytes))
        # Flip: pin the new generation before unpinning the old one, so a
        # chunk shared by both is never transiently collectable.
        for manifest in ordered:
            self.store.retain(manifest)
        for manifest in self._retained:
            self.store.release(manifest)
        self._retained = ordered
        self._catalog_cache = dict(target)
        self._catalog_epoch = target_serial
        stats = ReplicateStats(
            serial=target_serial, chunks=len(missing), nbytes=nbytes
        )
        self.replicate_history.append(stats)
        self.kernel.trace.emit(
            "cas.replicate", t_s=self.kernel.now_s, subsystem="cas",
            replica=self.name, serial=target_serial, chunks=len(missing),
            nbytes=nbytes, skipped=False,
        )
        return stats

    # -- the lazy downstream pull path -----------------------------------------

    def fetch_chunks(
        self, chunks: list[Chunk], *, artifact: str, requester: str = "cache"
    ) -> ChunkFetchStats:
        """Serve chunks to a downstream tier, pulling misses from the
        origin on first reference (lazy hierarchy fill)."""
        missing = self.store.missing_of(chunks)
        nbytes = 0
        for chunk in missing:
            if not self.origin.store.has(chunk.digest):
                raise CasError(
                    f"stratum1 {self.name}: chunk {chunk.short} of "
                    f"{artifact} not at origin {self.origin.name} "
                    f"(requested by {requester})"
                )
            nbytes += chunk.size
        if missing:
            self._spend(self.link.transfer_time_s(nbytes))
            for chunk in missing:
                self.store.put(chunk)
        stats = ChunkFetchStats(
            artifact=artifact,
            chunks=len(chunks),
            hit_chunks=len(chunks) - len(missing),
            nbytes=nbytes,
        )
        self.kernel.trace.emit(
            "cas.fetch", t_s=self.kernel.now_s, subsystem="cas",
            tier=self.name, artifact=artifact, chunks=stats.chunks,
            hit_chunks=stats.hit_chunks, nbytes=nbytes,
        )
        return stats

    def problems(self) -> list[str]:
        """Replica audit: retained catalog content must all be present."""
        out = self.store.refcount_problems(self._retained)
        for manifest in self._retained:
            for chunk in manifest.chunks:
                if not self.store.has(chunk.digest):
                    out.append(
                        f"stratum1 {self.name}: replicated manifest "
                        f"{manifest.nevra} missing chunk {chunk.short}"
                    )
        return out


class SiteChunkCache:
    """The campus tier: a lazy chunk cache in front of one upstream.

    Chunks are content-addressed, so :meth:`notice_release` never evicts —
    it advances ``_chunk_epoch`` (the newest origin serial this cache has
    heard of), which gates *catalog* staleness only; any chunk the new
    release still references is already warm.
    """

    def __init__(
        self,
        name: str,
        upstream: Stratum1 | None = None,
        link: MirrorLink | None = None,
        *,
        kernel: SimKernel | None = None,
        policy: ChunkingPolicy | None = None,
    ) -> None:
        if upstream is None and policy is None:
            raise CasError(
                f"site cache {name}: need an upstream or an explicit "
                f"chunking policy"
            )
        self.name = name
        self.upstream = upstream
        self.link = link if link is not None else MirrorLink(
            bandwidth_bytes_s=100 * 1024 * 1024, latency_s=0.002
        )
        if kernel is not None:
            self.kernel = kernel
        elif upstream is not None:
            self.kernel = upstream.kernel
        else:
            self.kernel = SimKernel()
        self.policy = policy if policy is not None else upstream.policy
        #: digest -> size; validity marker ``_chunk_epoch`` below (SL202).
        self._chunk_cache: dict[str, int] = {}
        self._chunk_epoch = 0
        # accounting
        self.hits = 0
        self.misses = 0
        self.hit_bytes = 0
        self.wan_bytes = 0
        self.ingested = 0

    def _spend(self, seconds: float) -> None:
        self.kernel.run_until(self.kernel.now_s + seconds)

    # -- release protocol ------------------------------------------------------

    def notice_release(self, serial: int) -> None:
        """A new origin generation exists.  Content stays; only the
        serial marker advances (and, like the proxy tier, it refuses to
        move backwards — rollback publishes forward)."""
        if serial < self._chunk_epoch:
            raise CasError(
                f"site cache {self.name}: release serial went backwards "
                f"({self._chunk_epoch} -> {serial})"
            )
        self._chunk_epoch = serial

    # -- seeding ---------------------------------------------------------------

    def ingest_package(self, pkg: Package) -> int:
        """Seed the cache from a package whose bytes already arrived by
        other means (a :class:`~repro.repod.SiteProxy` fetch paid the WAN
        cost; the chunks come along for free).  Returns chunks added."""
        added = 0
        for chunk in self.policy.manifest(pkg).chunks:
            if chunk.digest not in self._chunk_cache:
                self._chunk_cache[chunk.digest] = chunk.size
                added += 1
        self.ingested += added
        return added

    def holds(self, digest: str) -> bool:
        return digest in self._chunk_cache

    @property
    def chunk_count(self) -> int:
        return len(self._chunk_cache)

    @property
    def total_bytes(self) -> int:
        return sum(self._chunk_cache.values())

    # -- the lazy fetch path ---------------------------------------------------

    def fetch_chunks(
        self, chunks: list[Chunk], *, artifact: str, requester: str = "node"
    ) -> ChunkFetchStats:
        """Serve a chunk list: hits from the cache, misses pulled from
        upstream on first reference."""
        seen: set[str] = set()
        missing: list[Chunk] = []
        hit_chunks = 0
        for chunk in chunks:
            if self.holds(chunk.digest):
                hit_chunks += 1
                self.hit_bytes += chunk.size
            elif chunk.digest not in seen:
                seen.add(chunk.digest)
                missing.append(chunk)
        nbytes = 0
        if missing:
            if self.upstream is None:
                raise CasError(
                    f"site cache {self.name}: {len(missing)} chunk(s) of "
                    f"{artifact} not cached and no upstream to pull from"
                )
            self.upstream.fetch_chunks(
                missing, artifact=artifact, requester=self.name
            )
            nbytes = sum(c.size for c in missing)
            self._spend(self.link.transfer_time_s(nbytes))
            for chunk in missing:
                self._chunk_cache[chunk.digest] = chunk.size
        self.hits += hit_chunks
        self.misses += len(missing)
        self.wan_bytes += nbytes
        stats = ChunkFetchStats(
            artifact=artifact,
            chunks=len(chunks),
            hit_chunks=hit_chunks,
            nbytes=nbytes,
        )
        self.kernel.trace.emit(
            "cas.fetch", t_s=self.kernel.now_s, subsystem="cas",
            tier=self.name, artifact=artifact, chunks=stats.chunks,
            hit_chunks=hit_chunks, nbytes=nbytes,
        )
        return stats

    def fetch_package(
        self, pkg: Package, *, requester: str = "node"
    ) -> ChunkFetchStats:
        """Fetch every chunk of one package (manifest from the policy)."""
        manifest = self.policy.manifest(pkg)
        return self.fetch_chunks(
            list(manifest.chunks), artifact=manifest.nevra, requester=requester
        )

"""The unified parts catalogue.

A thin aggregation layer over the per-component catalogues so tools (and the
examples) can price a bill of materials by part name without knowing which
component family a part belongs to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import CatalogError
from .cooling import COOLER_CATALOG
from .cpu import CPU_CATALOG
from .memory import DIMM_CATALOG
from .motherboard import BOARD_CATALOG
from .nic import NIC_CATALOG
from .power import PSU_CATALOG
from .storage import STORAGE_CATALOG

__all__ = ["PartEntry", "all_parts", "find_part", "price_bom", "BomLine"]


@dataclass(frozen=True)
class PartEntry:
    """A catalogue row: name, family, unit price, and the model object."""

    name: str
    family: str
    price_usd: float
    model: object


def all_parts() -> dict[str, PartEntry]:
    """Every known part, keyed by its model name.

    Raises :class:`CatalogError` if two families ever claim the same model
    name — the catalogue must stay unambiguous.
    """
    families: list[tuple[str, Mapping[str, object]]] = [
        ("cpu", CPU_CATALOG),
        ("dimm", DIMM_CATALOG),
        ("storage", STORAGE_CATALOG),
        ("nic", NIC_CATALOG),
        ("board", BOARD_CATALOG),
        ("psu", PSU_CATALOG),
        ("cooler", COOLER_CATALOG),
    ]
    parts: dict[str, PartEntry] = {}
    for family, catalog in families:
        for name, model in catalog.items():
            if name in parts:
                raise CatalogError(
                    f"part name {name!r} appears in both "
                    f"{parts[name].family!r} and {family!r}"
                )
            parts[name] = PartEntry(
                name=name,
                family=family,
                price_usd=float(getattr(model, "price_usd")),
                model=model,
            )
    return parts


def find_part(name: str) -> PartEntry:
    """Look up one part across all families."""
    parts = all_parts()
    try:
        return parts[name]
    except KeyError:
        raise CatalogError(f"unknown part {name!r}") from None


@dataclass(frozen=True)
class BomLine:
    """One bill-of-materials line."""

    part: PartEntry
    quantity: int

    @property
    def extended_usd(self) -> float:
        return self.part.price_usd * self.quantity


def price_bom(items: Iterable[tuple[str, int]]) -> tuple[list[BomLine], float]:
    """Price a bill of materials given ``(part name, quantity)`` pairs.

    Returns the expanded lines and the grand total.  Unknown parts raise
    :class:`CatalogError`; non-positive quantities are rejected.
    """
    lines: list[BomLine] = []
    total = 0.0
    for name, qty in items:
        if qty <= 0:
            raise CatalogError(f"BOM quantity for {name!r} must be positive: {qty}")
        part = find_part(name)
        line = BomLine(part=part, quantity=qty)
        lines.append(line)
        total += line.extended_usd
    return lines, total

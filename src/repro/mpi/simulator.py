"""Simulated MPI: ranks on hosts, point-to-point messaging, timing.

The HPC substrate of the paper's machines is MPI over gigabit Ethernet
(Table 1's hpc roll carries openmpi/mpich2).  We model an
:class:`MpiWorld` — a set of ranks placed on the hosts of a fabric — with:

* **correctness**: :meth:`send`/:meth:`recv` move real Python payloads
  through per-(src, dst, tag) FIFO queues, so algorithms written against the
  API compute real answers;
* **timing**: every transfer is costed with the fabric's alpha-beta model
  (:class:`~repro.network.fabric.PathCost`), and ranks on the same host pay
  loopback cost only.  Times are *accounted*, not slept.

Rank clocks are :class:`~repro.sim.Timeline` objects on a
:class:`~repro.sim.SimKernel` — pass the scheduler's kernel (and anchor
``start_s`` at the job's start) to interleave MPI traffic with scheduler
and monitoring events on one timeline; every transfer publishes a
``msg.xfer`` trace event.  Without a kernel the world creates its own.

Collective algorithms live in :mod:`repro.mpi.collectives`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import MpiError
from ..network.fabric import Fabric
from ..sim import SimKernel

__all__ = ["MpiWorld", "bytes_of"]

#: payload size accounting: 8 bytes per float (MPI_DOUBLE convention)
_DOUBLE = 8


def bytes_of(data: object) -> int:
    """Approximate wire size of a payload.

    Lists/tuples of numbers are counted as doubles; bytes/str by length;
    anything else as one double.  Deterministic and cheap — this feeds the
    cost model, not a serialiser.
    """
    if isinstance(data, (bytes, bytearray)):
        return len(data)
    if isinstance(data, str):
        return len(data.encode())
    if isinstance(data, (list, tuple)):
        return sum(bytes_of(x) for x in data)
    if hasattr(data, "nbytes"):  # numpy arrays
        return int(data.nbytes)  # type: ignore[attr-defined]
    return _DOUBLE


@dataclass
class _Message:
    payload: object
    nbytes: int
    arrival_s: float


class MpiWorld:
    """A communicator: ``size`` ranks placed on fabric hosts.

    ``rank_hosts[i]`` names the host rank *i* runs on.  Several ranks may
    share a host (one per core is the usual placement).  Each rank's clock
    is a kernel timeline; sends charge the sender, receives complete at
    ``max(receiver clock, message arrival)`` — a simple but standard
    post-office timing model.  ``start_s`` anchors all rank timelines (a
    job's start time in co-simulation); :attr:`clocks` exposes absolute
    timeline values, :attr:`elapsed_s` is relative to the anchor.
    """

    def __init__(
        self,
        fabric: Fabric,
        rank_hosts: list[str],
        *,
        kernel: SimKernel | None = None,
        start_s: float | None = None,
    ) -> None:
        if not rank_hosts:
            raise MpiError("a world needs at least one rank")
        attached = set(fabric.hosts())
        for host in rank_hosts:
            if host not in attached:
                raise MpiError(f"rank host {host} is not attached to the fabric")
        self.fabric = fabric
        self.rank_hosts = list(rank_hosts)
        self.kernel = kernel if kernel is not None else SimKernel()
        self._epoch_s = self.kernel.now_s if start_s is None else start_s
        self._timelines = [
            self.kernel.timeline(f"mpi.rank{i}", start_s=self._epoch_s)
            for i in range(len(rank_hosts))
        ]
        self._queues: dict[tuple[int, int, int], deque[_Message]] = {}
        self.bytes_sent = 0
        self.message_count = 0

    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self.rank_hosts)

    @property
    def clocks(self) -> tuple[float, ...]:
        """Each rank's current (absolute) time.

        Read-only by design: local work goes through :meth:`compute`, so
        every clock mutation flows through the kernel timelines.
        """
        return tuple(t.now_s for t in self._timelines)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise MpiError(f"rank {rank} out of range 0..{self.size - 1}")

    def host_of(self, rank: int) -> str:
        """Host a rank is placed on."""
        self._check_rank(rank)
        return self.rank_hosts[rank]

    def transfer_time_s(self, src: int, dst: int, nbytes: int) -> float:
        """Pure cost query: time to move ``nbytes`` from ``src`` to ``dst``."""
        self._check_rank(src)
        self._check_rank(dst)
        cost = self.fabric.path_cost(self.host_of(src), self.host_of(dst))
        return cost.transfer_time_s(nbytes)

    # -- local work --------------------------------------------------------------

    def compute(self, rank: int, seconds: float) -> float:
        """Charge ``seconds`` of local work to one rank's timeline."""
        self._check_rank(rank)
        if seconds < 0:
            raise MpiError(f"negative compute time {seconds}")
        return self._timelines[rank].advance(seconds)

    # -- point to point ---------------------------------------------------------

    def send(self, src: int, dst: int, payload: object, *, tag: int = 0) -> float:
        """Post a message; returns the sender-side completion time.

        The sender's clock advances by the full transfer time (rendezvous
        semantics — honest for the large messages HPL exchanges).
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise MpiError("send to self: use local data instead")
        nbytes = bytes_of(payload)
        elapsed = self.transfer_time_s(src, dst, nbytes)
        depart = self._timelines[src].now_s
        arrival = depart + elapsed
        self._timelines[src].advance(elapsed)
        self._queues.setdefault((src, dst, tag), deque()).append(
            _Message(payload=payload, nbytes=nbytes, arrival_s=arrival)
        )
        self.bytes_sent += nbytes
        self.message_count += 1
        self.kernel.trace.emit(
            "msg.xfer", t_s=arrival, subsystem="mpi",
            src=src, dst=dst, nbytes=nbytes, elapsed_s=elapsed, tag=tag,
        )
        return arrival

    def recv(self, dst: int, src: int, *, tag: int = 0) -> object:
        """Receive the next queued message from ``src`` (FIFO per tag).

        Raises :class:`MpiError` if nothing has been sent — the simulation
        is deterministic, so a missing message is a program bug, not a race.
        """
        self._check_rank(src)
        self._check_rank(dst)
        queue = self._queues.get((src, dst, tag))
        if not queue:
            raise MpiError(
                f"rank {dst}: no message pending from rank {src} (tag {tag})"
            )
        message = queue.popleft()
        self._timelines[dst].meet(message.arrival_s)
        return message.payload

    def sendrecv(
        self, a: int, b: int, payload_a: object, payload_b: object, *, tag: int = 0
    ) -> tuple[object, object]:
        """Symmetric exchange between two ranks (both directions overlap, so
        both clocks advance by one transfer time, not two)."""
        na, nb = bytes_of(payload_a), bytes_of(payload_b)
        elapsed = self.transfer_time_s(a, b, max(na, nb))
        start = max(self._timelines[a].now_s, self._timelines[b].now_s)
        finish = start + elapsed
        self._timelines[a].meet(finish)
        self._timelines[b].meet(finish)
        self.bytes_sent += na + nb
        self.message_count += 2
        self.kernel.trace.emit(
            "msg.xfer", t_s=finish, subsystem="mpi",
            src=a, dst=b, nbytes=na, elapsed_s=elapsed, tag=tag,
        )
        self.kernel.trace.emit(
            "msg.xfer", t_s=finish, subsystem="mpi",
            src=b, dst=a, nbytes=nb, elapsed_s=elapsed, tag=tag,
        )
        return payload_b, payload_a  # what a receives, what b receives

    # -- synchronisation --------------------------------------------------------

    def barrier(self) -> float:
        """Synchronise all clocks to the slowest rank plus a small cost.

        Cost model: a dissemination barrier is ~ceil(log2 p) zero-byte
        rounds at worst-case latency.
        """
        import math

        worst = max(t.now_s for t in self._timelines)
        if self.size > 1:
            alpha = max(
                self.fabric.path_cost(self.host_of(0), self.host_of(r)).latency_s
                for r in range(1, self.size)
            )
            worst += math.ceil(math.log2(self.size)) * alpha
        for timeline in self._timelines:
            timeline.meet(worst)
        self.kernel.trace.emit(
            "mpi.barrier", t_s=worst, subsystem="mpi", ranks=self.size
        )
        return worst

    @property
    def elapsed_s(self) -> float:
        """Wall-clock of the slowest rank so far (relative to the anchor)."""
        return max(t.now_s for t in self._timelines) - self._epoch_s

    def reset_clocks(self) -> None:
        """Re-anchor all rank timelines and zero the traffic counters
        (between benchmark phases)."""
        for timeline in self._timelines:
            timeline.reset(self._epoch_s)
        self.bytes_sent = 0
        self.message_count = 0

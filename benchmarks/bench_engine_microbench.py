"""Engine microbenchmarks: the package-management hot paths.

Not a paper table — these keep the substrate honest as it grows: rpmvercmp
throughput, full-catalogue dependency resolution, transaction ordering, and
a complete single-host kickstart.  Regressions here would make the
cluster-scale benches (Tables 2/3, the workflows) drift.
"""

from repro.core import xsede_packages
from repro.distro import CENTOS_6_5, Host
from repro.hardware import build_littlefe_modified
from repro.rocks import base_os_packages
from repro.rpm import RpmDatabase, Transaction, rpmvercmp
from repro.yum import RepoSet, Repository, resolve_install

VERSION_PAIRS = [
    ("1.0", "1.0.1"),
    ("2.6.32-431", "2.6.32-279"),
    ("1.0~rc1", "1.0"),
    ("0.0.9", "0.0.10"),
    ("20140628", "4.6.5"),
    ("1.7.0.79", "1.7.0.65"),
] * 50


def vercmp_sweep():
    return [rpmvercmp(a, b) for a, b in VERSION_PAIRS]


def full_resolution():
    repo = Repository("xsede", priority=50)
    repo.add_all(xsede_packages())
    base = Repository("base", priority=90)
    base.add_all(base_os_packages(CENTOS_6_5))
    host = Host(build_littlefe_modified().machine.head, CENTOS_6_5)
    db = RpmDatabase(host)
    from repro.rpm import Transaction as Txn

    txn = Txn(db)
    for pkg in base_os_packages(CENTOS_6_5):
        txn.install(pkg)
    txn.commit()
    names = [p.name for p in xsede_packages()]
    return resolve_install(names, RepoSet([repo, base]), db)


def single_host_kickstart():
    host = Host(build_littlefe_modified().machine.head, CENTOS_6_5)
    db = RpmDatabase(host)
    txn = Transaction(db)
    for pkg in base_os_packages(CENTOS_6_5) + xsede_packages():
        txn.install(pkg)
    txn.commit()
    return db


def test_rpmvercmp_throughput(benchmark):
    results = benchmark(vercmp_sweep)
    assert len(results) == len(VERSION_PAIRS)
    assert results[0] == -1


def test_full_catalogue_resolution(benchmark):
    resolution = benchmark(full_resolution)
    assert len(resolution.to_install) == len(xsede_packages())


def test_single_host_kickstart(benchmark):
    db = benchmark(single_host_kickstart)
    assert db.unsatisfied_requirements() == []
    assert len(db) > 120

#!/usr/bin/env python3
"""Section 7: LittleFe and Limulus as personal research machines.

"Given the CPU modifications of LittleFe presented in this paper, it's
worth considering either system as a potential research computing resource
for an individual researcher."  This example runs the comparison a
prospective buyer would want:

1. Table 4/5 figures side by side (specs, modelled HPL, price/performance);
2. a month of one researcher's bursty workload through each machine's
   scheduler (the Limulus with its power management on);
3. a high-throughput parameter sweep through a Condor pool on the LittleFe;
4. the ownership-vs-cloud arithmetic for the same month.
"""

from repro.core import compare, crossover_utilisation
from repro.hardware import build_limulus_hpc200, build_littlefe_modified
from repro.linpack import benchmark_machine, price_performance
from repro.scheduler import ClusterResources, Job, MauiScheduler, PowerManagedScheduler


def research_month(scheduler, cores_per_job):
    """Twelve bursts over a month: the personal-cluster duty cycle."""
    for burst in range(12):
        scheduler.now_s = burst * 2.5 * 24 * 3600.0
        for i in range(3):
            scheduler.submit(
                Job(f"b{burst}-j{i}", "scientist", cores=cores_per_job,
                    walltime_limit_s=4 * 3600, runtime_s=2 * 3600)
            )
        scheduler.run_to_completion()
    return scheduler


def main() -> None:
    lf = build_littlefe_modified()
    lm = build_limulus_hpc200()

    print("=== The two deskside candidates ===")
    header = f"{'':<26}{'LittleFe':>14}{'Limulus HPC200':>16}"
    print(header)
    rows = [
        ("nodes / cores", f"{lf.machine.node_count}/{lf.machine.total_cores}",
         f"{lm.machine.node_count}/{lm.machine.total_cores}"),
        ("Rpeak (GFLOPS)", f"{lf.machine.rpeak_gflops:.1f}",
         f"{lm.machine.rpeak_gflops:.1f}"),
        ("quoted price", f"${lf.quoted_usd:,.0f}", f"${lm.quoted_usd:,.0f}"),
        ("weight (lb)", f"{lf.machine.weight_lb:.0f}", f"{lm.machine.weight_lb:.0f}"),
    ]
    for label, a, b in rows:
        print(f"{label:<26}{a:>14}{b:>16}")

    print("\n=== Modelled HPL (Table 5) ===")
    for quote, kwargs in ((lf, dict(estimate_fraction=0.75)), (lm, {})):
        report = benchmark_machine(quote.machine, **kwargs)
        pp = price_performance(report, quote.quoted_usd)
        star = "*" if report.estimated else " "
        print(f"{report.machine_name:<16} Rmax {report.rmax_gflops:7.1f}{star} "
              f"(${pp.usd_per_rmax_gflops:.0f}/GFLOPS)")

    print("\n=== A month of bursty research work ===")
    lf_sched = research_month(MauiScheduler(ClusterResources(lf.machine)), 4)
    lm_sched = research_month(
        PowerManagedScheduler(lm.machine, manage_power=True), 6
    )
    lf_done = len(lf_sched.finished)
    lm_done = len(lm_sched.finished)
    print(f"LittleFe: {lf_done} jobs completed (always-on)")
    print(f"Limulus:  {lm_done} jobs completed; power management used "
          f"{lm_sched.energy.total_kwh:.1f} kWh with "
          f"{lm_sched.energy.off_node_seconds / 3600:.0f} node-hours powered off")

    print("\n=== High-throughput sweeps (Condor on the LittleFe) ===")
    from repro.core import build_xcbc_cluster
    from repro.htc import ClassAd, HtcJob, pool_from_cluster
    from repro.rocks import optional_rolls

    cluster = build_xcbc_cluster(
        build_littlefe_modified("lf-htc").machine,
        extra_rolls=None,
    ).cluster
    # the XCBC default includes the htcondor roll
    pool = pool_from_cluster(cluster)
    for i in range(100):
        pool.submit(HtcJob(ad=ClassAd(f"param-{i}"), owner="scientist",
                           runtime_cycles=1))
    cycles = pool.run_until_drained()
    print(f"100-point parameter study drained in {cycles} negotiation cycles "
          f"on {pool.slot_count()} slots")

    print("\n=== Own or rent? ===")
    for quote, label in ((lf, "LittleFe"), (lm, "Limulus")):
        crossover = crossover_utilisation(quote.machine, quote.quoted_usd)
        month = compare(quote.machine, quote.quoted_usd, utilisation=0.30)
        winner = "own" if month.cluster_wins else "rent"
        print(f"{label}: crossover at {crossover:.0%} utilisation; at a "
              f"researcher's ~30% duty cycle: {winner} "
              f"(${month.cluster_usd:,.0f} vs cloud ${month.cloud_usd:,.0f} "
              f"over 4 years)")


def cluster_definition():
    """Both deskside machines, linted in one ``cluster-lint`` run (the CLI
    accepts a list of definitions from one file)."""
    from repro.analyze import ClusterDefinition
    from repro.scheduler import default_queue_for

    definitions = []
    for quote, label in (
        (build_littlefe_modified(), "deskside-littlefe"),
        (build_limulus_hpc200(), "deskside-limulus"),
    ):
        machine = quote.machine
        definitions.append(
            ClusterDefinition(
                name=label,
                machine=machine,
                queues=(default_queue_for(machine),),
            )
        )
    return definitions


if __name__ == "__main__":
    main()

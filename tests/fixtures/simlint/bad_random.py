"""Known-bad fixture: process-global / unseeded randomness (SL102)."""

import random

import numpy as np


def jitter():
    return random.random()  # SL102: module-level Mersenne state


def pick(options):
    random.shuffle(options)  # SL102: module-level shuffle
    return options[0]


def make_rng():
    return random.Random()  # SL102: Random() without a seed


def make_np_rng():
    return np.random.default_rng()  # SL102: default_rng() without a seed

"""Lazy fetch-on-install and the CAS confluence audit.

:class:`LazyDelivery` is what an installer plugs into: per node, it
remembers which chunks the node already holds and asks the site cache for
only the chunks a package install actually needs, on first reference.  A
node that already installed v1 of a package fetches just the delta chunks
for v2; a wave of identical nodes costs the site cache one upstream pull
for the whole wave.

:func:`cas_confluence_problems` is chaos invariant 9: serials only move
forward, hierarchy hits never exceed requests, and — given the live
components — no chunk refcount has leaked after publish/rollback/prune
churn.  With no ``cas.*`` events and no components the audit is vacuous,
so it is safe to run on every chaos trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..rpm.package import Package
from .stratum import ChunkFetchStats, SiteChunkCache, Stratum0, Stratum1

__all__ = ["DeliveryStats", "LazyDelivery", "cas_confluence_problems"]


@dataclass
class DeliveryStats:
    """Cumulative per-delivery accounting."""

    packages: int = 0
    chunks_requested: int = 0
    chunks_fetched: int = 0   # crossed the node's LAN (not already on-node)
    bytes_fetched: int = 0    # LAN bytes to nodes
    bytes_reused: int = 0     # bytes already on the node (version overlap)
    per_node: dict[str, int] = field(default_factory=dict)  # node -> packages


class LazyDelivery:
    """Chunk-level package delivery for one site's installs."""

    def __init__(self, site: SiteChunkCache) -> None:
        self.site = site
        #: node name -> digests the node already holds
        self._node_chunks: dict[str, set[str]] = {}
        self.stats = DeliveryStats()

    def fetch_package(self, node: str, pkg: Package) -> ChunkFetchStats:
        """Deliver one package to one node, moving only missing chunks.

        The site cache serves (and lazily fills) the chunks; the node's
        holdings filter out what it already has from other versions.
        """
        manifest = self.site.policy.manifest(pkg)
        held = self._node_chunks.setdefault(node, set())
        needed = []
        seen: set[str] = set()
        reused = 0
        for chunk in manifest.chunks:
            if self.node_holds(node, chunk.digest):
                reused += chunk.size
            elif chunk.digest not in seen:
                seen.add(chunk.digest)
                needed.append(chunk)
        stats = self.stats
        stats.packages += 1
        stats.chunks_requested += len(manifest.chunks)
        stats.per_node[node] = stats.per_node.get(node, 0) + 1
        if not needed:
            stats.bytes_reused += reused
            return ChunkFetchStats(
                artifact=manifest.nevra,
                chunks=len(manifest.chunks),
                hit_chunks=len(manifest.chunks),
                nbytes=0,
            )
        fetch = self.site.fetch_chunks(
            needed, artifact=manifest.nevra, requester=node
        )
        held.update(c.digest for c in needed)
        stats.chunks_fetched += len(needed)
        stats.bytes_fetched += sum(c.size for c in needed)
        stats.bytes_reused += reused
        return fetch

    def node_holds(self, node: str, digest: str) -> bool:
        """Does this node already hold a chunk (from any prior install)?"""
        return digest in self._node_chunks.get(node, ())

    def node_chunk_count(self, node: str) -> int:
        return len(self._node_chunks.get(node, ()))


def cas_confluence_problems(
    events,
    *,
    strata: Iterable[Stratum0] = (),
    replicas: Iterable[Stratum1] = (),
    caches: Iterable[SiteChunkCache] = (),
) -> list[str]:
    """Invariant 9: the content-addressed hierarchy stayed coherent.

    From the trace alone: per-catalog publish/rollback serials strictly
    increase (the forward-only release protocol every downstream tier
    depends on), per-replica replicated serials never regress, and no
    fetch reports more hits than requests.  Given live components, the
    chunk-store refcount audits run too.  Vacuous when the run never
    touched :mod:`repro.cas`.
    """
    problems: list[str] = []
    catalog_serial: dict[str, int] = {}
    replica_serial: dict[str, int] = {}
    for event in events:
        if event.kind not in ("cas.publish", "cas.rollback", "cas.replicate",
                              "cas.fetch"):
            continue
        data = event.data
        if event.kind in ("cas.publish", "cas.rollback"):
            name = data["catalog"]
            serial = data["serial"]
            last = catalog_serial.get(name)
            if last is not None and serial <= last:
                problems.append(
                    f"catalog {name}: serial did not advance "
                    f"({last} -> {serial}) at seq {event.seq}"
                )
            catalog_serial[name] = serial
        elif event.kind == "cas.replicate":
            name = data["replica"]
            serial = data["serial"]
            last = replica_serial.get(name)
            if last is not None and serial < last:
                problems.append(
                    f"replica {name}: replicated serial regressed "
                    f"({last} -> {serial}) at seq {event.seq}"
                )
            replica_serial[name] = serial
        elif event.kind == "cas.fetch":
            if data["hit_chunks"] > data["chunks"]:
                problems.append(
                    f"tier {data['tier']}: {data['hit_chunks']} hits for "
                    f"{data['chunks']} requested chunks "
                    f"({data['artifact']}) at seq {event.seq}"
                )
    for s0 in strata:
        problems.extend(s0.store.refcount_problems(s0.live_manifests()))
    for replica in replicas:
        problems.extend(replica.problems())
    for cache in caches:
        for digest in sorted(cache._chunk_cache):
            if cache._chunk_cache[digest] < 0:
                problems.append(
                    f"site cache {cache.name}: negative size for chunk "
                    f"{digest[:12]}"
                )
    return problems

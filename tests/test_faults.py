"""repro.faults: fault plans, injection, retries, and graceful degradation.

Covers the event-queue compaction regression (heavy cancel/reschedule
churn must not leak heap entries), the retry/backoff/circuit-breaker
machinery, plan parsing, scheduler/power/monitoring degradation, mirror
resilience, PXE/DHCP error enrichment, installer crash consistency
(property-based), and the whole-stack chaos acceptance scenario.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DhcpError,
    FaultError,
    NodeOfflineError,
    PxeError,
    RetryExhaustedError,
    YumError,
)
from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    call_with_retry,
)
from repro.faults.chaos import demo_plan, run_chaos
from repro.hardware import build_littlefe_modified
from repro.monitoring import Gmetad, Gmond
from repro.network.dhcp import DhcpServer
from repro.network.pxe import BootImage, PxeServer
from repro.rocks.database import InstallState
from repro.rocks.installer import RocksInstaller
from repro.rpm.package import Package
from repro.scheduler import ClusterResources, Job, JobState, MauiScheduler
from repro.scheduler.power_mgmt import PowerManagedScheduler
from repro.sim import SimKernel
from repro.yum.mirror import MirrorLink, RepoMirror
from repro.yum.repository import Repository


def _job(name, cores, runtime_s=600.0, **kw):
    return Job(name, "chaos", cores=cores, walltime_limit_s=7200.0,
               runtime_s=runtime_s, **kw)


class TestEventQueueCompaction:
    """Satellite (a): lazy cancellation must not leak heap entries."""

    def test_churn_keeps_heap_bounded(self):
        kernel = SimKernel()
        handle = kernel.at(1e9, lambda: None, label="victim")
        for cycle in range(10_000):
            handle = kernel.reschedule(handle, 1e9 + cycle)
        # One live event; the heap may carry slack but never 10k corpses.
        assert len(kernel.queue) == 1
        assert kernel.queue.heap_size <= 2 * max(64, len(kernel.queue)) + 2

    def test_cancel_churn_bounded_too(self):
        kernel = SimKernel()
        for cycle in range(10_000):
            h = kernel.at(1e9 + cycle, lambda: None)
            kernel.cancel(h)
            kernel.at(5e8 + cycle, lambda: None)
        assert len(kernel.queue) == 10_000
        assert kernel.queue.heap_size <= 2 * len(kernel.queue) + 64

    def test_compact_drops_only_dead(self):
        kernel = SimKernel()
        keep = [kernel.at(10.0 + i, lambda: None) for i in range(5)]
        drop = [kernel.at(20.0 + i, lambda: None) for i in range(7)]
        for h in drop:
            kernel.cancel(h)
        assert kernel.queue.compact() == 7
        assert kernel.queue.heap_size == 5
        assert all(h.active for h in keep)

    def test_order_preserved_across_compaction(self):
        kernel = SimKernel()
        fired = []
        for i in range(200):
            h = kernel.at(float(i), lambda i=i: fired.append(i))
            if i % 2:
                kernel.cancel(h)
        kernel.queue.compact()
        while kernel.step():
            pass
        assert fired == list(range(0, 200, 2))


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0,
                             max_delay_s=5.0, jitter=0.0)
        assert [policy.delay_for(a) for a in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 5.0]

    def test_validation(self):
        with pytest.raises(FaultError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(FaultError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(FaultError):
            RetryPolicy(multiplier=0.5)

    def test_jitter_is_seed_deterministic(self):
        policy = RetryPolicy(jitter=0.3)
        a = [policy.delay_for(n, SimKernel(seed=7).rng) for n in (1, 2, 3)]
        b = [policy.delay_for(n, SimKernel(seed=7).rng) for n in (1, 2, 3)]
        assert a == b

    def test_succeeds_after_transient_failures(self):
        kernel = SimKernel()
        calls = []

        def flaky():
            calls.append(kernel.now_s)
            if len(calls) < 3:
                raise YumError("transient")
            return "ok"

        result = call_with_retry(
            kernel, flaky, policy=RetryPolicy(jitter=0.0), op="t.flaky",
        )
        assert result == "ok"
        assert len(calls) == 3
        # backoff spent simulated time: 1s then 2s
        assert kernel.now_s == pytest.approx(3.0)
        assert kernel.trace.count("fault.retry") == 2
        assert kernel.trace.count("fault.giveup") == 0

    def test_exhaustion_raises_with_accounting(self):
        kernel = SimKernel()

        def hopeless():
            raise YumError("still down")

        with pytest.raises(RetryExhaustedError) as err:
            call_with_retry(
                kernel, hopeless,
                policy=RetryPolicy(max_attempts=3, jitter=0.0), op="t.dead",
            )
        assert err.value.attempts == 3
        assert isinstance(err.value.last_error, YumError)
        assert kernel.trace.count("fault.giveup") == 1

    def test_deadline_budget_cuts_retries_short(self):
        kernel = SimKernel()

        def hopeless():
            raise YumError("down")

        with pytest.raises(RetryExhaustedError, match="deadline"):
            call_with_retry(
                kernel, hopeless,
                policy=RetryPolicy(max_attempts=10, base_delay_s=5.0,
                                   jitter=0.0, deadline_s=8.0),
                op="t.deadline",
            )
        assert kernel.now_s < 8.0 + 5.0


class TestCircuitBreaker:
    def test_opens_after_threshold_and_half_opens(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=100.0)
        assert breaker.state == "closed"
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.state == "open"
        with pytest.raises(FaultError, match="circuit open"):
            breaker.guard(50.0, "mirror")
        assert breaker.allow(101.0)  # half-open probe
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=10.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.allow(20.0)
        breaker.record_failure(20.0)
        assert breaker.state == "open"
        assert not breaker.allow(25.0)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            "rt",
            (
                FaultSpec(FaultKind.NODE_CRASH, "n1", at_s=10.0, duration_s=5.0),
                FaultSpec(FaultKind.BOOT_TIMEOUT, "aa:bb", at_s=1.0,
                          params={"count": 2}),
            ),
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_unknown_kind_and_missing_fields(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultPlan.from_dict(
                {"name": "x", "faults": [{"kind": "meteor.strike",
                                          "target": "n1", "at_s": 0}]}
            )
        with pytest.raises(FaultError, match="missing"):
            FaultPlan.from_dict(
                {"name": "x", "faults": [{"kind": "node.crash"}]}
            )

    def test_validate_reports_every_problem(self):
        plan = FaultPlan(
            "",
            (
                FaultSpec(FaultKind.NODE_CRASH, "", at_s=-1.0),
                FaultSpec(FaultKind.MIRROR_CORRUPT, "m", at_s=0.0,
                          duration_s=9.0),
            ),
        )
        problems = plan.problems()
        assert len(problems) == 4  # no name, empty target, negative at_s, one-shot duration
        with pytest.raises(FaultError, match="one-shot"):
            plan.validate()

    def test_injector_refuses_unwired_subsystem(self):
        kernel = SimKernel()
        injector = FaultInjector(kernel)  # nothing wired
        plan = FaultPlan(
            "x", (FaultSpec(FaultKind.NODE_CRASH, "n1", at_s=1.0),)
        )
        injector.apply(plan)
        with pytest.raises(FaultError, match="needs a wired 'scheduler'"):
            kernel.run(until_s=2.0)


class TestGracefulDegradation:
    def _scheduler(self, kernel=None):
        machine = build_littlefe_modified().machine
        return MauiScheduler(
            ClusterResources(machine), kernel=kernel or SimKernel()
        )

    def test_crash_requeues_and_finishes_on_survivors(self):
        sched = self._scheduler()
        jobs = [_job(f"j{i}", 2) for i in range(6)]
        for job in jobs:
            sched.submit(job)
        victim = next(iter(jobs[0].allocation.node_names))
        requeued = sched.crash_node(victim)
        assert requeued and all(j.state is JobState.PENDING for j in requeued)
        assert sched.resources.is_failed(victim)
        assert sched.kernel.trace.count("job.requeue") == len(requeued)
        sched.run_to_completion()
        assert all(j.state is JobState.COMPLETED for j in jobs)
        for job in jobs:
            assert victim not in job.allocation.node_names

    def test_crash_fails_jobs_that_can_never_run(self):
        sched = self._scheduler()
        total = sched.resources.total_cores
        wide = _job("wide", total)  # needs every core
        runner = sched.submit(_job("runner", 2))
        sched.submit(wide)
        victim = next(iter(runner.allocation.node_names))
        sched.crash_node(victim)
        assert wide.state is JobState.FAILED
        sched.run_to_completion()  # stats must survive never-started jobs

    def test_recover_node_restores_capacity(self):
        sched = self._scheduler()
        node = sched.resources.node_names()[0]
        sched.crash_node(node)
        assert sched.resources.usable_cores < sched.resources.total_cores
        sched.recover_node(node)
        assert sched.resources.usable_cores == sched.resources.total_cores
        assert not sched.resources.is_failed(node)

    def test_drain_completes_when_idle_and_undrain_restores(self):
        sched = self._scheduler()
        job = sched.submit(_job("j", 2))
        node = next(iter(job.allocation.node_names))
        sched.drain_node(node)
        assert sched.resources.is_draining(node)
        assert not sched.resources.is_offline(node)  # still busy
        sched.run_to_completion()
        assert sched.resources.is_offline(node)  # drain completed on idle
        assert sched.kernel.trace.count("node.drain") == 1
        sched.undrain_node(node)
        assert not sched.resources.is_offline(node)

    def test_undrain_failed_node_raises(self):
        sched = self._scheduler()
        node = sched.resources.node_names()[0]
        sched.crash_node(node)
        with pytest.raises(NodeOfflineError, match="recover it"):
            sched.undrain_node(node)

    def test_power_mgmt_never_routes_to_failed_nodes(self):
        kernel = SimKernel()
        machine = build_littlefe_modified().machine
        sched = PowerManagedScheduler(machine, kernel=kernel)
        victim = sched.resources.node_names()[0]
        sched.crash_node(victim)
        hw = {n.name: n for n in machine.nodes}[victim]
        assert not hw.powered_on
        jobs = [sched.submit(_job(f"j{i}", 2)) for i in range(5)]
        sched.run_to_completion()
        for job in jobs:
            assert job.state is JobState.COMPLETED
            assert victim not in job.allocation.node_names
        # Recovery leaves the node powered down until demand needs it.
        sched.recover_node(victim)
        assert sched.resources.is_offline(victim)
        assert not sched.resources.is_failed(victim)

    def test_gmetad_survives_dead_gmond_and_reports_degraded(self):
        kernel = SimKernel()
        machine = build_littlefe_modified().machine
        gmetad = Gmetad(machine.name, poll_period_s=10.0, kernel=kernel,
                        dead_after_misses=2)
        from repro.distro import CENTOS_6_5, Host

        for node in machine.nodes:
            gmetad.attach(Gmond(Host(node, CENTOS_6_5)))
        victim = machine.compute_nodes[0].name
        gmetad.gmond_for(victim).fail_heartbeat()
        summary = gmetad.run_cycles(2)
        assert victim in gmetad.dead_hosts()
        assert summary.hosts_dead == 1
        assert summary.degraded
        assert kernel.trace.count("monitor.host_dead") == 1
        assert "DEAD" in gmetad.render_dashboard()
        # heartbeat returns: the host leaves the dead list
        gmetad.gmond_for(victim).restore_heartbeat()
        summary = gmetad.run_cycles(1)
        assert victim not in gmetad.dead_hosts()
        assert not summary.degraded


class TestMirrorFaults:
    def _mirror(self, retry=None, kernel=None, packages=8):
        upstream = Repository("up", name="upstream")
        for i in range(packages):
            upstream.add(Package(name=f"pkg{i}", version="1.0",
                                 size_bytes=1024))
        return RepoMirror(
            upstream, MirrorLink(bandwidth_bytes_s=1e6),
            kernel=kernel or SimKernel(), retry=retry,
        )

    def test_interrupted_sync_resumes_from_partial_state(self):
        mirror = self._mirror()
        mirror.inject_interruptions(1)
        with pytest.raises(YumError, match="partial state kept"):
            mirror.sync()
        partial = len(mirror.local.all_packages())
        assert 0 < partial < len(mirror.upstream.all_packages())
        stats = mirror.sync()  # resumes: only the remaining delta moves
        assert len(stats.fetched_nevras) == 8 - partial
        assert mirror.is_current

    def test_retry_policy_rides_out_interruptions(self):
        mirror = self._mirror(retry=RetryPolicy(jitter=0.0))
        mirror.inject_interruptions(2)
        stats = mirror.sync()
        assert mirror.is_current
        assert mirror.kernel.trace.count("fault.retry") == 2
        # three attempts are recorded in the history, the last complete
        assert len(mirror.sync_history) == 3

    def test_disk_full_fails_until_freed(self):
        mirror = self._mirror()
        mirror.set_disk_full(True)
        with pytest.raises(YumError, match="disk full"):
            mirror.sync()
        mirror.set_disk_full(False)
        mirror.sync()
        assert mirror.is_current

    def test_corruption_refetches_within_sync(self):
        mirror = self._mirror()
        mirror.corrupt_next({"pkg3-1.0-1.x86_64"})
        stats = mirror.sync()
        assert stats.refetched_nevras == ["pkg3-1.0-1.x86_64"]
        assert stats.bytes_transferred == 9 * 1024  # one package paid twice
        assert mirror.is_current

    def test_link_flap_uses_kernel_rng_deterministically(self):
        def run(seed):
            mirror = self._mirror(
                retry=RetryPolicy(max_attempts=8, jitter=0.0),
                kernel=SimKernel(seed=seed),
            )
            mirror.set_loss_probability(0.6)
            mirror.sync()
            return mirror.kernel.trace.count("fault.retry")

        assert run(3) == run(3)  # same seed, same number of drops


class TestPxeDhcpErrors:
    def test_pxe_error_names_mac_and_host_count(self):
        pxe = PxeServer(DhcpServer())
        pxe.assign_image("aa:bb:cc:00:00:01", BootImage(name="img", kickstart_profile="compute"))
        with pytest.raises(PxeError, match=r"no boot image.*de:ad:be:ef:00:01.*1 known host"):
            pxe.boot("de:ad:be:ef:00:01")

    def test_dhcp_error_names_mac_and_lease_count(self):
        dhcp = DhcpServer()
        dhcp.offer("aa:bb:cc:00:00:01", hostname="n1")
        with pytest.raises(DhcpError, match=r"no lease for MAC ff:ff:.*1 active lease"):
            dhcp.lease_for("ff:ff:ff:ff:ff:ff")

    def test_boot_timeouts_ride_retry_policy(self):
        kernel = SimKernel()
        pxe = PxeServer(DhcpServer(), kernel=kernel,
                        retry=RetryPolicy(jitter=0.0))
        pxe.set_default_image(BootImage(name="ks", kickstart_profile="compute"))
        pxe.inject_boot_timeouts("aa:bb:cc:00:00:01", count=2)
        result = pxe.boot("aa:bb:cc:00:00:01", hostname="n1")
        assert result.image.name == "ks"
        assert kernel.trace.count("fault.retry") == 2

    def test_boot_timeouts_exhaust_to_retry_exhausted(self):
        kernel = SimKernel()
        pxe = PxeServer(DhcpServer(), kernel=kernel,
                        retry=RetryPolicy(max_attempts=2, jitter=0.0))
        pxe.set_default_image(BootImage(name="ks", kickstart_profile="compute"))
        pxe.inject_boot_timeouts("aa:bb:cc:00:00:01", count=5)
        with pytest.raises(RetryExhaustedError):
            pxe.boot("aa:bb:cc:00:00:01")


class TestInstallerCrashConsistency:
    """Satellite (d): a crash mid-kickstart leaves the cluster consistent."""

    @settings(max_examples=12, deadline=None)
    @given(crash_indices=st.sets(st.integers(min_value=0, max_value=4)))
    def test_crashes_leave_cluster_consistent(self, crash_indices):
        machine = build_littlefe_modified().machine
        installer = RocksInstaller(machine)
        computes = machine.compute_nodes
        for index in crash_indices:
            installer.inject_kickstart_crash(computes[index].mac_address)
        cluster = installer.run(continue_on_error=True)

        # Database records use Rocks names (compute-0-N), not hardware names.
        records = cluster.rocksdb.compute_hosts()
        failed_records = [r for r in records if r.state is InstallState.FAILED]
        ok_records = [r for r in records if r.state is InstallState.INSTALLED]
        assert len(failed_records) == len(crash_indices)
        assert len(ok_records) == len(computes) - len(crash_indices)
        # Failed nodes hold no compute entry, no packages, no scheduler seat.
        for record in failed_records:
            assert record.name not in cluster.compute
        assert set(cluster.failed_hosts()) == {r.name for r in failed_records}
        assert len(cluster.hosts()) == 1 + len(ok_records)
        # Surviving nodes got the full closure (uniform environment holds).
        if ok_records:
            assert cluster.installed_everywhere()
        # No phantom scheduler resources: building resources that exclude
        # the failed hardware only counts surviving cores.
        failed_hw = {
            computes[i].name for i in crash_indices
        }
        if len(failed_hw) < len(computes):
            resources = ClusterResources(machine, exclude=failed_hw)
            expected = sum(
                n.cores for n in computes if n.name not in failed_hw
            )
            assert resources.total_cores == expected

    def test_crash_without_continue_on_error_raises(self):
        machine = build_littlefe_modified().machine
        installer = RocksInstaller(machine)
        installer.inject_kickstart_crash(machine.compute_nodes[0].mac_address)
        with pytest.raises(Exception, match="mid-kickstart"):
            installer.run()


class TestChaosAcceptance:
    """The ISSUE's acceptance scenario, end to end."""

    def test_two_node_crash_workload_completes_on_survivors(self):
        run = run_chaos(seed=0, cluster="littlefe")
        report = run.report
        assert report.ok, report.violations
        assert report.jobs_total == 12
        assert report.jobs_completed + report.jobs_failed == report.jobs_total
        assert report.requeues >= 1          # crashes hit running work
        assert report.faults_injected == 5
        assert report.retries >= 1           # disk-full window forced backoff
        assert report.dead_hosts             # the PSU-failed node stays dead
        # The permanently failed node ran nothing after its crash; every
        # completed job's allocation avoids it.
        dead = set(report.dead_hosts)
        for job in run.scheduler.finished:
            if job.state is JobState.COMPLETED and job.allocation is not None:
                crash_at = 950.0
                if job.start_time_s is not None and job.start_time_s > crash_at:
                    assert not (set(job.allocation.node_names) & dead)

    def test_same_seed_traces_are_byte_identical(self):
        a = run_chaos(seed=42, cluster="littlefe")
        b = run_chaos(seed=42, cluster="littlefe")
        assert a.jsonl == b.jsonl
        assert a.jsonl.encode() == b.jsonl.encode()

    def test_different_seeds_diverge(self):
        a = run_chaos(seed=1, cluster="littlefe")
        b = run_chaos(seed=2, cluster="littlefe")
        assert a.jsonl != b.jsonl

    def test_limulus_cluster_also_audits_clean(self):
        run = run_chaos(seed=5, cluster="limulus", job_count=8)
        assert run.report.ok, run.report.violations

    def test_plan_round_trips_through_cli_format(self, tmp_path):
        machine = build_littlefe_modified().machine
        plan = demo_plan(machine)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        loaded = FaultPlan.load(path)
        run = run_chaos(loaded, seed=0, cluster="littlefe")
        assert run.report.ok, run.report.violations

    def test_cli_end_to_end(self, tmp_path, capsys):
        from repro.faults.__main__ import main

        trace = tmp_path / "chaos.jsonl"
        status = main([
            "--seed", "3", "--trace", str(trace), "--check-determinism",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "invariants: all hold" in out
        assert "determinism check: OK" in out
        assert trace.exists() and trace.read_text().count("\n") > 100

    def test_cli_rejects_bad_plan(self, tmp_path, capsys):
        from repro.faults.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "faults": [{"kind": "nope", "target": "n", "at_s": 0}]}')
        assert main(["--plan", str(bad)]) == 2
        assert "unknown fault kind" in capsys.readouterr().err

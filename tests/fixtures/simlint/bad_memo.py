"""Known-bad fixture: memoization with no epoch key (SL202)."""

import functools
from functools import lru_cache


class Catalog:
    def __init__(self, repos):
        self.repos = repos
        self._providers_cache = {}  # SL202: memo dict, no epoch marker

    @functools.lru_cache(maxsize=None)  # SL202: unkeyed lru_cache
    def latest(self, name):
        return self.repos.latest_by_name(name)


@lru_cache
def resolve(name):  # SL202: module-level unkeyed lru_cache
    return name.lower()

"""Simulated RHEL-family operating system: filesystem, services, users,
environment modules, and distribution releases.

This is the substrate XCBC/XNIT manage: packages own files in the
:class:`~repro.distro.filesystem.Filesystem`, register services, install
modulefiles, and the host's command surface (:meth:`Host.which`) is what the
XSEDE-compatibility audit measures.
"""

from .distribution import (
    CENTOS_6_3,
    CENTOS_6_5,
    RELEASES,
    SCIENTIFIC_LINUX_6_5,
    DistroRelease,
    get_release,
)
from .filesystem import FileKind, Filesystem, FsNode, normpath, parent_dirs
from .host import Host
from .modules_env import ModuleFile, ModuleSession, ModuleSystem
from .services import Service, ServiceManager, ServiceState
from .users import FIRST_USER_UID, Group, User, UserDatabase

__all__ = [
    "DistroRelease",
    "get_release",
    "RELEASES",
    "CENTOS_6_3",
    "CENTOS_6_5",
    "SCIENTIFIC_LINUX_6_5",
    "Filesystem",
    "FsNode",
    "FileKind",
    "normpath",
    "parent_dirs",
    "Host",
    "ModuleFile",
    "ModuleSystem",
    "ModuleSession",
    "Service",
    "ServiceManager",
    "ServiceState",
    "User",
    "Group",
    "UserDatabase",
    "FIRST_USER_UID",
]

"""Training-curriculum and cloud-comparison tests (Sections 6 and 8)."""

import pytest

from repro.core import (
    CloudCostModel,
    CurriculumModule,
    CurriculumStep,
    TrainingSession,
    compare,
    crossover_utilisation,
    littlefe_xcbc_module,
    runaway_student_scenario,
)
from repro.errors import ReproError, TrainingError


class TestCurriculum:
    def test_full_module_passes(self):
        session = TrainingSession(littlefe_xcbc_module(), students=8)
        session.run()
        assert session.passed_all, session.transcript()
        assert len(session.outcomes) == 5

    def test_forgotten_disks_fail_at_install_step(self):
        # the Section 5.1 teaching moment: stock LittleFe is diskless and
        # Rocks refuses it
        session = TrainingSession(littlefe_xcbc_module(forget_disks=True))
        session.run()
        by_step = {o.step: o for o in session.outcomes}
        assert by_step["assemble-hardware"].passed
        assert not by_step["install-xcbc"].passed
        assert "diskless" in by_step["install-xcbc"].detail

    def test_stop_on_failure_halts(self):
        session = TrainingSession(littlefe_xcbc_module(forget_disks=True))
        session.run(stop_on_failure=True)
        # wire-network fails first: the single-NIC Atom head cannot be
        # dual-homed... actually assembly passes; install fails; later steps
        # never run
        assert len(session.outcomes) < 5

    def test_transcript_format(self):
        session = TrainingSession(littlefe_xcbc_module(), students=3)
        session.run()
        text = session.transcript()
        assert "PASS" in text and "3 students" in text

    def test_module_needs_steps(self):
        with pytest.raises(TrainingError):
            CurriculumModule(title="empty", steps=())

    def test_session_needs_students(self):
        with pytest.raises(TrainingError):
            TrainingSession(littlefe_xcbc_module(), students=0)

    def test_custom_step_error_becomes_teaching_moment(self):
        def boom(ws):
            raise ReproError("lesson: check the power budget")

        module = CurriculumModule(
            title="t", steps=(CurriculumStep("s", "obj", boom),)
        )
        session = TrainingSession(module)
        session.run()
        assert not session.passed_all
        assert "power budget" in session.outcomes[0].detail


class TestCloudComparison:
    def test_busy_cluster_beats_cloud(self, littlefe_quote):
        result = compare(
            littlefe_quote.machine, littlefe_quote.quoted_usd, utilisation=0.8
        )
        assert result.cluster_wins

    def test_idle_cluster_loses_to_cloud(self, littlefe_quote):
        result = compare(
            littlefe_quote.machine, littlefe_quote.quoted_usd, utilisation=0.01
        )
        assert not result.cluster_wins

    def test_crossover_exists_and_is_low(self, littlefe_quote):
        # the paper's argument: for any seriously used machine, capex wins
        crossover = crossover_utilisation(
            littlefe_quote.machine, littlefe_quote.quoted_usd
        )
        assert crossover is not None
        assert 0.0 < crossover < 0.5

    def test_limulus_crossover_also_low(self, limulus_quote):
        crossover = crossover_utilisation(
            limulus_quote.machine, limulus_quote.quoted_usd
        )
        assert crossover is not None and crossover < 0.5

    def test_expensive_machine_cheap_cloud_never_crosses(self, littlefe_quote):
        cheap_cloud = CloudCostModel(usd_per_core_hour=0.001)
        crossover = crossover_utilisation(
            littlefe_quote.machine, 1_000_000.0, cloud=cheap_cloud
        )
        assert crossover is None

    def test_runaway_student_uncapped(self):
        uncapped, billed = runaway_student_scenario(cores=64, days=30)
        # 64 cores x 720 h x $0.05 = $2,304 — real money on a student card
        assert uncapped == pytest.approx(2304.0)
        assert billed == uncapped  # no proactive capping

    def test_runaway_student_with_cap(self):
        cloud = CloudCostModel(monthly_cap_usd=500.0)
        uncapped, billed = runaway_student_scenario(cores=64, days=30, cloud=cloud)
        assert billed == pytest.approx(500.0)
        assert billed < uncapped

    def test_utilisation_bounds_validated(self, littlefe_quote):
        with pytest.raises(ReproError):
            compare(littlefe_quote.machine, 3600.0, utilisation=1.5)

    def test_cluster_cost_monotone_in_utilisation(self, littlefe_quote):
        low = compare(littlefe_quote.machine, 3600.0, utilisation=0.2)
        high = compare(littlefe_quote.machine, 3600.0, utilisation=0.9)
        assert high.cluster_usd > low.cluster_usd  # electricity scales
        assert high.cloud_usd > low.cloud_usd
        # but the cluster's $/core-hour falls with use (fixed cost amortised)
        assert high.usd_per_core_hour_cluster < low.usd_per_core_hour_cluster

"""The XSEDE-compatibility audit.

Section 2's definition of "run-alike" compatibility is concrete: "libraries
are in the same place as on XSEDE clusters, versions are the same, and
commands work as they do on XSEDE-supported clusters."  The audit scores a
host against the catalogue on exactly those axes plus the scheduler command
surface and environment modules, and the portability check verifies the
paper's "a user's knowledge ... becomes portable from one cluster built
with XCBC to another" claim between two hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..distro.host import Host
from ..rpm.database import RpmDatabase
from ..rpm.package import Package
from .packages_xsede import xsede_packages

__all__ = [
    "DimensionScore",
    "CompatibilityReport",
    "audit_host",
    "audit_cluster",
    "diff_environments",
    "EnvironmentDiff",
    "portability_check",
    "SCHEDULER_COMMANDS",
]

#: The batch commands a portable user's muscle memory relies on.
SCHEDULER_COMMANDS = ("qsub", "qstat", "qdel")


@dataclass(frozen=True)
class DimensionScore:
    """One audited axis: achieved / expected with the missing items."""

    name: str
    achieved: int
    expected: int
    missing: tuple[str, ...]

    @property
    def score(self) -> float:
        return self.achieved / self.expected if self.expected else 1.0


@dataclass
class CompatibilityReport:
    """The full audit of one host."""

    host: str
    dimensions: list[DimensionScore] = field(default_factory=list)

    @property
    def overall(self) -> float:
        """Unweighted mean of dimension scores."""
        if not self.dimensions:
            return 0.0
        return sum(d.score for d in self.dimensions) / len(self.dimensions)

    def dimension(self, name: str) -> DimensionScore:
        for d in self.dimensions:
            if d.name == name:
                return d
        raise KeyError(name)

    def render(self) -> str:
        lines = [f"XSEDE compatibility audit: {self.host}"]
        for d in self.dimensions:
            lines.append(
                f"  {d.name:<22} {d.achieved:>4}/{d.expected:<4}  {d.score:6.1%}"
            )
        lines.append(f"  {'OVERALL':<22} {'':>9}  {self.overall:6.1%}")
        return "\n".join(lines)


def audit_host(
    host: Host,
    db: RpmDatabase,
    *,
    catalogue: list[Package] | None = None,
) -> CompatibilityReport:
    """Score one host against the XSEDE run-alike catalogue."""
    catalogue = catalogue if catalogue is not None else xsede_packages()
    report = CompatibilityReport(host=host.name)

    # 1. package coverage (by name)
    names = [p.name for p in catalogue]
    missing_pkgs = tuple(n for n in names if not db.has(n))
    report.dimensions.append(
        DimensionScore(
            "package coverage", len(names) - len(missing_pkgs), len(names), missing_pkgs
        )
    )

    # 2. versions are the same (installed packages at catalogue EVR)
    version_misses = []
    version_hits = 0
    for pkg in catalogue:
        if db.has(pkg.name):
            if db.get(pkg.name).evr >= pkg.evr:
                version_hits += 1
            else:
                version_misses.append(f"{pkg.name} ({db.get(pkg.name).evr_string} < {pkg.evr_string})")
    installed_count = version_hits + len(version_misses)
    report.dimensions.append(
        DimensionScore(
            "version currency", version_hits, max(installed_count, 1), tuple(version_misses)
        )
    )

    # 3. commands work the same way
    expected_commands = sorted({c for p in catalogue for c in p.commands})
    missing_commands = tuple(c for c in expected_commands if not host.has_command(c))
    report.dimensions.append(
        DimensionScore(
            "command surface",
            len(expected_commands) - len(missing_commands),
            len(expected_commands),
            missing_commands,
        )
    )

    # 4. libraries in the same place (/usr/lib64, the XSEDE convention)
    expected_libs = sorted({lib for p in catalogue for lib in p.libraries})
    missing_libs = tuple(
        lib for lib in expected_libs if not host.fs.exists(f"/usr/lib64/{lib}")
    )
    report.dimensions.append(
        DimensionScore(
            "library placement",
            len(expected_libs) - len(missing_libs),
            len(expected_libs),
            missing_libs,
        )
    )

    # 5. environment modules
    expected_modules = sorted({p.modulefile for p in catalogue if p.modulefile})
    missing_modules = tuple(
        m for m in expected_modules if not host.modules.has(m)
    )
    report.dimensions.append(
        DimensionScore(
            "environment modules",
            len(expected_modules) - len(missing_modules),
            len(expected_modules),
            missing_modules,
        )
    )

    # 6. scheduler command surface — only when the catalogue includes a
    # batch system at all (custom catalogues may not)
    if any(c in SCHEDULER_COMMANDS for p in catalogue for c in p.commands):
        missing_sched = tuple(
            c for c in SCHEDULER_COMMANDS if not host.has_command(c)
        )
        report.dimensions.append(
            DimensionScore(
                "scheduler commands",
                len(SCHEDULER_COMMANDS) - len(missing_sched),
                len(SCHEDULER_COMMANDS),
                missing_sched,
            )
        )
    return report


def audit_cluster(cluster, *, catalogue: list[Package] | None = None) -> dict[str, CompatibilityReport]:
    """Audit every host of a cluster; returns reports keyed by hostname.

    Accepts either cluster shape (:class:`ProvisionedCluster` /
    :class:`ExistingCluster`), duck-typed the same way
    :func:`repro.core.manifest.manifest_of_cluster` is.
    """
    reports: dict[str, CompatibilityReport] = {}
    if hasattr(cluster, "db_for"):
        pairs = [(h, cluster.db_for(h)) for h in cluster.hosts()]
    elif hasattr(cluster, "client_for"):
        pairs = [(h, cluster.client_for(h).db) for h in cluster.hosts()]
    else:
        raise TypeError(f"cannot audit {type(cluster)!r}")
    for host, db in pairs:
        reports[host.name] = audit_host(host, db, catalogue=catalogue)
    return reports


@dataclass
class EnvironmentDiff:
    """Differences between two hosts' software environments."""

    only_on_a: list[str] = field(default_factory=list)
    only_on_b: list[str] = field(default_factory=list)
    version_mismatches: list[str] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        """True when the run-alike surfaces match (no shared-package version
        skew and no one-sided run-alike packages — vendor/base extras on
        either side are reported but don't block convergence; callers decide
        what matters via the lists)."""
        return not self.version_mismatches

    @property
    def is_identical(self) -> bool:
        return not (self.only_on_a or self.only_on_b or self.version_mismatches)


def diff_environments(db_a: RpmDatabase, db_b: RpmDatabase) -> EnvironmentDiff:
    """Package-level diff between two hosts."""
    names_a, names_b = db_a.names(), db_b.names()
    diff = EnvironmentDiff(
        only_on_a=sorted(names_a - names_b),
        only_on_b=sorted(names_b - names_a),
    )
    for name in sorted(names_a & names_b):
        evr_a, evr_b = db_a.get(name).evr, db_b.get(name).evr
        if evr_a != evr_b:
            diff.version_mismatches.append(f"{name}: {evr_a} vs {evr_b}")
    return diff


def portability_check(
    host_a: Host, host_b: Host, workflow_commands: list[str]
) -> tuple[float, list[str]]:
    """Does a user's workflow move between two clusters unchanged?

    Returns ``(fraction portable, commands that break)``.  A command is
    portable when it resolves on both hosts.
    """
    broken = [
        c
        for c in workflow_commands
        if not (host_a.has_command(c) and host_b.has_command(c))
    ]
    total = len(workflow_commands) or 1
    return (total - len(broken)) / total, broken

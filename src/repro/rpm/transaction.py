"""RPM transaction sets: validated, ordered, atomic install/erase/upgrade.

Yum builds a transaction, resolves it, *then* runs it — and a failed
transaction must leave the system untouched (Section 3's warning about
automatic updates causing "unexpected behavior" is exactly about transactions
that succeed mechanically but break expectations; the mechanical layer at
least must be atomic).

Rules enforced by :meth:`Transaction.check`:

* nothing installed twice; erases must name installed packages;
* after the transaction, every requirement of every remaining package is
  satisfied (no broken deps — including deps broken by erases);
* no two packages in the final set conflict;
* upgrades replace an older EVR with a strictly newer one (downgrades are
  refused unless ``allow_downgrade``).

:meth:`Transaction.commit` orders installs topologically (dependencies
first; dependency cycles are co-installed in name order) and rolls back on
any mid-commit failure.

Commits are **write-ahead journaled**: every primitive operation records
its intent in a :class:`~repro.recovery.journal.Journal` before the DB is
touched and is marked applied after, so rollback walks the journal's
applied prefix in strict reverse order (not an ad-hoc done-list) and a
head-node crash mid-commit leaves an open journal transaction that
:func:`recover_transaction` resolves afterwards — no phantom packages.
Without an explicit journal, commit uses a private in-memory one (same
rollback path, no durability).  A :class:`~repro.errors.HeadnodeCrashError`
raised mid-commit is *not* rolled back: the process just died; cleanup is
recovery's job, not the corpse's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analyze.diagnostic import Diagnostic, Severity
from ..analyze import txn as _txn_rules  # noqa: F401 - registers TX7xx rules
from ..errors import (
    ConflictError,
    DependencyError,
    HeadnodeCrashError,
    JournalError,
    TransactionError,
)
from ..recovery.journal import Journal, JournalTxn, OpState
from .database import RpmDatabase
from .package import Package, Requirement

__all__ = [
    "Transaction",
    "TransactionPlan",
    "TransactionResult",
    "recover_transaction",
]


@dataclass(frozen=True)
class TransactionPlan:
    """A validated, ordered commit plan — shareable across identical hosts.

    Validation (:meth:`Transaction.check_diagnostics`) and install ordering
    (:meth:`Transaction._install_order`) are both O(n²) in the package set
    and depend only on the DB contents, the host architecture, and the
    queued package set.  A uniform install wave kickstarts hundreds of
    hosts whose transactions are byte-for-byte identical, so one plan is
    computed and every other host commits through
    :meth:`Transaction.commit_planned`, which verifies the match keys below
    and skips straight to execution.
    """

    #: :meth:`RpmDatabase.fingerprint` of the DB the plan was validated on
    db_fingerprint: str
    host_arch: str
    #: sorted nevras of the queued installs (the set identity)
    install_nevras: tuple[str, ...]
    #: sorted names of the queued erases
    erase_names: tuple[str, ...]
    #: topological execution order for the installs
    order_nevras: tuple[str, ...]


@dataclass
class TransactionResult:
    """What a committed transaction did, in execution order."""

    erased: list[Package] = field(default_factory=list)
    installed: list[Package] = field(default_factory=list)
    upgraded: list[tuple[Package, Package]] = field(default_factory=list)  # (old, new)
    #: paths a new package wrote over another installed package's file
    #: (``path (old-owner -> new-owner)``).  Real RPM refuses these outright;
    #: we record them instead because retrofit scenarios (XNIT torque over a
    #: vendor scheduler) depend on the replace-and-tell behaviour — but a
    #: silent conflict is how clusters rot, so it is never silent.
    file_conflicts: list[str] = field(default_factory=list)

    @property
    def change_count(self) -> int:
        return len(self.erased) + len(self.installed) + len(self.upgraded)

    def summary(self) -> str:
        """A yum-style one-line summary."""
        return (
            f"Install {len(self.installed)} Package(s); "
            f"Upgrade {len(self.upgraded)} Package(s); "
            f"Erase {len(self.erased)} Package(s)"
        )


class Transaction:
    """One pending transaction against a host's RPM database."""

    def __init__(
        self,
        db: RpmDatabase,
        *,
        allow_downgrade: bool = False,
        journal: Journal | None = None,
        delivery=None,
    ) -> None:
        self.db = db
        self.allow_downgrade = allow_downgrade
        #: write-ahead journal commits record through; None means each
        #: commit journals into a private in-memory one (rollback still
        #: walks the journal, but nothing survives the process).
        self.journal = journal
        #: optional :class:`~repro.cas.LazyDelivery`: each install pulls the
        #: package's missing chunks through the site cache hierarchy on
        #: first reference, before the DB mutation.  A failed fetch aborts
        #: the commit through the ordinary rollback path.
        self.delivery = delivery
        self._installs: dict[str, Package] = {}
        self._erases: set[str] = set()

    # -- building --------------------------------------------------------------

    def install(self, pkg: Package) -> "Transaction":
        """Queue a fresh install (or an upgrade if the name is installed)."""
        if pkg.name in self._installs:
            existing = self._installs[pkg.name]
            if existing.nevra != pkg.nevra:
                raise TransactionError(
                    f"transaction already installs {existing.nevra}; "
                    f"cannot also install {pkg.nevra}"
                )
            return self
        self._installs[pkg.name] = pkg
        return self

    def erase(self, name: str) -> "Transaction":
        """Queue an erase of an installed package."""
        self._erases.add(name)
        return self

    @property
    def is_empty(self) -> bool:
        return not self._installs and not self._erases

    # -- validation --------------------------------------------------------------

    def _final_set(self) -> dict[str, Package]:
        """The package set that will be installed after commit."""
        final = {
            name: pkg
            for name, pkg in ((p.name, p) for p in self.db.installed())
            if name not in self._erases and name not in self._installs
        }
        final.update(self._installs)
        return final

    def check_diagnostics(self) -> list[Diagnostic]:
        """Validate; returns structured diagnostics (empty = ok).

        Each problem carries a stable ``TX7xx`` rule code (catalogued in
        :mod:`repro.analyze.txn` and docs/ANALYZE.md).  Order is the
        validation order — arch, erases, installs, requires, conflicts —
        not severity order, so :meth:`check` stays byte-identical to its
        historical output.
        """

        def problem(code: str, message: str, location: str) -> Diagnostic:
            return Diagnostic(
                code=code,
                severity=Severity.ERROR,
                message=message,
                subsystem="transaction",
                location=location,
            )

        problems: list[Diagnostic] = []
        if self.journal is not None:
            for open_txn in self.journal.open_txns("rpm.txn"):
                if open_txn.meta.get("host") == self.db.host.name:
                    problems.append(problem(
                        "TX707",
                        f"journal transaction {open_txn.txn_id} for host "
                        f"{self.db.host.name} is still open (crashed "
                        f"mid-commit?); recover it before committing",
                        f"transaction:journal/{open_txn.txn_id}",
                    ))
        host_arch = self.db.host.arch
        for name, pkg in sorted(self._installs.items()):
            if pkg.arch not in ("noarch", host_arch):
                problems.append(problem(
                    "TX701",
                    f"{pkg.nevra} is built for {pkg.arch} but this host is "
                    f"{host_arch}",
                    f"transaction:install/{name}",
                ))
        for name in sorted(self._erases):
            if not self.db.has(name) and name not in self._installs:
                problems.append(problem(
                    "TX702",
                    f"cannot erase {name}: not installed",
                    f"transaction:erase/{name}",
                ))
        for name, pkg in sorted(self._installs.items()):
            if self.db.has(name) and name not in self._erases:
                old = self.db.get(name)
                if old.nevra == pkg.nevra:
                    problems.append(problem(
                        "TX703",
                        f"{pkg.nevra} is already installed",
                        f"transaction:install/{name}",
                    ))
                else:
                    problems.append(problem(
                        "TX704",
                        f"{name} is installed ({old.evr_string}); upgrade via "
                        f"erase+install or Transaction.upgrade",
                        f"transaction:install/{name}",
                    ))
        final = self._final_set()
        # Dependency closure of the final state.
        for pkg in sorted(final.values(), key=lambda p: p.name):
            for req in pkg.requires:
                if not any(p.satisfies(req) for p in final.values()):
                    problems.append(problem(
                        "TX705",
                        f"{pkg.nevra} requires {req} which nothing provides",
                        f"transaction:require/{pkg.name}",
                    ))
        # Pairwise conflicts among final packages that declare any.
        declaring = [p for p in final.values() if p.conflicts]
        for pkg in sorted(declaring, key=lambda p: p.name):
            for other in sorted(final.values(), key=lambda p: p.name):
                if other.name != pkg.name and pkg.conflicts_with(other):
                    problems.append(problem(
                        "TX706",
                        f"{pkg.nevra} conflicts with {other.nevra}",
                        f"transaction:conflict/{pkg.name}",
                    ))
        return problems

    def check(self) -> list[str]:
        """Validate; returns a list of human-readable problems (empty = ok).

        Thin compatibility shim over :meth:`check_diagnostics` — the strings
        are each diagnostic's message, unchanged from before diagnostics
        existed.
        """
        return [str(d) for d in self.check_diagnostics()]

    def upgrade(self, pkg: Package) -> "Transaction":
        """Queue an in-place upgrade: erase old EVR, install the new one."""
        if not self.db.has(pkg.name):
            # yum semantics: upgrade of a not-installed package installs it.
            return self.install(pkg)
        old = self.db.get(pkg.name)
        if not pkg.is_newer_than(old) and not self.allow_downgrade:
            raise TransactionError(
                f"{pkg.nevra} is not newer than installed {old.nevra} "
                f"(pass allow_downgrade to force)"
            )
        self.erase(pkg.name)
        return self.install(pkg)

    # -- ordering --------------------------------------------------------------

    def _install_order(self) -> list[Package]:
        """Topological order of queued installs: dependencies first.

        Edges run provider -> dependant, considering only providers inside
        this transaction (already-installed providers impose no ordering).
        Kahn's algorithm with name-sorted tie-breaking keeps the order
        deterministic; any cycle remainder is co-installed in name order.
        """
        pkgs = self._installs
        dependants: dict[str, set[str]] = {n: set() for n in pkgs}
        indegree: dict[str, int] = {n: 0 for n in pkgs}
        for name, pkg in pkgs.items():
            for req in pkg.requires:
                for provider_name, provider in pkgs.items():
                    if provider_name != name and provider.satisfies(req):
                        if name not in dependants[provider_name]:
                            dependants[provider_name].add(name)
                            indegree[name] += 1
        ready = sorted(n for n, d in indegree.items() if d == 0)
        order: list[Package] = []
        while ready:
            current = ready.pop(0)
            order.append(pkgs[current])
            newly_ready = []
            for child in dependants[current]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    newly_ready.append(child)
            ready = sorted(ready + newly_ready)
        if len(order) < len(pkgs):
            # Cycle: co-install the remainder deterministically.
            remaining = sorted(set(pkgs) - {p.name for p in order})
            order.extend(pkgs[n] for n in remaining)
        return order

    # -- commit ----------------------------------------------------------------

    @staticmethod
    def _raise_check_problems(problems: list[Diagnostic]) -> None:
        text = "; ".join(str(d) for d in problems)
        codes = {d.code for d in problems}
        if "TX705" in codes:
            raise DependencyError(f"transaction check failed: {text}")
        if "TX706" in codes:
            raise ConflictError(f"transaction check failed: {text}")
        raise TransactionError(f"transaction check failed: {text}")

    def plan(self) -> TransactionPlan:
        """Validate and order this transaction into a reusable plan.

        Raises :class:`DependencyError` / :class:`ConflictError` /
        :class:`TransactionError` (by problem type) exactly as
        :meth:`commit` would, without touching the DB.
        """
        if self.is_empty:
            raise TransactionError("empty transaction")
        problems = self.check_diagnostics()
        if problems:
            self._raise_check_problems(problems)
        return TransactionPlan(
            db_fingerprint=self.db.fingerprint(),
            host_arch=self.db.host.arch,
            install_nevras=tuple(
                sorted(p.nevra for p in self._installs.values())
            ),
            erase_names=tuple(sorted(self._erases)),
            order_nevras=tuple(p.nevra for p in self._install_order()),
        )

    def commit(self) -> TransactionResult:
        """Validate, order, and execute; atomic on failure.

        Raises :class:`DependencyError` / :class:`ConflictError` /
        :class:`TransactionError` (by problem type) without touching the DB
        if validation fails.  If a primitive operation fails mid-commit
        (injectable in tests), already-applied operations are rolled back
        before the error propagates.
        """
        return self.commit_planned(self.plan())

    def commit_planned(self, plan: TransactionPlan) -> TransactionResult:
        """Execute against a pre-validated :class:`TransactionPlan`.

        The plan's match keys — DB fingerprint, host arch, install set,
        erase set — are checked against *this* transaction; a match means
        validation and ordering would reproduce the plan exactly, so both
        are skipped.  A mismatch raises :class:`TransactionError` without
        touching the DB (fall back to :meth:`commit`).  Execution,
        journaling, and rollback are identical to :meth:`commit`.
        """
        if self.is_empty:
            raise TransactionError("empty transaction")
        by_nevra = {p.nevra: p for p in self._installs.values()}
        if (
            self.db.fingerprint() != plan.db_fingerprint
            or self.db.host.arch != plan.host_arch
            or tuple(sorted(by_nevra)) != plan.install_nevras
            or tuple(sorted(self._erases)) != plan.erase_names
        ):
            raise TransactionError(
                f"transaction on {self.db.host.name} does not match the "
                f"shared plan (different DB state, architecture, or package "
                f"set); commit() it individually"
            )

        result = TransactionResult()
        upgrades_old: dict[str, Package] = {}
        # Detect cross-package file conflicts before touching anything:
        # paths an incoming package will write that are currently owned by a
        # package that is neither being erased nor the same name.
        fs = self.db.host.fs
        for pkg in self._installs.values():
            for path in pkg.default_paths():
                if fs.exists(path):
                    owner = fs.get(path).owner_package
                    if (
                        owner
                        and owner != pkg.name
                        and owner not in self._erases
                        and self.db.has(owner)
                    ):
                        result.file_conflicts.append(
                            f"{path} ({owner} -> {pkg.name})"
                        )
        journal = self.journal if self.journal is not None else Journal()
        txn = journal.begin("rpm.txn", host=self.db.host.name)
        try:
            for name in sorted(self._erases):
                old = self.db.get(name)
                op = journal.intent(
                    txn, "erase", name=name, nevra=old.nevra, obj=old
                )
                self.db._erase_unchecked(name)
                journal.applied(txn, op)
                if name in self._installs:
                    upgrades_old[name] = old
                else:
                    result.erased.append(old)
            for pkg in (by_nevra[n] for n in plan.order_nevras):
                if self.delivery is not None:
                    # Lazy content delivery: the package's bytes arrive
                    # chunk-by-chunk only now, on first reference.
                    self.delivery.fetch_package(self.db.host.name, pkg)
                op = journal.intent(
                    txn, "install", name=pkg.name, nevra=pkg.nevra, obj=pkg
                )
                self.db._install_unchecked(pkg)
                journal.applied(txn, op)
                if pkg.name in upgrades_old:
                    result.upgraded.append((upgrades_old[pkg.name], pkg))
                else:
                    result.installed.append(pkg)
        except HeadnodeCrashError:
            # The process died mid-commit.  A corpse runs no cleanup: the
            # journal transaction stays OPEN (that IS the crash record) and
            # recover_transaction() heals the phantom state afterwards.
            raise
        except Exception as exc:
            # Strict reverse order through the journal's applied prefix —
            # the journal, not an ad-hoc done-list, is the rollback truth.
            for op in reversed(txn.applied_ops()):
                _undo_op(self.db, op)
                journal.undone(txn, op)
            journal.rolled_back(txn)
            raise TransactionError(
                f"transaction failed and was rolled back: {exc}"
            ) from exc
        journal.commit(txn)
        return result


def _undo_op(db: RpmDatabase, op) -> None:
    """Reverse one journaled primitive (best effort, like rpm's own undo)."""
    try:
        if op.op == "install":
            name = op.payload["name"]
            if db.has(name) and db.get(name).nevra == op.payload["nevra"]:
                db._erase_unchecked(name)
        elif op.op == "erase":
            name = op.payload["name"]
            if not db.has(name):
                pkg = op.obj
                if pkg is None:
                    raise JournalError(
                        f"cannot undo erase of {op.payload['nevra']}: no "
                        f"in-process package handle (journal loaded from "
                        f"disk? pass a package source to recover_transaction)"
                    )
                db._install_unchecked(pkg)
        else:
            raise JournalError(f"unknown rpm journal op {op.op!r}")
    except JournalError:
        raise
    except Exception:  # pragma: no cover - rollback best effort
        pass


def recover_transaction(
    journal: Journal, db: RpmDatabase, *, packages=None
) -> list[JournalTxn]:
    """Resolve every open ``rpm.txn`` journal transaction for ``db``'s host.

    The post-crash entry point: each open transaction's operations are
    forced to not-happened in strict reverse order.  APPLIED ops are
    undone; INTENT ops (the crash landed between intent and apply) are
    checked against the DB and undone if the mutation half-landed — either
    way the DB ends with no phantom packages and the journal records the
    resolution.  ``packages`` optionally maps nevra -> Package for undoing
    erases when the journal was reloaded from disk (no object handles).
    Returns the transactions that were rolled back.
    """
    resolved = []
    for txn in journal.open_txns("rpm.txn"):
        if txn.meta.get("host") != db.host.name:
            continue
        for op in reversed(txn.ops):
            if op.state is OpState.UNDONE:
                continue
            if op.obj is None and packages is not None and op.op == "erase":
                op.obj = packages.get(op.payload["nevra"])
            _undo_op(db, op)
            journal.undone(txn, op)
        journal.rolled_back(txn)
        resolved.append(txn)
    return resolved

"""Depsolver and YumClient tests: the Section 3 administrator verbs."""

import pytest

from repro.errors import DependencyError, YumError
from repro.rpm import Capability, Flag, Package, Requirement, RpmDatabase
from repro.yum import (
    RepoSet,
    Repository,
    XSEDE_REPO_STANZA,
    YumClient,
    best_provider,
    resolve_install,
)


def mk(name, version="1.0", **kw):
    return Package(name=name, version=version, **kw)


@pytest.fixture
def repo():
    r = Repository("xsede", priority=50)
    r.add(mk("openmpi", "1.6.4", commands=("mpirun",), libraries=("libmpi.so.1",)))
    r.add(mk("fftw", "3.3.3", libraries=("libfftw3.so.3",)))
    r.add(
        mk(
            "gromacs",
            "4.6.5",
            requires=(Requirement("openmpi", Flag.GE, "1.6"), Requirement("fftw")),
            commands=("mdrun",),
            modulefile="gromacs/4.6.5",
        )
    )
    return r


@pytest.fixture
def client(frontend_host, repo):
    c = YumClient(frontend_host)
    c.configure_repo_file(
        "xsede.repo", XSEDE_REPO_STANZA.render(), available={"xsede": repo}
    )
    return c


class TestDepsolver:
    def test_closure_pulls_dependencies(self, repo, frontend_host):
        db = RpmDatabase(frontend_host)
        res = resolve_install(["gromacs"], RepoSet([repo]), db)
        assert {p.name for p in res.to_install} == {"gromacs", "openmpi", "fftw"}

    def test_installed_deps_not_repulled(self, repo, frontend_host):
        db = RpmDatabase(frontend_host)
        from repro.rpm import Transaction

        Transaction(db).install(mk("fftw", "3.3.3")).commit()
        res = resolve_install(["gromacs"], RepoSet([repo]), db)
        assert {p.name for p in res.to_install} == {"gromacs", "openmpi"}
        assert any(r.name == "fftw" for r in res.already_satisfied)

    def test_missing_provider_reports_chain(self, frontend_host):
        repo = Repository("r")
        repo.add(mk("app", requires=(Requirement("libmagic"),)))
        db = RpmDatabase(frontend_host)
        with pytest.raises(DependencyError, match="libmagic"):
            resolve_install(["app"], RepoSet([repo]), db)

    def test_unknown_goal_rejected(self, repo, frontend_host):
        db = RpmDatabase(frontend_host)
        with pytest.raises(DependencyError, match="no package ghost"):
            resolve_install(["ghost"], RepoSet([repo]), db)

    def test_best_provider_prefers_name_match(self, frontend_host):
        repo = Repository("r")
        repo.add(mk("mpi-selector", provides=(Capability("openmpi"),)))
        repo.add(mk("openmpi", "1.6.4"))
        chosen = best_provider(Requirement("openmpi"), RepoSet([repo]))
        assert chosen.name == "openmpi"

    def test_best_provider_newest_evr(self, frontend_host):
        repo = Repository("r")
        repo.add(mk("openmpi", "1.6.4"))
        repo.add(mk("openmpi", "1.8.1"))
        chosen = best_provider(Requirement("openmpi"), RepoSet([repo]))
        assert chosen.version == "1.8.1"


class TestYumClient:
    def test_install_materialises_everything(self, client):
        result = client.install("gromacs")
        assert result.change_count == 3
        assert client.host.has_command("mdrun")
        assert client.host.has_command("mpirun")
        assert client.host.modules.has("gromacs/4.6.5")

    def test_install_already_installed_nothing_to_do(self, client):
        client.install("fftw")
        with pytest.raises(YumError, match="already installed"):
            client.install("fftw")

    def test_check_update_then_update(self, client, repo):
        client.install("gromacs")
        repo.add(mk("gromacs", "5.0.4", requires=(Requirement("openmpi"),)))
        pending = client.check_update()
        assert [u.name for u in pending] == ["gromacs"]
        assert pending[0].available_evr == "5.0.4-1"
        result = client.update()
        assert result is not None and len(result.upgraded) == 1
        assert client.update() is None  # now current

    def test_update_subset_only(self, client, repo):
        client.install("gromacs")
        repo.add(mk("fftw", "3.3.4"))
        repo.add(mk("openmpi", "1.8.1"))
        client.update("fftw")
        assert client.db.get("fftw").version == "3.3.4"
        assert client.db.get("openmpi").version == "1.6.4"

    def test_update_not_installed_rejected(self, client):
        with pytest.raises(DependencyError, match="not installed"):
            client.update("gromacs")

    def test_erase_protects_dependants(self, client):
        client.install("gromacs")
        with pytest.raises(DependencyError, match="required by"):
            client.erase("openmpi")

    def test_erase_cascade(self, client):
        client.install("gromacs")
        result = client.erase("openmpi", remove_dependants=True)
        assert {p.name for p in result.erased} == {"openmpi", "gromacs"}
        assert client.db.has("fftw")

    def test_obsoletes_replace_across_rename(self, client, repo):
        client.install("gromacs")
        repo.add(
            mk(
                "gromacs5",
                "5.0.4",
                requires=(Requirement("openmpi"),),
                obsoletes=(Requirement("gromacs", Flag.LT, "5.0"),),
            )
        )
        client.update()
        assert client.db.has("gromacs5")
        assert not client.db.has("gromacs")

    def test_repo_file_with_unreachable_baseurl_rejected(self, frontend_host):
        client = YumClient(frontend_host)
        with pytest.raises(YumError, match="unreachable"):
            client.configure_repo_file(
                "xsede.repo", XSEDE_REPO_STANZA.render(), available={}
            )

    def test_repo_file_lands_on_host(self, client):
        assert client.host.fs.exists("/etc/yum.repos.d/xsede.repo")

    def test_groupinstall_one_transaction(self, client):
        result = client.groupinstall("hpc", ["gromacs", "fftw"])
        assert result.change_count == 3
        assert len(client.history) == 1

    def test_history_accumulates(self, client, repo):
        client.install("fftw")
        client.install("openmpi")
        assert len(client.history) == 2

    def test_list_available_excludes_installed(self, client):
        client.install("fftw")
        available = client.list_available()
        assert "fftw" not in available and "gromacs" in available

    def test_mismatched_db_host_rejected(self, frontend_host, littlefe_machine):
        from repro.distro import CENTOS_6_5, Host

        other = Host(littlefe_machine.compute_nodes[0], CENTOS_6_5)
        with pytest.raises(YumError):
            YumClient(frontend_host, RpmDatabase(other))

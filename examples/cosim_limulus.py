#!/usr/bin/env python3
"""Co-simulation on one timeline: scheduler + power + MPI + Ganglia.

Before the unified kernel, each of these subsystems kept its own clock —
the scheduler an ad-hoc ``now_s``, MPI a float per rank, gmetad a poll
counter — and their timelines could not interleave.  This example runs all
of them on one :class:`~repro.sim.SimKernel`:

1. a Limulus HPC200 with power management on (idle blades power off, jobs
   pay the boot delay);
2. Ganglia's gmetad sampling every host as a *periodic kernel event*, so
   polls land between job events and observe the cluster mid-flight;
3. an MPI allreduce job whose rank timelines anchor at the job's (boot
   delayed) start time on the shared kernel;
4. every subsystem publishing typed events on the kernel's trace bus.

The trace serialises to JSONL deterministically: two runs with the same
seed produce byte-identical files (checked below; CI diffs them too).

Run with ``--trace cosim.jsonl`` to write the trace, then validate it with
``python -m repro.sim cosim.jsonl``.
"""

import argparse
import sys

from repro.core import build_limulus_cluster
from repro.monitoring import monitor_cluster
from repro.mpi import run_allreduce_job, world_for_job
from repro.scheduler import Job, PowerManagedScheduler
from repro.sim import SimKernel


def run_cosim(seed: int = 42, trace_path=None):
    """One co-simulated workday on the Limulus; returns the pieces."""
    cluster = build_limulus_cluster()
    kernel = SimKernel(seed=seed)
    scheduler = PowerManagedScheduler(
        cluster.machine, manage_power=True, boot_delay_s=60.0, kernel=kernel
    )
    gmetad = monitor_cluster(cluster, scheduler=scheduler, poll_period_s=15.0)
    gmetad.start_sampling()

    fabric = cluster.network.fabric
    profiles = {}

    def launch_mpi(job):
        """At the job's start time, run its MPI phase on the shared kernel."""

        def run():
            world = world_for_job(fabric, job, kernel=kernel)
            profiles[job.name] = run_allreduce_job(
                world, iterations=4, elements=262144,
                compute_s_per_iteration=0.05,
            )

        kernel.at(job.start_time_s, run, label=f"mpi:{job.name}")

    scheduler.on_job_start = (
        lambda job: launch_mpi(job) if job.name.startswith("mpi-") else None
    )

    # The seed shapes the workload through the kernel's RNG.
    rng = kernel.rng
    per_node = min(n.cores for n in cluster.machine.compute_nodes)
    jobs = [
        Job("mpi-allreduce", "scientist", cores=2 * per_node,
            walltime_limit_s=2 * 3600,
            runtime_s=900.0 + 60 * rng.randrange(4)),
        Job("serial-sweep", "student", cores=1,
            walltime_limit_s=3600, runtime_s=300.0 + 30 * rng.randrange(4)),
        Job("post-process", "scientist", cores=per_node,
            walltime_limit_s=3600, runtime_s=600.0 + 60 * rng.randrange(3)),
    ]
    for job in jobs:
        scheduler.submit(job)
    stats = scheduler.run_to_completion()

    # Two more polling periods so monitoring records the wind-down (nodes
    # back off), then stop the periodic sampler.
    kernel.run_until(kernel.now_s + 2 * gmetad.poll_period_s)
    gmetad.stop_sampling()

    if trace_path is not None:
        kernel.trace.write_jsonl(trace_path)
    return {
        "kernel": kernel,
        "scheduler": scheduler,
        "gmetad": gmetad,
        "stats": stats,
        "profiles": profiles,
        "jsonl": kernel.trace.to_jsonl(),
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write the JSONL trace here")
    args = parser.parse_args(argv if argv is not None else [])

    run = run_cosim(args.seed, trace_path=args.trace)
    kernel, scheduler, gmetad = run["kernel"], run["scheduler"], run["gmetad"]
    stats = run["stats"]

    print("=== One timeline, four subsystems ===")
    print(f"jobs: {stats.completed} completed, makespan "
          f"{stats.makespan_s / 60:.1f} min (mean wait {stats.mean_wait_s:.0f}s)")
    for name, profile in sorted(run["profiles"].items()):
        print(f"MPI {name}: {profile.ranks} ranks, "
              f"{profile.communication_fraction:.1%} communication, "
              f"{profile.parallel_efficiency:.1%} efficiency")
    print(f"energy: {scheduler.energy.total_kwh:.2f} kWh, "
          f"{scheduler.energy.off_node_seconds / 3600:.1f} node-hours off, "
          f"{scheduler.energy.boot_events} boots")
    print(f"monitoring: {len(gmetad.summaries)} poll cycles interleaved")
    print(f"kernel: {kernel.events_processed} events processed\n")

    print(gmetad.render_dashboard())

    print("\n=== Trace bus ===")
    print(kernel.trace.render_counters())

    again = run_cosim(args.seed)
    identical = again["jsonl"] == run["jsonl"]
    print(f"\nsame seed re-run, traces byte-identical: {identical}")
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(validate: python -m repro.sim {args.trace})")


def cluster_definition():
    """The co-simulated machine, for ``cluster-lint``."""
    from repro.analyze import ClusterDefinition
    from repro.hardware import build_limulus_hpc200
    from repro.scheduler import default_queue_for

    machine = build_limulus_hpc200().machine
    return ClusterDefinition(
        name="cosim-limulus",
        machine=machine,
        queues=(default_queue_for(machine),),
    )


if __name__ == "__main__":
    main(sys.argv[1:])

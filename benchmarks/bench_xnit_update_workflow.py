"""Section 3 workflow — XNIT setup and the update cycle.

Times the complete administrator workflow on a delivered Limulus: enable the
repository, integrate the full toolkit, then consume an upstream release
(0.0.8 -> 0.0.9) through check-update / staged apply.  Asserts the
workflow-level properties: non-destructive integration, updates visible
before application, and a fully converged environment at the end.
"""

from repro.core import (
    audit_host,
    build_limulus_cluster,
    build_xnit_repository,
    integrate_host,
    publish_release,
    setup_via_manual_repo_file,
    setup_via_repo_rpm,
)


def full_workflow():
    cluster = build_limulus_cluster()
    repo = build_xnit_repository("0.0.8")
    clients = cluster.all_clients()
    # setup: repo RPM on the frontend, manual path on the blades
    setup_via_repo_rpm(clients[0], repo)
    for client in clients[1:]:
        setup_via_manual_repo_file(client, repo)
    reports = [integrate_host(c, full_toolkit=True) for c in clients]
    # upstream publishes the 0.0.9 release
    publish_release(repo, "0.0.9")
    pending = clients[0].check_update()
    for client in clients:
        client.update()
        integrate_host(client, full_toolkit=True)  # pick up the 41 additions
    return cluster, clients, reports, pending


def test_xnit_update_workflow(benchmark, save_artifact):
    cluster, clients, reports, pending = benchmark(full_workflow)

    assert all(r.preexisting_untouched for r in reports)
    # the 0.0.9 Java bump was visible before being applied
    assert any(u.name == "java-1.7.0-openjdk" for u in pending)
    # everyone converged on the 0.0.9 catalogue
    audits = [
        audit_host(host, cluster.client_for(host).db)
        for host in cluster.hosts()
    ]
    assert all(abs(a.overall - 1.0) < 1e-9 for a in audits)
    # vendor stack intact on every node
    assert all(c.db.has("limulus-manage") for c in clients)

    lines = ["XNIT update workflow (Section 3) — final state", ""]
    for audit in audits:
        lines.append(audit.render())
        lines.append("")
    lines.append(f"updates visible at check-update: {len(pending)}")
    save_artifact("workflow_xnit_update", "\n".join(lines))

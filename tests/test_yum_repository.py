"""Repository, priorities, and .repo config tests."""

import pytest

from repro.errors import (
    PackageNotFoundError,
    RepoConfigError,
    RepoPriorityError,
    YumError,
)
from repro.rpm import Package, Requirement
from repro.yum import (
    DEFAULT_PRIORITY,
    RepoSet,
    RepoStanza,
    Repository,
    XSEDE_REPO_STANZA,
    parse_repo_file,
    render_repo_file,
)


def mk(name, version="1.0", **kw):
    return Package(name=name, version=version, **kw)


class TestRepository:
    def test_add_and_latest(self):
        repo = Repository("xsede")
        repo.add(mk("gromacs", "4.6.5"))
        repo.add(mk("gromacs", "5.0.4"))
        assert repo.latest("gromacs").version == "5.0.4"
        assert [p.version for p in repo.versions_of("gromacs")] == ["4.6.5", "5.0.4"]

    def test_duplicate_nevra_rejected(self):
        repo = Repository("xsede")
        repo.add(mk("x"))
        with pytest.raises(YumError, match="already published"):
            repo.add(mk("x"))

    def test_latest_missing_raises(self):
        with pytest.raises(PackageNotFoundError):
            Repository("r").latest("ghost")

    def test_remove_nevra(self):
        repo = Repository("r")
        repo.add(mk("x", "1.0"))
        repo.remove("x-1.0-1.x86_64")
        assert not repo.has("x")
        with pytest.raises(PackageNotFoundError):
            repo.remove("x-1.0-1.x86_64")

    def test_providers_of_capability(self):
        from repro.rpm import Capability

        repo = Repository("r")
        repo.add(mk("openmpi", provides=(Capability("mpi-impl"),)))
        repo.add(mk("mpich", provides=(Capability("mpi-impl"),)))
        providers = repo.providers_of(Requirement("mpi-impl"))
        assert [p.name for p in providers] == ["mpich", "openmpi"]

    def test_repomd_checksum_tracks_content(self):
        repo = Repository("r")
        before = repo.repomd_checksum()
        repo.add(mk("x"))
        after = repo.repomd_checksum()
        assert before != after
        assert after == repo.repomd_checksum()  # stable

    def test_priority_bounds(self):
        with pytest.raises(RepoPriorityError):
            Repository("r", priority=0)
        with pytest.raises(RepoPriorityError):
            Repository("r", priority=100)


class TestRepoSetPriorities:
    def make_pair(self, *, use_priorities=True):
        base = Repository("centos-base", priority=90)
        xsede = Repository("xsede", priority=50)
        # base carries a NEWER python than the XSEDE build
        base.add(mk("python", "2.7.99"))
        xsede.add(mk("python", "2.7.9"))
        xsede.add(mk("gromacs", "4.6.5"))
        return RepoSet([base, xsede], use_priorities=use_priorities)

    def test_priorities_shield_xsede_builds(self):
        repos = self.make_pair()
        # with the plugin, the xsede repo (better priority) wins the name
        assert repos.latest_by_name("python").version == "2.7.9"

    def test_without_plugin_newest_wins_regardless(self):
        repos = self.make_pair(use_priorities=False)
        assert repos.latest_by_name("python").version == "2.7.99"

    def test_names_union(self):
        repos = self.make_pair()
        assert repos.all_names() == {"python", "gromacs"}

    def test_disabled_repo_excluded(self):
        repos = self.make_pair()
        repos.get("xsede").enabled = False
        assert repos.latest_by_name("python").version == "2.7.99"
        with pytest.raises(PackageNotFoundError):
            repos.latest_by_name("gromacs")

    def test_duplicate_repo_id_rejected(self):
        repos = self.make_pair()
        with pytest.raises(YumError):
            repos.add_repo(Repository("xsede"))

    def test_repolist_sorted_by_priority(self):
        repos = self.make_pair()
        ids = [r[0] for r in repos.repolist()]
        assert ids == ["xsede", "centos-base"]


class TestRepoConfig:
    def test_parse_canonical_xsede_stanza(self):
        stanzas = parse_repo_file(XSEDE_REPO_STANZA.render())
        assert len(stanzas) == 1
        s = stanzas[0]
        assert s.repo_id == "xsede"
        assert s.baseurl == "http://cb-repo.iu.xsede.org/xsederepo/"
        assert s.priority == 50
        assert s.enabled and not s.gpgcheck

    def test_roundtrip(self):
        original = [
            XSEDE_REPO_STANZA,
            RepoStanza("epel", "Extra Packages", "http://epel/", priority=80),
        ]
        assert parse_repo_file(render_repo_file(original)) == original

    def test_comments_and_blanks_ignored(self):
        text = "# comment\n\n; another\n" + XSEDE_REPO_STANZA.render()
        assert len(parse_repo_file(text)) == 1

    def test_default_priority_when_absent(self):
        text = "[r]\nname=R\nbaseurl=http://r/\n"
        assert parse_repo_file(text)[0].priority == DEFAULT_PRIORITY

    @pytest.mark.parametrize(
        "text, message",
        [
            ("name=x\n", "before any"),
            ("[r]\nbaseurl=http://r/\n", "missing required key 'name'"),
            ("[r]\nname=R\n", "missing required key 'baseurl'"),
            ("[r]\nname=R\nbaseurl=u\nname=S\n", "duplicate key"),
            ("[r]\nname=R\nbaseurl=u\n[r]\nname=R\nbaseurl=u\n", "duplicate section"),
            ("[r]\nname=R\nbaseurl=u\nbogus=1\n", "unknown key"),
            ("[r]\nname=R\nbaseurl=u\nenabled=maybe\n", "boolean"),
            ("[r]\nname=R\nbaseurl=u\nnot a kv\n", "key=value"),
            ("", "no repository stanzas"),
            ("[]\nname=R\n", "empty section"),
        ],
    )
    def test_malformed_rejected(self, text, message):
        with pytest.raises(RepoConfigError, match=message):
            parse_repo_file(text)

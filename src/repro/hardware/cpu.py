"""CPU models for the simulated hardware substrate.

The paper's performance arithmetic (Tables 3–5) follows the TOP500 convention:

    Rpeak = cores x clock (GHz) x flops/cycle   [GFLOPS]

The paper's own numbers pin down flops/cycle = 16 for the Haswell-era parts:

* LittleFe (modified): 12 cores x 2.8 GHz x 16 = 537.6 GFLOPS  (Table 5)
* Limulus HPC200:      16 cores x 3.1 GHz x 16 = 793.6 GFLOPS  (Table 5)

(The Celeron G1840 lacks AVX2/FMA in real silicon, but the paper evidently
used the generic Haswell 16 flops/cycle figure; we reproduce the paper's
convention and note the discrepancy here rather than silently "fixing" it.)

Power figures come straight from Section 5.1: the Atom D510 draws 10.56 W
versus 43.06 W for the Celeron G1840, which is why the modified LittleFe needs
per-node power supplies and a low-profile CPU fan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError

__all__ = [
    "CpuModel",
    "Microarchitecture",
    "ATOM_D510",
    "CELERON_G1840",
    "I7_4770S",
    "XEON_E5_2670",
    "CPU_CATALOG",
    "get_cpu",
    "calibrated_cpu",
]


@dataclass(frozen=True)
class Microarchitecture:
    """A CPU microarchitecture family.

    ``flops_per_cycle`` is the double-precision FLOPs retired per core per
    cycle used for Rpeak accounting (the paper's convention, see module
    docstring).  ``isa`` is the instruction-set family; the paper argues x86
    compatibility is what makes LittleFe/Limulus useful for HPC teaching
    (unlike e.g. Raspberry Pi clusters, Section 8).
    """

    name: str
    flops_per_cycle: int
    isa: str = "x86_64"
    year: int = 2013

    def __post_init__(self) -> None:
        if self.flops_per_cycle <= 0:
            raise CatalogError(f"flops_per_cycle must be positive: {self}")


#: In-order Atom core: SSE2, 1 DP mul + 1 DP add per cycle at best.
BONNELL = Microarchitecture("Bonnell", flops_per_cycle=2, year=2008)
#: Westmere: SSE 128-bit, 4 DP flops/cycle.
WESTMERE = Microarchitecture("Westmere", flops_per_cycle=4, year=2010)
#: Sandy Bridge: AVX 256-bit, 8 DP flops/cycle.
SANDY_BRIDGE = Microarchitecture("Sandy Bridge", flops_per_cycle=8, year=2011)
#: Haswell: AVX2 + FMA, 16 DP flops/cycle (the paper's accounting basis).
HASWELL = Microarchitecture("Haswell", flops_per_cycle=16, year=2013)
#: The Raspberry Pi's core (Section 8's counterexample: not x86, so XCBC's
#: x86_64 RPMs will not install — "such solutions aren't as practical for
#: teaching real-world parallel languages or HPC applications").
ARM1176 = Microarchitecture("ARM1176JZF-S", flops_per_cycle=1, isa="armv6l", year=2012)


@dataclass(frozen=True)
class CpuModel:
    """A concrete CPU SKU.

    Attributes
    ----------
    model:
        Marketing name, e.g. ``"Intel Celeron G1840"``.
    arch:
        The :class:`Microarchitecture` the SKU belongs to.
    clock_ghz:
        Base clock in GHz (the paper's tables use base clocks).
    cores:
        Physical cores.
    threads:
        Hardware threads.  Section 5.1 notes the Celeron choice "eliminates
        the option of using hyperthreading", i.e. ``threads == cores``.
    tdp_watts:
        Thermal design power / typical draw used for the power budget.
    cache_mib:
        Last-level cache in MiB (the paper quotes 8 MB for the i7-4770S).
    socket:
        Socket name; must match the motherboard socket at assembly time.
    price_usd:
        Street price used by the cost model.
    """

    model: str
    arch: Microarchitecture
    clock_ghz: float
    cores: int
    threads: int
    tdp_watts: float
    cache_mib: float
    socket: str
    price_usd: float

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.threads < self.cores:
            raise CatalogError(
                f"invalid core/thread count for {self.model}: "
                f"cores={self.cores} threads={self.threads}"
            )
        if self.clock_ghz <= 0:
            raise CatalogError(f"invalid clock for {self.model}: {self.clock_ghz}")
        if self.tdp_watts <= 0:
            raise CatalogError(f"invalid TDP for {self.model}: {self.tdp_watts}")

    @property
    def has_hyperthreading(self) -> bool:
        """True if the SKU exposes more hardware threads than cores."""
        return self.threads > self.cores

    @property
    def rpeak_gflops(self) -> float:
        """Theoretical peak of one socket in GFLOPS (TOP500 convention)."""
        return self.cores * self.clock_ghz * self.arch.flops_per_cycle


#: Historical LittleFe v4 CPU (Section 5.1): 10.56 W system-on-board Atom.
ATOM_D510 = CpuModel(
    model="Intel Atom D510",
    arch=BONNELL,
    clock_ghz=1.66,
    cores=2,
    threads=4,
    tdp_watts=10.56,
    cache_mib=1.0,
    socket="FCBGA559",
    price_usd=63.0,
)

#: The modified-LittleFe CPU (Section 5.1): Haswell Celeron, no HT, 43.06 W.
CELERON_G1840 = CpuModel(
    model="Intel Celeron G1840",
    arch=HASWELL,
    clock_ghz=2.8,
    cores=2,
    threads=2,
    tdp_watts=43.06,
    cache_mib=2.0,
    socket="LGA-1150",
    price_usd=52.0,
)

#: The Limulus HPC200 CPU (Section 5.2): 3.10 GHz, 8 MB cache, 65 W Haswell.
I7_4770S = CpuModel(
    model="Intel Core i7-4770S",
    arch=HASWELL,
    clock_ghz=3.1,
    cores=4,
    threads=8,
    tdp_watts=65.0,
    cache_mib=8.0,
    socket="LGA-1150",
    price_usd=305.0,
)

#: Representative XSEDE-site CPU (e.g. Montana State's Hyalite nodes):
#: 576 cores x 2.6 GHz x 8 flops/cycle = 11.98 TF, matching Table 3 exactly.
XEON_E5_2670 = CpuModel(
    model="Intel Xeon E5-2670",
    arch=SANDY_BRIDGE,
    clock_ghz=2.6,
    cores=8,
    threads=16,
    tdp_watts=115.0,
    cache_mib=20.0,
    socket="LGA-2011",
    price_usd=1552.0,
)

#: The Raspberry Pi Model B SoC — the Section 8 comparison point.
BCM2835 = CpuModel(
    model="Broadcom BCM2835 (Raspberry Pi)",
    arch=ARM1176,
    clock_ghz=0.7,
    cores=1,
    threads=1,
    tdp_watts=2.5,
    cache_mib=0.125,
    socket="FCBGA-SoC",
    price_usd=35.0,
)

#: Westmere-era site CPU (Marshall University's pre-GPU compute partition).
XEON_X5660 = CpuModel(
    model="Intel Xeon X5660",
    arch=WESTMERE,
    clock_ghz=2.8,
    cores=6,
    threads=12,
    tdp_watts=95.0,
    cache_mib=12.0,
    socket="LGA-1366",
    price_usd=1219.0,
)

CPU_CATALOG: dict[str, CpuModel] = {
    cpu.model: cpu
    for cpu in (
        ATOM_D510,
        CELERON_G1840,
        I7_4770S,
        XEON_E5_2670,
        XEON_X5660,
        BCM2835,
    )
}


def get_cpu(model: str) -> CpuModel:
    """Look up a CPU SKU by its marketing name.

    Raises :class:`~repro.errors.CatalogError` for unknown models, listing
    the known ones to make typos easy to spot.
    """
    try:
        return CPU_CATALOG[model]
    except KeyError:
        known = ", ".join(sorted(CPU_CATALOG))
        raise CatalogError(f"unknown CPU model {model!r}; known: {known}") from None


def calibrated_cpu(
    name: str,
    *,
    cores: int,
    target_rpeak_gflops: float,
    flops_per_cycle: int = 8,
    threads: int | None = None,
    tdp_watts: float = 95.0,
    socket: str = "LGA-2011",
    price_usd: float = 1000.0,
) -> CpuModel:
    """Build a synthetic CPU whose socket Rpeak hits an observed target.

    Table 3 publishes nodes/cores/Rpeak for real campus deployments without
    naming the silicon.  To *rebuild* those sites in simulation we synthesise
    a CPU whose clock is solved from the published figures::

        clock = Rpeak / (cores x flops_per_cycle)

    ``target_rpeak_gflops`` is the peak of **one socket** (total site Rpeak
    divided by total socket count).  This is a documented substitution — see
    DESIGN.md — not an attempt to guess the actual hardware.
    """
    if cores <= 0:
        raise CatalogError(f"calibrated CPU needs positive cores, got {cores}")
    if target_rpeak_gflops <= 0:
        raise CatalogError(
            f"calibrated CPU needs positive target Rpeak, got {target_rpeak_gflops}"
        )
    clock = target_rpeak_gflops / (cores * flops_per_cycle)
    arch = Microarchitecture(
        name=f"calibrated/{flops_per_cycle}flops",
        flops_per_cycle=flops_per_cycle,
    )
    return CpuModel(
        model=name,
        arch=arch,
        clock_ghz=clock,
        cores=cores,
        threads=threads if threads is not None else cores * 2,
        tdp_watts=tdp_watts,
        cache_mib=12.0,
        socket=socket,
        price_usd=price_usd,
    )

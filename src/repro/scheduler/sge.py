"""An SGE-like scheduler: slot-based with functional-ticket shares.

The third of XCBC's "choose one" resource managers.  Grid Engine thinks in
*slots* (we map one slot to one core) and orders jobs by functional tickets:
each department/user gets a ticket pool, and a job's share is its user's
tickets divided by that user's pending job count — so one user flooding the
queue does not starve others even without fair-share history.
"""

from __future__ import annotations

from ..errors import SchedulerError
from ..sim import SimKernel
from .base import BaseScheduler, ClusterResources
from .job import Job

__all__ = ["SgeScheduler"]

#: tickets granted to users with no explicit entry
DEFAULT_TICKETS = 100


class SgeScheduler(BaseScheduler):
    """Functional-ticket ordering, no backfill (classic sge_schedd)."""

    scheduler_name = "sge"
    backfill = False

    def __init__(
        self, resources: ClusterResources, *, kernel: SimKernel | None = None
    ) -> None:
        super().__init__(resources, kernel=kernel)
        self.tickets: dict[str, int] = {}

    def set_tickets(self, user: str, tickets: int) -> None:
        """qconf: assign a user's functional tickets."""
        if tickets <= 0:
            raise SchedulerError(f"tickets must be positive, got {tickets}")
        self.tickets[user] = tickets

    def _share_of(self, job: Job) -> float:
        pool = self.tickets.get(job.user, DEFAULT_TICKETS)
        pending_of_user = sum(1 for j in self.pending if j.user == job.user)
        return pool / max(pending_of_user, 1)

    def _schedulable_order(self) -> list[Job]:
        return sorted(
            self.pending,
            key=lambda j: (-self._share_of(j), j.submit_time_s, j.job_id),
        )

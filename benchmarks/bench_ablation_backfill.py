"""Ablation 3 — Maui's EASY backfill vs plain-Torque FIFO.

XCBC pairs Torque with Maui (Table 2) rather than shipping bare Torque.
The ablation replays a mixed campus trace through both and regenerates the
utilisation/wait comparison; backfill is why the Maui pairing matters.
"""

import pytest

from repro.hardware import build_littlefe_modified
from repro.scheduler import ClusterResources, Job, MauiScheduler, TorqueScheduler


def campus_trace(scheduler):
    """A realistic mix: one wide long job, a blocked huge job, many smalls."""
    scheduler.submit(Job("wide-md", "alice", cores=8,
                         walltime_limit_s=7200, runtime_s=3600))
    scheduler.submit(Job("huge-assembly", "bob", cores=10,
                         walltime_limit_s=7200, runtime_s=1800))
    for i in range(8):
        scheduler.submit(Job(f"small-{i}", "carol", cores=2,
                             walltime_limit_s=1200, runtime_s=300))
    return scheduler.run_to_completion()


def run_both():
    machine = build_littlefe_modified().machine
    fifo = TorqueScheduler(ClusterResources(machine))
    maui = MauiScheduler(ClusterResources(machine))
    return campus_trace(fifo), campus_trace(maui)


def test_ablation_backfill(benchmark, save_artifact):
    fifo_stats, maui_stats = benchmark(run_both)
    cores = 10

    lines = [
        "Ablation: EASY backfill (Torque+Maui) vs strict FIFO (bare Torque)",
        "",
        f"{'':<22}{'FIFO':>12}{'Maui backfill':>15}",
        f"{'makespan (s)':<22}{fifo_stats.makespan_s:>12.0f}"
        f"{maui_stats.makespan_s:>15.0f}",
        f"{'mean wait (s)':<22}{fifo_stats.mean_wait_s:>12.0f}"
        f"{maui_stats.mean_wait_s:>15.0f}",
        f"{'utilisation':<22}{fifo_stats.utilization(cores):>11.0%}"
        f"{maui_stats.utilization(cores):>14.0%}",
    ]
    save_artifact("ablation_backfill", "\n".join(lines))

    # same work completed either way
    assert fifo_stats.completed == maui_stats.completed == 10
    # backfill strictly improves the trace
    assert maui_stats.mean_wait_s < fifo_stats.mean_wait_s
    assert maui_stats.makespan_s <= fifo_stats.makespan_s
    assert maui_stats.utilization(cores) > fifo_stats.utilization(cores)

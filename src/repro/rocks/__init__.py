"""The Rocks-like provisioner: rolls, kickstart graph, node database,
insert-ethers discovery, the from-scratch installer, and update rolls.

This is the machinery under XCBC's "all at once, from scratch" path.
"""

from .database import HostRecord, InstallState, RocksDatabase
from .distribution import apply_update_roll, create_update_roll
from .insert_ethers import InsertEthers
from .installer import ProvisionedCluster, RocksInstaller, install_cluster
from .kickstart import GraphNode, KickstartGraph, Profile
from .roll import Roll, RollGraphFragment
from .rolls_catalog import (
    TABLE1_BASICS,
    TABLE1_OPTIONAL_ROLLS,
    all_standard_rolls,
    base_os_packages,
    base_roll,
    job_management_rolls,
    optional_rolls,
)

__all__ = [
    "Roll",
    "RollGraphFragment",
    "KickstartGraph",
    "GraphNode",
    "Profile",
    "RocksDatabase",
    "HostRecord",
    "InstallState",
    "InsertEthers",
    "RocksInstaller",
    "ProvisionedCluster",
    "install_cluster",
    "create_update_roll",
    "apply_update_roll",
    "all_standard_rolls",
    "base_roll",
    "base_os_packages",
    "job_management_rolls",
    "optional_rolls",
    "TABLE1_BASICS",
    "TABLE1_OPTIONAL_ROLLS",
]

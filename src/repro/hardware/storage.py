"""Storage device models (HDD / SSD / mSATA).

Storage is load-bearing in Section 5.1: Rocks does not support diskless
installation, so turning a LittleFe into an XCBC training machine *requires*
adding a drive to every node.  The paper weighs a 2.5-inch laptop drive
against an internal mSATA module (the build uses Crucial 128 GB mSATA drives,
ref [29]) — mSATA wins on space and mechanical simplicity at the cost of a
little extra power per node.

The :class:`StorageModel.form_factor` drives the chassis fit check and
``mount`` distinguishes board-mounted (mSATA) from chassis-mounted drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import CatalogError

__all__ = [
    "StorageKind",
    "MountKind",
    "StorageModel",
    "CRUCIAL_M550_128_MSATA",
    "LAPTOP_HDD_500",
    "WD_RED_2TB",
    "STORAGE_CATALOG",
    "get_storage",
]


class StorageKind(str, Enum):
    """Broad device technology."""

    HDD = "hdd"
    SSD = "ssd"


class MountKind(str, Enum):
    """Where the device physically lives."""

    #: plugs into an mSATA slot directly on the motherboard
    BOARD = "board"
    #: occupies a drive bay / must be physically secured in the chassis
    CHASSIS = "chassis"


@dataclass(frozen=True)
class StorageModel:
    """A storage device SKU."""

    model: str
    kind: StorageKind
    mount: MountKind
    capacity_bytes: int
    form_factor: str  # "mSATA", "2.5in", "3.5in"
    power_watts: float
    price_usd: float
    read_mb_s: float = 300.0
    write_mb_s: float = 200.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise CatalogError(f"storage {self.model} has non-positive capacity")
        if self.power_watts < 0:
            raise CatalogError(f"storage {self.model} has negative power draw")


#: The drive the modified LittleFe uses (Section 5.1, ref [29]).
CRUCIAL_M550_128_MSATA = StorageModel(
    model="Crucial M550 128GB mSATA",
    kind=StorageKind.SSD,
    mount=MountKind.BOARD,
    capacity_bytes=128 * 10**9,
    form_factor="mSATA",
    power_watts=3.0,
    price_usd=75.0,
    read_mb_s=550.0,
    write_mb_s=350.0,
)

#: The alternative the paper considers: a physically mounted 2.5" laptop drive.
LAPTOP_HDD_500 = StorageModel(
    model="2.5in laptop HDD 500GB",
    kind=StorageKind.HDD,
    mount=MountKind.CHASSIS,
    capacity_bytes=500 * 10**9,
    form_factor="2.5in",
    power_watts=2.5,
    price_usd=45.0,
    read_mb_s=100.0,
    write_mb_s=90.0,
)

#: Bulk storage for head nodes (Limulus ships with local RAID storage).
WD_RED_2TB = StorageModel(
    model="WD Red 2TB 3.5in",
    kind=StorageKind.HDD,
    mount=MountKind.CHASSIS,
    capacity_bytes=2 * 10**12,
    form_factor="3.5in",
    power_watts=5.0,
    price_usd=95.0,
    read_mb_s=150.0,
    write_mb_s=140.0,
)

STORAGE_CATALOG: dict[str, StorageModel] = {
    s.model: s for s in (CRUCIAL_M550_128_MSATA, LAPTOP_HDD_500, WD_RED_2TB)
}


def get_storage(model: str) -> StorageModel:
    """Look up a storage SKU by name, raising :class:`CatalogError` if unknown."""
    try:
        return STORAGE_CATALOG[model]
    except KeyError:
        known = ", ".join(sorted(STORAGE_CATALOG))
        raise CatalogError(
            f"unknown storage model {model!r}; known: {known}"
        ) from None

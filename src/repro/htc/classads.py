"""ClassAd-lite: HTCondor's matchmaking language, reduced to its core.

Table 1 ships the **htcondor** roll ("HTCondor high-throughput computing
workload management system").  HTCondor's defining mechanism is symmetric
matchmaking: machines advertise attributes and a ``requirements`` expression
over job attributes; jobs do the same over machine attributes; a match needs
both requirements true, then ``rank`` orders the candidates.

Expressions here are restricted to conjunctions of comparisons over named
attributes — enough to express the real-world policies the roll is used for
(memory floors, architecture pins, owner-idle scavenging) while staying
honestly testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import ReproError

__all__ = ["HtcError", "Op", "Condition", "Requirements", "ClassAd"]


class HtcError(ReproError):
    """Invalid HTC operation."""


class Op(str, Enum):
    """Comparison operators a condition may use."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True)
class Condition:
    """One comparison: ``other.<attribute> <op> <value>``."""

    attribute: str
    op: Op
    value: object

    def evaluate(self, ad: "ClassAd") -> bool:
        """True if the condition holds against ``ad``'s attributes.

        A missing attribute makes the condition false (HTCondor's UNDEFINED
        propagates to not-matched in requirements position).
        """
        if self.attribute not in ad.attributes:
            return False
        have = ad.attributes[self.attribute]
        want = self.value
        try:
            if self.op is Op.EQ:
                return have == want
            if self.op is Op.NE:
                return have != want
            if self.op is Op.LT:
                return have < want  # type: ignore[operator]
            if self.op is Op.LE:
                return have <= want  # type: ignore[operator]
            if self.op is Op.GT:
                return have > want  # type: ignore[operator]
            if self.op is Op.GE:
                return have >= want  # type: ignore[operator]
        except TypeError:
            return False
        raise AssertionError(f"unhandled op {self.op}")  # pragma: no cover

    def __str__(self) -> str:
        return f"{self.attribute} {self.op.value} {self.value!r}"


@dataclass(frozen=True)
class Requirements:
    """A conjunction of conditions (empty = always true)."""

    conditions: tuple[Condition, ...] = ()

    def evaluate(self, ad: "ClassAd") -> bool:
        return all(c.evaluate(ad) for c in self.conditions)

    def __str__(self) -> str:
        if not self.conditions:
            return "TRUE"
        return " && ".join(str(c) for c in self.conditions)


@dataclass
class ClassAd:
    """A named bag of attributes plus requirements and a rank attribute."""

    name: str
    attributes: dict[str, object] = field(default_factory=dict)
    requirements: Requirements = field(default_factory=Requirements)
    #: attribute of the OTHER ad used to order candidates (higher better);
    #: empty string = indifferent
    rank_attribute: str = ""

    def matches(self, other: "ClassAd") -> bool:
        """Symmetric match: both sides' requirements hold."""
        return self.requirements.evaluate(other) and other.requirements.evaluate(self)

    def rank_of(self, other: "ClassAd") -> float:
        """This ad's preference for ``other`` (0 when indifferent)."""
        if not self.rank_attribute:
            return 0.0
        value = other.attributes.get(self.rank_attribute, 0)
        try:
            return float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return 0.0

"""Torque + Maui: the default XCBC resource manager and scheduler.

Table 2 lists "maui, torque" under Scheduler and Resource Manager — Torque
tracks the nodes and jobs (pbs_server/pbs_mom) while Maui makes the
decisions.  Plain Torque (no Maui) is strict FIFO; Maui adds priority
ordering and EASY backfill.  Both flavours are exposed so the backfill
ablation bench can compare them.
"""

from __future__ import annotations

from ..errors import SchedulerError
from ..sim import SimKernel
from .base import BaseScheduler, ClusterResources
from .job import Job

__all__ = ["TorqueScheduler", "MauiScheduler"]


class TorqueScheduler(BaseScheduler):
    """pbs_server's built-in scheduler: strict FIFO, no backfill."""

    scheduler_name = "torque"
    backfill = False

    def _schedulable_order(self) -> list[Job]:
        return sorted(self.pending, key=lambda j: (j.submit_time_s, j.job_id))


class MauiScheduler(BaseScheduler):
    """Maui on top of Torque: priority + queue time ordering, EASY backfill.

    Priority is ``job.priority`` (higher first) with submit time as the
    tie-break; ``qos_boost`` lets tests model an admin bumping a job.
    """

    scheduler_name = "torque+maui"
    backfill = True

    def __init__(
        self, resources: ClusterResources, *, kernel: SimKernel | None = None
    ) -> None:
        super().__init__(resources, kernel=kernel)
        self._qos_boost: dict[int, int] = {}

    def boost(self, job: Job, amount: int) -> None:
        """setqos: add priority to one job (admin action)."""
        if amount <= 0:
            raise SchedulerError("boost must be positive")
        self._qos_boost[job.job_id] = self._qos_boost.get(job.job_id, 0) + amount

    def effective_priority(self, job: Job) -> int:
        return job.priority + self._qos_boost.get(job.job_id, 0)

    def _schedulable_order(self) -> list[Job]:
        return sorted(
            self.pending,
            key=lambda j: (-self.effective_priority(j), j.submit_time_s, j.job_id),
        )

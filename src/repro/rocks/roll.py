"""Rolls: Rocks' unit of software distribution.

A roll bundles packages with kickstart-graph fragments.  "Using the XSEDE
roll during the Rocks cluster install will add the packages necessary for an
XSEDE-compatible basic cluster" (Section 3) — mechanically, the roll's graph
nodes attach to the frontend/compute profiles so every appliance built
afterwards carries the roll's software.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RollError
from ..rpm.package import Package
from .kickstart import GraphNode, KickstartGraph, Profile

__all__ = ["Roll", "RollGraphFragment"]


@dataclass(frozen=True)
class RollGraphFragment:
    """One graph node contributed by a roll plus where it attaches.

    ``attach_to`` lists the appliance profiles (or other node names) that
    gain an edge to this node.
    """

    node_name: str
    packages: tuple[str, ...]
    attach_to: tuple[str, ...] = (Profile.FRONTEND, Profile.COMPUTE)
    enable_services: tuple[str, ...] = ()
    post_actions: tuple[str, ...] = ()


@dataclass(frozen=True)
class Roll:
    """A named, versioned roll."""

    name: str
    version: str
    summary: str
    packages: tuple[Package, ...]
    fragments: tuple[RollGraphFragment, ...]
    optional: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise RollError("roll name must be non-empty")
        declared = {p.name for p in self.packages}
        for fragment in self.fragments:
            missing = [p for p in fragment.packages if p not in declared]
            if missing:
                raise RollError(
                    f"roll {self.name}: graph node {fragment.node_name!r} "
                    f"references packages the roll does not carry: {missing}"
                )

    def apply_to_graph(self, graph: KickstartGraph) -> None:
        """Attach this roll's fragments to a kickstart graph."""
        for fragment in self.fragments:
            graph.add_node(
                GraphNode(
                    name=fragment.node_name,
                    packages=list(fragment.packages),
                    enable_services=list(fragment.enable_services),
                    post_actions=list(fragment.post_actions),
                    roll=self.name,
                )
            )
            for parent in fragment.attach_to:
                graph.add_edge(parent, fragment.node_name)

    def package_names(self) -> list[str]:
        """Names of every package the roll carries, sorted."""
        return sorted(p.name for p in self.packages)

"""Smoke tests: every shipped example runs to completion and prints its
headline content.  The examples double as integration tests of the public
API — if one breaks, a user-facing walkthrough broke."""

import importlib.util
import io
import pathlib
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    """Import an example module and run its main(), capturing stdout."""
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        spec.loader.exec_module(module)
        module.main()
    return buffer.getvalue()


def test_quickstart():
    output = run_example("quickstart")
    assert "537.6 GFLOPS" in output
    assert "OVERALL" in output and "100.0%" in output
    assert "PASSED" in output  # the real HPL residual check


def test_littlefe_xcbc_from_scratch():
    output = run_example("littlefe_xcbc_from_scratch")
    assert "Rocks refuses it" in output
    assert "Rosewill" in output
    assert "[slot 5]" in output  # the rendered frame


def test_limulus_xnit_retrofit():
    output = run_example("limulus_xnit_retrofit")
    assert "Final compatibility (0.0.9 catalogue): 100.0%" in output
    assert "R available on the frontend: True" in output


def test_campus_bridging_migration():
    output = run_example("campus_bridging_migration")
    assert "Command portability: 100%" in output
    assert "completed" in output


def test_training_workshop():
    output = run_example("training_workshop")
    assert "all steps passed" in output
    assert "Teaching moments" in output


def test_cosim_limulus():
    output = run_example("cosim_limulus")
    assert "traces byte-identical: True" in output
    assert "monitor.cycle" in output  # the trace-bus counter table
    assert "ranks" in output and "communication" in output


def test_deskside_research():
    output = run_example("deskside_research")
    assert "crossover" in output
    assert "100-point parameter study" in output


def test_cluster_shell_session():
    output = run_example("cluster_shell_session")
    assert "0 failures" in output
    assert "rocks list host" in output
    assert "compute-0-[0-2]" in output          # nodeset --fold
    assert "compute-0-[0-4]: CentOS 6.5" in output  # clubak folding


def test_rolling_xnit_update():
    output = run_example("rolling_xnit_update")
    assert "traces byte-identical: True" in output
    assert "auto-paused after wave" in output
    assert "exceed max_failures=100" in output
    assert "rack_failures_limit=50" in output       # rack failure domain
    assert "final state: succeeded" in output       # resumed and finished
    assert "compute-19-[0-207]" in output           # folded failed NodeSet
    assert "compute-19-[208-399]" in output         # folded skipped remnant
    assert "peak in-flight workers: 64 (bound: 64)" in output


def test_fleet_wave_install():
    output = run_example("fleet_wave_install")
    assert "traces byte-identical: True" in output
    assert "compute-0-[0-63]" in output      # folded wave addresses
    assert "dead: ['compute-0-17']" in output  # hierarchical dead-host path


def test_update_storm():
    output = run_example("update_storm")
    assert "traces byte-identical: True" in output
    assert "goodput 100.0%" in output
    assert "invariant audit: clean" in output
    assert "repod.coalesce" in output and "repod.stale" in output
    assert "repod.shed" in output and "repod.retry_budget" in output


def test_lazy_delivery():
    output = run_example("lazy_delivery")
    assert "traces byte-identical: True" in output
    assert "confluence audit: clean" in output
    assert "deduplicated against v1" in output
    assert "cas.publish" in output and "cas.rollback" in output
    assert "cas.replicate" in output and "cas.fetch" in output


def test_rebuild_table3_fleet():
    output = run_example("rebuild_table3_fleet")
    assert "304   2708  49.61" in output
    assert "10.1x growth" in output
    assert "300 TB over 20 OSTs" in output

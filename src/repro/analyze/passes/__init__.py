"""Analyzer passes: one module per declarative layer, plus the simlint
``source_*`` family that lints the repro source tree itself.

Importing this package registers every rule in
:data:`repro.analyze.registry.RULES`; the engine holds the ordered pass
list for definition passes and :mod:`repro.analyze.source` the one for
source passes.  Definition passes expose ``run(definition, emit)``; source
passes expose ``run(tree, path, emit)`` over a parsed :mod:`ast` module —
``emit`` is the engine-provided diagnostic sink either way.
"""

from .. import txn as _txn  # noqa: F401 - registers the TX7xx catalogue
from . import hardware, kickstart, network, repos, rpmdeps, scheduler
from . import source_determinism, source_epochs, source_traceorder

__all__ = [
    "kickstart",
    "repos",
    "rpmdeps",
    "network",
    "scheduler",
    "hardware",
    "source_determinism",
    "source_epochs",
    "source_traceorder",
]

"""Yum repositories: package collections with metadata and priorities.

The XSEDE Yum repository (XNIT's distribution channel, refs [11, 13, 19])
is modelled as a :class:`Repository` holding multiple versions per package
name.  ``priority`` implements the semantics of ``yum-plugin-priorities``,
which the paper's setup instructions require installing (Section 3): when
several repositories offer a package name, only repositories with the best
(numerically lowest) priority for that name contribute candidates — this is
what stops the base OS from shadowing the XSEDE builds (and is ablated in
``benchmarks/bench_ablation_priorities.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..errors import PackageNotFoundError, RepoPriorityError, YumError
from ..rpm.package import Package, Requirement

__all__ = ["Repository", "RepoSet", "DEFAULT_PRIORITY"]

#: yum-plugin-priorities default when a repo declares none.
DEFAULT_PRIORITY = 99


class Repository:
    """One yum repository."""

    def __init__(
        self,
        repo_id: str,
        *,
        name: str = "",
        baseurl: str = "",
        priority: int = DEFAULT_PRIORITY,
        enabled: bool = True,
    ) -> None:
        if not repo_id:
            raise YumError("repository id must be non-empty")
        if not 1 <= priority <= 99:
            raise RepoPriorityError(
                f"repo {repo_id}: priority must be in 1..99, got {priority}"
            )
        self.repo_id = repo_id
        self.name = name or repo_id
        self.baseurl = baseurl or f"http://repo.example.org/{repo_id}/"
        self.priority = priority
        self.enabled = enabled
        self._packages: dict[str, list[Package]] = {}
        self.revision = 0

    # -- publishing ----------------------------------------------------------

    def add(self, pkg: Package) -> None:
        """Publish a package (a new NEVRA; re-publishing an identical NEVRA
        is rejected to keep repository history honest)."""
        versions = self._packages.setdefault(pkg.name, [])
        if any(v.nevra == pkg.nevra for v in versions):
            raise YumError(f"repo {self.repo_id}: {pkg.nevra} already published")
        versions.append(pkg)
        versions.sort(key=lambda p: p.evr)
        self.revision += 1

    def add_all(self, pkgs: list[Package]) -> None:
        """Publish many packages."""
        for pkg in pkgs:
            self.add(pkg)

    def remove(self, nevra: str) -> None:
        """Withdraw one published NEVRA."""
        for name, versions in self._packages.items():
            for pkg in versions:
                if pkg.nevra == nevra:
                    versions.remove(pkg)
                    if not versions:
                        del self._packages[name]
                    self.revision += 1
                    return
        raise PackageNotFoundError(f"repo {self.repo_id}: no such NEVRA {nevra}")

    # -- queries ---------------------------------------------------------------

    def names(self) -> set[str]:
        """All published package names."""
        return set(self._packages)

    def versions_of(self, name: str) -> list[Package]:
        """All published versions of a name, oldest first."""
        return list(self._packages.get(name, []))

    def latest(self, name: str) -> Package:
        """Newest published version of a name."""
        versions = self._packages.get(name)
        if not versions:
            raise PackageNotFoundError(
                f"repo {self.repo_id}: no package named {name}"
            )
        return versions[-1]

    def has(self, name: str) -> bool:
        return name in self._packages

    def providers_of(self, req: Requirement) -> list[Package]:
        """Every published package satisfying ``req``."""
        out = []
        for versions in self._packages.values():
            out.extend(p for p in versions if p.satisfies(req))
        return sorted(out, key=lambda p: (p.name, p.evr))

    def all_packages(self) -> list[Package]:
        """Every published package, sorted by (name, EVR)."""
        out = []
        for name in sorted(self._packages):
            out.extend(self._packages[name])
        return out

    def package_count(self) -> int:
        """Total published NEVRAs."""
        return sum(len(v) for v in self._packages.values())

    def total_size_bytes(self) -> int:
        """Sum of payload sizes (drives the mirror bandwidth model)."""
        return sum(p.size_bytes for p in self.all_packages())

    def repomd_checksum(self) -> str:
        """Stable fingerprint of the current metadata (changes iff content
        changes) — what a mirror compares to decide whether to resync."""
        digest = hashlib.sha256()
        for pkg in self.all_packages():
            digest.update(pkg.nevra.encode())
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Repository {self.repo_id} pkgs={self.package_count()}>"


class RepoSet:
    """The enabled repository configuration of one host, with priorities.

    Candidate selection applies yum-plugin-priorities: for a given package
    *name*, only repositories with the best (lowest) priority offering that
    name contribute.  With the plugin disabled (``use_priorities=False``),
    all enabled repositories contribute and the newest EVR wins regardless of
    origin — the failure mode the ablation bench demonstrates.
    """

    def __init__(self, repos: list[Repository] | None = None, *, use_priorities: bool = True):
        self._repos: dict[str, Repository] = {}
        self.use_priorities = use_priorities
        for repo in repos or []:
            self.add_repo(repo)

    def add_repo(self, repo: Repository) -> None:
        if repo.repo_id in self._repos:
            raise YumError(f"duplicate repo id {repo.repo_id}")
        self._repos[repo.repo_id] = repo

    def remove_repo(self, repo_id: str) -> None:
        if repo_id not in self._repos:
            raise YumError(f"no such repo {repo_id}")
        del self._repos[repo_id]

    def get(self, repo_id: str) -> Repository:
        try:
            return self._repos[repo_id]
        except KeyError:
            raise YumError(f"no such repo {repo_id}") from None

    def enabled_repos(self) -> list[Repository]:
        """Enabled repositories sorted by (priority, id)."""
        return sorted(
            (r for r in self._repos.values() if r.enabled),
            key=lambda r: (r.priority, r.repo_id),
        )

    def repolist(self) -> list[tuple[str, int, int]]:
        """``yum repolist``: (id, priority, package count) for enabled repos."""
        return [
            (r.repo_id, r.priority, r.package_count()) for r in self.enabled_repos()
        ]

    # -- candidate selection -----------------------------------------------------

    def candidates_by_name(self, name: str) -> list[Package]:
        """All candidate versions of ``name`` after priority filtering."""
        offering = [r for r in self.enabled_repos() if r.has(name)]
        if not offering:
            return []
        if self.use_priorities:
            best = min(r.priority for r in offering)
            offering = [r for r in offering if r.priority == best]
        out: list[Package] = []
        seen: set[str] = set()
        for repo in offering:
            for pkg in repo.versions_of(name):
                if pkg.nevra not in seen:
                    seen.add(pkg.nevra)
                    out.append(pkg)
        return sorted(out, key=lambda p: p.evr)

    def latest_by_name(self, name: str) -> Package:
        """Newest candidate of ``name`` (after priority filtering)."""
        candidates = self.candidates_by_name(name)
        if not candidates:
            raise PackageNotFoundError(f"no package {name} in any enabled repo")
        return candidates[-1]

    def providers_of(self, req: Requirement) -> list[Package]:
        """All candidates satisfying ``req``, priority-filtered per name."""
        names: set[str] = set()
        for repo in self.enabled_repos():
            for pkg in repo.providers_of(req):
                names.add(pkg.name)
        out: list[Package] = []
        for name in sorted(names):
            out.extend(p for p in self.candidates_by_name(name) if p.satisfies(req))
        return out

    def all_names(self) -> set[str]:
        """Union of names across enabled repositories."""
        names: set[str] = set()
        for repo in self.enabled_repos():
            names |= repo.names()
        return names

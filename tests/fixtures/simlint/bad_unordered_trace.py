"""Known-bad fixture: unordered iteration feeding order sinks (SL104)."""


def publish(bus, names):
    pending = {name for name in names if name}
    for name in pending:  # SL104: set iteration into bus.emit
        bus.emit("node.up", t_s=0.0, subsystem="demo", name=name)


def schedule_all(kernel, hosts):
    targets = set(hosts)
    for host in targets:  # SL104: set iteration into kernel.at
        kernel.at(5.0, lambda host=host: None)


class Sweeper:
    def __init__(self, members):
        self.members = set(members)

    def sweep(self, bus):
        for member in self.members:  # SL104: set-typed attribute
            bus.emit("sweep", t_s=1.0, subsystem="demo", who=member)


def _dirty(names):
    return set(names)


def flush(bus, names):
    for name in _dirty(names):  # SL104: same-file set-returning helper
        bus.emit("flush", t_s=2.0, subsystem="demo", name=name)

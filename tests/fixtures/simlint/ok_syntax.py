"""Near-miss fixture for SL000: a perfectly ordinary module."""

VALUE = 1


def fine():
    return VALUE

"""Table 3 storage in action: Lustre striping on Montana's Hyalite.

Regenerates the striping tuning curve (aggregate I/O time vs stripe count
and client count) for a 2 TB dataset on the published 300 TB filesystem —
the ``lfs setstripe`` lesson every Lustre site teaches its users.
"""

import pytest

from repro.pfs import montana_hyalite_storage


def tuning_curve():
    stripe_counts = [1, 2, 4, 8, 16]
    client_counts = [1, 4, 16, 64]
    fs = montana_hyalite_storage()
    table = {}
    size = 2 * 10**12
    for stripes in stripe_counts:
        path = f"/hyalite/dataset-s{stripes}"
        fs.create(path, size, stripe_count=stripes)
        table[stripes] = [
            fs.io_time_s(path, clients=c) for c in client_counts
        ]
    return fs, stripe_counts, client_counts, table


def test_pfs_striping_curve(benchmark, save_artifact):
    fs, stripe_counts, client_counts, table = benchmark(tuning_curve)

    lines = [
        "Lustre striping tuning: 2 TB dataset on Hyalite (300 TB, 20 OSTs)",
        "I/O time in seconds (lower is better)",
        "",
        f"{'stripes':<9}" + "".join(f"{c:>10} cl" for c in client_counts),
    ]
    for stripes in stripe_counts:
        lines.append(
            f"{stripes:<9}" + "".join(f"{t:>12.0f}" for t in table[stripes])
        )
    save_artifact("pfs_striping_curve", "\n".join(lines))

    # single client: striping cannot help (client link bound)
    single_client = [table[s][0] for s in stripe_counts]
    assert max(single_client) == pytest.approx(min(single_client))
    # many clients: wider stripes strictly help until OSTs saturate
    many = [table[s][-1] for s in stripe_counts]
    assert many[0] > many[1] > many[2]
    # capacity accounting: five 2 TB datasets on the books
    assert fs.used_bytes == 5 * 2 * 10**12
    assert fs.capacity_bytes == 300 * 10**12

"""Update-notification policies and repository mirroring tests."""

import pytest

from repro.rpm import Package, Requirement
from repro.yum import (
    AutoApplyPolicy,
    MirrorLink,
    NotifyPolicy,
    RepoMirror,
    Repository,
    StagedRollout,
    XSEDE_REPO_STANZA,
    YumClient,
)


def mk(name, version="1.0", **kw):
    return Package(name=name, version=version, **kw)


def make_client(host):
    repo = Repository("xsede", priority=50)
    repo.add(mk("torque", "4.2.9", services=("pbs_server",), commands=("qsub",)))
    client = YumClient(host)
    client.configure_repo_file(
        "xsede.repo", XSEDE_REPO_STANZA.render(), available={"xsede": repo}
    )
    client.install("torque")
    client.host.services.enable("pbs_server")
    client.host.services.boot()
    return client, repo


class TestNotifyPolicy:
    def test_no_updates_quiet_report(self, frontend_host):
        client, _repo = make_client(frontend_host)
        policy = NotifyPolicy(client)
        report = policy.run_cycle()
        assert not report.has_updates
        assert "no updates pending" in report.render()

    def test_pending_update_reported_not_applied(self, frontend_host):
        client, repo = make_client(frontend_host)
        repo.add(mk("torque", "4.2.10", services=("pbs_server",)))
        policy = NotifyPolicy(client)
        report = policy.run_cycle()
        assert report.has_updates
        assert "torque" in report.render()
        assert client.db.get("torque").version == "4.2.9"  # untouched

    def test_cycles_counted(self, frontend_host):
        client, _ = make_client(frontend_host)
        policy = NotifyPolicy(client)
        policy.run_cycle()
        policy.run_cycle()
        assert [r.cycle for r in policy.reports] == [1, 2]


class TestAutoApplyPolicy:
    def test_applies_pending(self, frontend_host):
        client, repo = make_client(frontend_host)
        repo.add(mk("torque", "4.2.10", services=("pbs_server",)))
        policy = AutoApplyPolicy(client)
        result = policy.run_cycle()
        assert result is not None
        assert client.db.get("torque").version == "4.2.10"

    def test_broken_update_takes_service_down(self, frontend_host):
        # the Section 3 warning: unattended updates in production
        client, repo = make_client(frontend_host)
        bad = mk("torque", "4.2.10", services=("pbs_server",))
        repo.add(bad)
        policy = AutoApplyPolicy(client, broken_nevras={bad.nevra})
        policy.run_cycle()
        assert client.host.services.get("pbs_server").state.value == "failed"
        assert policy.incidents


class TestStagedRollout:
    def make_fleet(self, littlefe_machine):
        from repro.distro import CENTOS_6_5, Host

        repo = Repository("xsede", priority=50)
        repo.add(mk("torque", "4.2.9", services=("pbs_server",)))
        clients = []
        for node in littlefe_machine.nodes[:3]:
            host = Host(node, CENTOS_6_5)
            c = YumClient(host)
            c.configure_repo_file(
                "xsede.repo", XSEDE_REPO_STANZA.render(), available={"xsede": repo}
            )
            c.install("torque")
            host.services.enable("pbs_server")
            host.services.boot()
            clients.append(c)
        return clients, repo

    def test_good_update_promotes(self, littlefe_machine):
        clients, repo = self.make_fleet(littlefe_machine)
        repo.add(mk("torque", "4.2.10", services=("pbs_server",)))
        rollout = StagedRollout(clients[0], clients[1:])
        outcome = rollout.run_cycle()
        assert outcome["promoted"]
        for c in clients:
            assert c.db.get("torque").version == "4.2.10"

    def test_broken_update_held_at_test_host(self, littlefe_machine):
        clients, repo = self.make_fleet(littlefe_machine)
        bad = mk("torque", "4.2.10", services=("pbs_server",))
        repo.add(bad)
        rollout = StagedRollout(clients[0], clients[1:], broken_nevras={bad.nevra})
        outcome = rollout.run_cycle()
        assert not outcome["promoted"]
        # production untouched; only the sacrificial test host is broken
        for c in clients[1:]:
            assert c.db.get("torque").version == "4.2.9"
        assert bad.nevra in rollout.held_back


class TestMirror:
    def test_initial_sync_transfers_everything(self):
        upstream = Repository("xsede")
        upstream.add(mk("a", size_bytes=10 * 1024**2))
        upstream.add(mk("b", size_bytes=5 * 1024**2))
        mirror = RepoMirror(upstream, MirrorLink(bandwidth_bytes_s=10e6))
        stats = mirror.sync()
        assert len(stats.fetched_nevras) == 2
        assert stats.bytes_transferred == 15 * 1024**2
        assert mirror.is_current

    def test_noop_resync_skips(self):
        upstream = Repository("xsede")
        upstream.add(mk("a"))
        mirror = RepoMirror(upstream, MirrorLink(bandwidth_bytes_s=10e6))
        mirror.sync()
        stats = mirror.sync()
        assert stats.skipped and not stats.fetched_nevras

    def test_delta_sync_fetches_only_new(self):
        upstream = Repository("xsede")
        upstream.add(mk("a"))
        mirror = RepoMirror(upstream, MirrorLink(bandwidth_bytes_s=10e6))
        mirror.sync()
        upstream.add(mk("b"))
        stats = mirror.sync()
        assert stats.fetched_nevras == ["b-1.0-1.x86_64"]

    def test_withdrawn_packages_removed(self):
        upstream = Repository("xsede")
        upstream.add(mk("a"))
        upstream.add(mk("b"))
        mirror = RepoMirror(upstream, MirrorLink(bandwidth_bytes_s=10e6))
        mirror.sync()
        upstream.remove("a-1.0-1.x86_64")
        stats = mirror.sync()
        assert stats.removed_nevras == ["a-1.0-1.x86_64"]
        assert not mirror.local.has("a")

    def test_transfer_time_scales_with_size(self):
        link = MirrorLink(bandwidth_bytes_s=1e6, latency_s=0.01)
        small = link.transfer_time_s(1_000)
        large = link.transfer_time_s(10_000_000)
        assert large > small
        assert large == pytest.approx(0.01 + 10.0)

    def test_mirror_usable_as_repo(self, frontend_host):
        upstream = Repository("xsede", priority=50)
        upstream.add(mk("fftw", commands=()))
        mirror = RepoMirror(upstream, MirrorLink(bandwidth_bytes_s=10e6))
        mirror.sync()
        client = YumClient(frontend_host)
        client.repos.add_repo(mirror.local)
        client.install("fftw")
        assert client.db.has("fftw")

"""Node/chassis assembly tests: the Section 5.1 engineering constraints."""

import pytest

from repro.errors import AssemblyError
from repro.hardware import (
    ATOM_D510,
    CELERON_G1840,
    CRUCIAL_M550_128_MSATA,
    DDR3_4G_SODIMM,
    DDR3_8G_UDIMM,
    GA_Q87TN,
    I7_4770S,
    INTEL_STOCK_LGA1150,
    LAPTOP_HDD_500,
    LIMULUS_DESKSIDE,
    LIMULUS_NODE_BOARD,
    LITTLEFE_V4_FRAME,
    NodeRole,
    PICO_PSU_160,
    ROSEWILL_RCX_Z775_LP,
    assemble_node,
    populate,
)


def q87_node(name="n0", role=NodeRole.COMPUTE, **overrides):
    """A valid modified-LittleFe node, overridable per test."""
    spec = dict(
        role=role,
        board=GA_Q87TN,
        cpu=CELERON_G1840,
        dimms=(DDR3_4G_SODIMM, DDR3_4G_SODIMM),
        storage=(CRUCIAL_M550_128_MSATA,),
        cooler=ROSEWILL_RCX_Z775_LP,
        psu=PICO_PSU_160,
    )
    spec.update(overrides)
    return assemble_node(name, **spec)


class TestNodeAssembly:
    def test_valid_node_assembles(self):
        node = q87_node()
        assert node.cores == 2
        assert node.memory_bytes == 8 * 1024**3
        assert not node.diskless

    def test_socket_mismatch_rejected(self):
        from repro.hardware import XEON_E5_2670

        with pytest.raises(AssemblyError, match="LGA-2011"):
            q87_node(cpu=XEON_E5_2670)

    def test_soldered_board_rejects_socketed_cpu(self):
        from repro.hardware import LITTLEFE_ATOM_BOARD

        with pytest.raises(AssemblyError, match="soldered"):
            q87_node(board=LITTLEFE_ATOM_BOARD, cooler=None, storage=())

    def test_too_many_dimms_rejected(self):
        with pytest.raises(AssemblyError, match="DIMM"):
            q87_node(dimms=(DDR3_4G_SODIMM,) * 3)  # GA-Q87TN has 2 slots

    def test_no_dimms_rejected(self):
        with pytest.raises(AssemblyError, match="DIMM"):
            q87_node(dimms=())

    def test_msata_slot_limit(self):
        with pytest.raises(AssemblyError, match="mSATA"):
            q87_node(storage=(CRUCIAL_M550_128_MSATA, CRUCIAL_M550_128_MSATA))

    def test_chassis_drive_uses_sata_port_not_msata(self):
        node = q87_node(storage=(CRUCIAL_M550_128_MSATA, LAPTOP_HDD_500))
        assert node.storage_bytes == 128 * 10**9 + 500 * 10**9

    def test_socketed_cpu_requires_cooler(self):
        with pytest.raises(AssemblyError, match="cooler"):
            q87_node(cooler=None)

    def test_stock_cooler_rejected_in_littlefe_slot(self):
        from repro.errors import ClearanceError

        with pytest.raises(ClearanceError):
            q87_node(cooler=INTEL_STOCK_LGA1150)

    def test_frontend_must_be_dual_homed(self):
        from repro.hardware import LITTLEFE_ATOM_BOARD

        with pytest.raises(AssemblyError, match="dual-homed"):
            assemble_node(
                "head",
                role=NodeRole.FRONTEND,
                board=LITTLEFE_ATOM_BOARD,
                cpu=ATOM_D510,
                dimms=(DDR3_4G_SODIMM,),
            )

    def test_unknown_role_rejected(self):
        with pytest.raises(AssemblyError, match="role"):
            q87_node(role="gpu-node")

    def test_node_power_includes_all_components(self):
        node = q87_node()
        # cpu + board + 2 dimms + ssd + 2 nics + cooler
        expected = 43.06 + 12.0 + 6.0 + 3.0 + 2.0 + 1.6
        assert node.draw_watts == pytest.approx(expected)

    def test_idle_power_below_full_draw(self):
        node = q87_node()
        assert 0 < node.idle_watts < node.draw_watts

    def test_macs_are_unique_and_local(self):
        a, b = q87_node("a"), q87_node("b")
        assert a.mac_address != b.mac_address
        assert a.mac_address.startswith("02:")

    def test_describe_mentions_cpu_and_disk(self):
        text = q87_node().describe()
        assert "Celeron" in text and "128GB disk" in text


def six_littlefe_nodes():
    return [
        q87_node(
            f"lf-n{i}",
            role=NodeRole.FRONTEND if i == 0 else NodeRole.COMPUTE,
        )
        for i in range(6)
    ]


class TestChassisPopulation:
    def test_littlefe_frame_takes_six_nodes(self):
        machine = populate("lf", LITTLEFE_V4_FRAME, six_littlefe_nodes())
        assert machine.node_count == 6
        assert machine.total_cores == 12

    def test_seventh_node_rejected(self):
        nodes = six_littlefe_nodes() + [q87_node("extra")]
        with pytest.raises(AssemblyError, match="slots"):
            populate("lf", LITTLEFE_V4_FRAME, nodes)

    def test_machine_needs_exactly_one_frontend(self):
        nodes = [q87_node(f"n{i}") for i in range(3)]
        with pytest.raises(AssemblyError, match="frontend"):
            populate("lf", LITTLEFE_V4_FRAME, nodes)

    def test_micro_atx_board_rejected_by_littlefe_frame(self):
        node = assemble_node(
            "big",
            role=NodeRole.FRONTEND,
            board=LIMULUS_NODE_BOARD,
            cpu=I7_4770S,
            dimms=(DDR3_8G_UDIMM,),
            storage=(LAPTOP_HDD_500,),
            cooler=INTEL_STOCK_LGA1150,
            psu=PICO_PSU_160,
        )
        with pytest.raises(AssemblyError, match="form factor|does not fit"):
            populate("lf", LITTLEFE_V4_FRAME, [node])

    def test_shared_psu_chassis_rejects_per_node_psus(self):
        def limulus_node(i):
            return assemble_node(
                f"lm-n{i}",
                role=NodeRole.FRONTEND if i == 0 else NodeRole.COMPUTE,
                board=LIMULUS_NODE_BOARD,
                cpu=I7_4770S,
                dimms=(DDR3_8G_UDIMM, DDR3_8G_UDIMM),
                cooler=INTEL_STOCK_LGA1150,
                storage=(LAPTOP_HDD_500,) if i == 0 else (),
                psu=PICO_PSU_160,  # wrong: the case powers everything
            )

        with pytest.raises(AssemblyError, match="own PSUs"):
            populate("lm", LIMULUS_DESKSIDE, [limulus_node(i) for i in range(2)])

    def test_per_node_psu_chassis_requires_them(self):
        nodes = [
            q87_node(
                f"n{i}",
                role=NodeRole.FRONTEND if i == 0 else NodeRole.COMPUTE,
                psu=None,
            )
            for i in range(2)
        ]
        with pytest.raises(AssemblyError, match="need their own"):
            populate("lf", LITTLEFE_V4_FRAME, nodes)

    def test_rpeak_aggregates(self):
        machine = populate("lf", LITTLEFE_V4_FRAME, six_littlefe_nodes())
        assert machine.rpeak_gflops == pytest.approx(537.6)

    def test_heterogeneous_clock_detected(self):
        nodes = six_littlefe_nodes()
        machine = populate("lf", LITTLEFE_V4_FRAME, nodes)
        assert machine.clock_ghz == pytest.approx(2.8)

    def test_powered_off_nodes_drop_from_draw(self):
        machine = populate("lf", LITTLEFE_V4_FRAME, six_littlefe_nodes())
        full = machine.draw_watts
        machine.nodes[-1].powered_on = False
        assert machine.draw_watts < full

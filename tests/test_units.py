"""Unit-helper tests: conversions, formatting, and guard rails."""

import pytest

from repro import units


def test_mhz_to_ghz():
    assert units.mhz(2800) == pytest.approx(2.8)


def test_tflops_to_gflops_roundtrip():
    assert units.gflops_to_tflops(units.tflops(49.61)) == pytest.approx(49.61)


def test_binary_sizes():
    assert units.kib(1) == 1024
    assert units.mib(1) == 1024**2
    assert units.gib(4) == 4 * 1024**3
    assert units.tib(1) == 1024**4


def test_vendor_decimal_sizes():
    assert units.gb(128) == 128 * 10**9
    assert units.tb(2) == 2 * 10**12


def test_dollars_per_gflops_matches_table5():
    # LittleFe row: $3600 over 537.6 GFLOPS Rpeak -> ~$6.70 (prints as $7)
    assert units.dollars_per_gflops(3600, 537.6) == pytest.approx(6.696, abs=0.01)
    # Limulus row: $5995 over 793.6 -> ~$7.55 (prints as $8)
    assert units.dollars_per_gflops(5995, 793.6) == pytest.approx(7.554, abs=0.01)


def test_dollars_per_gflops_zero_rate_raises():
    with pytest.raises(ZeroDivisionError):
        units.dollars_per_gflops(100.0, 0.0)


def test_fmt_bytes_scales():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(units.kib(2)) == "2.0 KiB"
    assert units.fmt_bytes(units.gib(1)) == "1.0 GiB"


def test_fmt_usd_integer_and_cents():
    assert units.fmt_usd(3600) == "$3,600"
    assert units.fmt_usd(7.5) == "$7.50"


def test_fmt_tflops():
    assert units.fmt_tflops(537.6) == "0.54 TFLOPS"


def test_fmt_watts():
    assert units.fmt_watts(43.06) == "43.06 W"

"""Dependency resolution: goals + repositories + installed set -> closure.

Yum's resolver is closure-based (not a SAT solver): start from the goal
packages, repeatedly pick a best provider for every unsatisfied requirement,
and fail loudly when nothing provides a capability.  Best-provider selection
is deterministic:

1. priority filtering already happened in :class:`RepoSet` (the plugin);
2. prefer a provider whose *name* equals the required capability name
   (matching yum's heuristic that ``Requires: foo`` usually means the
   package ``foo``);
3. then the newest EVR;
4. then the lexicographically smallest name (tie-break for determinism).

The resolver also pulls upgrades for installed packages that would otherwise
conflict-by-version, and honours ``obsoletes`` during updates.

Two cache layers make repeated resolution cheap (the XCBC fast path — the
same 136-package stack resolved on all 220 Kansas nodes):

* :func:`best_provider` memoises per ``(requirement, prefer_name)`` in a
  :meth:`RepoSet.cache` slot, which self-invalidates when the repo epoch
  moves;
* :func:`resolve_install` / :func:`resolve_update` keep a bounded LRU of
  whole :class:`Resolution` objects keyed on (goal names, repo epoch,
  installed-set fingerprint) — equal keys provably resolve identically, so
  node 2..220 of a uniform build is a dict hit.  Cached hits return fresh
  copies; callers may mutate their Resolution freely.

``tests/test_perf_caches.py`` pins the invalidation behaviour (a sync that
publishes a newer EVR, or a db install/erase, must drop stale entries).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..errors import DependencyError, PackageNotFoundError
from ..rpm.database import RpmDatabase
from ..rpm.package import Package, Requirement
from .repository import RepoSet

__all__ = [
    "Resolution",
    "resolve_install",
    "resolve_update",
    "best_provider",
    "clear_resolution_cache",
    "resolution_cache_stats",
]


@dataclass
class Resolution:
    """Outcome of a resolve: what to install and what it upgrades."""

    to_install: list[Package] = field(default_factory=list)
    #: names of installed packages being replaced by to_install entries
    upgrades: dict[str, Package] = field(default_factory=dict)  # name -> new pkg
    #: requirements satisfied by already-installed packages (for reporting)
    already_satisfied: list[Requirement] = field(default_factory=list)

    @property
    def install_names(self) -> set[str]:
        return {p.name for p in self.to_install}

    def is_empty(self) -> bool:
        return not self.to_install

    def copy(self) -> "Resolution":
        """Shallow-per-field copy (Package objects are frozen/shared)."""
        return Resolution(
            to_install=list(self.to_install),
            upgrades=dict(self.upgrades),
            already_satisfied=list(self.already_satisfied),
        )


#: Sentinel cached for "nothing provides this" so repeated misses (the
#: analyzer probing every requirement) skip the repo walk too.
_NO_PROVIDER = object()


def best_provider(
    req: Requirement, repos: RepoSet, *, prefer_name: str | None = None
) -> Package:
    """Pick the best available provider for ``req`` (see module rules).

    Memoised per ``(req, prefer_name)`` against the RepoSet epoch.  Raises
    :class:`DependencyError` if nothing in the enabled repositories
    satisfies the requirement.
    """
    cache = repos.cache("best_provider")
    key = (req, prefer_name)
    hit = cache.get(key)
    if hit is not None:
        if hit is _NO_PROVIDER:
            raise DependencyError(f"nothing provides {req}", missing=(str(req),))
        return hit
    candidates = repos.providers_of(req)
    if not candidates:
        cache[key] = _NO_PROVIDER
        raise DependencyError(f"nothing provides {req}", missing=(str(req),))
    # One pass: newest EVR per name; exact-name preference resolved by a
    # dict probe instead of re-listing the candidates.
    best_by_name: dict[str, Package] = {}
    for pkg in candidates:
        held = best_by_name.get(pkg.name)
        if held is None or pkg.evr > held.evr:
            best_by_name[pkg.name] = pkg
    want = prefer_name or req.name
    best = best_by_name.get(want)
    if best is None:
        best = best_by_name[min(best_by_name)]
    cache[key] = best
    return best


def _closure(
    goals: list[Package],
    repos: RepoSet,
    db: RpmDatabase,
) -> Resolution:
    """Compute the install closure of ``goals`` against ``db``."""
    resolution = Resolution()
    selected: dict[str, Package] = {}
    queue: list[Package] = []

    def select(pkg: Package) -> None:
        held = selected.get(pkg.name)
        if held is not None:
            if held.nevra != pkg.nevra:
                # Keep the newer of the two candidates.
                if pkg.evr > held.evr:
                    selected[pkg.name] = pkg
                    queue.append(pkg)
            return
        selected[pkg.name] = pkg
        queue.append(pkg)

    for goal in goals:
        select(goal)

    while queue:
        pkg = queue.pop(0)
        for req in pkg.requires:
            if any(p.satisfies(req) for p in selected.values()):
                continue
            if db.is_satisfied(req):
                resolution.already_satisfied.append(req)
                continue
            try:
                provider = best_provider(req, repos)
            except DependencyError as exc:
                raise DependencyError(
                    f"{pkg.nevra} requires {req}, which no enabled repository "
                    f"provides",
                    missing=exc.missing,
                ) from None
            select(provider)

    for name, pkg in sorted(selected.items()):
        if db.has(name):
            old = db.get(name)
            if pkg.evr > old.evr:
                resolution.upgrades[name] = pkg
                resolution.to_install.append(pkg)
            # same or older EVR installed: nothing to do
        else:
            resolution.to_install.append(pkg)
    return resolution


# -- whole-resolution cache ---------------------------------------------------

#: verb + goal names + repo epoch + db fingerprint -> Resolution (LRU).
_RESOLUTION_CACHE: "OrderedDict[tuple, Resolution]" = OrderedDict()
_RESOLUTION_CACHE_MAX = 1024
_CACHE_STATS = {"hits": 0, "misses": 0}


def clear_resolution_cache() -> None:
    """Drop every cached resolution (test isolation / memory pressure)."""
    _RESOLUTION_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def resolution_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters for the whole-resolution LRU."""
    return {
        "hits": _CACHE_STATS["hits"],
        "misses": _CACHE_STATS["misses"],
        "size": len(_RESOLUTION_CACHE),
    }


def _cache_get(key: tuple) -> Resolution | None:
    hit = _RESOLUTION_CACHE.get(key)
    if hit is None:
        _CACHE_STATS["misses"] += 1
        return None
    _RESOLUTION_CACHE.move_to_end(key)
    _CACHE_STATS["hits"] += 1
    return hit.copy()


def _cache_put(key: tuple, resolution: Resolution) -> None:
    _RESOLUTION_CACHE[key] = resolution.copy()
    _RESOLUTION_CACHE.move_to_end(key)
    while len(_RESOLUTION_CACHE) > _RESOLUTION_CACHE_MAX:
        _RESOLUTION_CACHE.popitem(last=False)


def resolve_install(
    names: list[str], repos: RepoSet, db: RpmDatabase
) -> Resolution:
    """Resolve ``yum install name...``: goals by name, newest candidates."""
    key = ("install", tuple(names), repos.epoch, db.fingerprint())
    cached = _cache_get(key)
    if cached is not None:
        return cached
    goals: list[Package] = []
    for name in names:
        try:
            goals.append(repos.latest_by_name(name))
        except PackageNotFoundError:
            raise DependencyError(
                f"no package {name} available in any enabled repository",
                missing=(name,),
            ) from None
    resolution = _closure(goals, repos, db)
    _cache_put(key, resolution)
    return resolution


def resolve_update(
    repos: RepoSet,
    db: RpmDatabase,
    *,
    names: list[str] | None = None,
) -> Resolution:
    """Resolve ``yum update [name...]``.

    For every installed package (or the named subset) with a newer candidate
    available, pull the newest candidate plus its closure.  Also honours
    ``obsoletes``: an available package obsoleting an installed one replaces
    it even across a name change.
    """
    targets = names if names is not None else sorted(db.names())
    key = ("update", tuple(targets), repos.epoch, db.fingerprint())
    cached = _cache_get(key)
    if cached is not None:
        return cached
    goals: list[Package] = []
    obsoleted: dict[str, Package] = {}
    for name in targets:
        if not db.has(name):
            raise DependencyError(
                f"cannot update {name}: not installed", missing=(name,)
            )
        installed_pkg = db.get(name)
        candidates = repos.candidates_by_name(name)
        if candidates and candidates[-1].evr > installed_pkg.evr:
            goals.append(candidates[-1])
        # obsoletes: indexed lookup of packages whose Obsoletes name this one
        for repo in repos.enabled_repos():
            for pkg in repo.obsoleters_of(installed_pkg):
                goals.append(pkg)
                obsoleted[name] = pkg
    resolution = _closure(goals, repos, db) if goals else Resolution()
    for old_name, new_pkg in obsoleted.items():
        if new_pkg.name in resolution.install_names:
            resolution.upgrades[old_name] = new_pkg
    _cache_put(key, resolution)
    return resolution

"""Part-catalogue tests: the CPUs, coolers, PSUs and boards of Section 5."""

import pytest

from repro.errors import CatalogError, ClearanceError, PowerBudgetError
from repro.hardware import (
    ATOM_D510,
    ATX_450W,
    CELERON_G1840,
    GA_Q87TN,
    GIGE_ONBOARD,
    I7_4770S,
    INTEL_STOCK_LGA1150,
    LIMULUS_850W,
    LITTLEFE_ATOM_BOARD,
    PICO_PSU_160,
    ROSEWILL_RCX_Z775_LP,
    all_parts,
    calibrated_cpu,
    check_budget,
    check_cooler_fit,
    find_part,
    get_cpu,
    price_bom,
)


class TestCpuCatalog:
    def test_atom_d510_power_matches_paper(self):
        # Section 5.1: "The Atom (D510) ... uses 10.56 watts"
        assert ATOM_D510.tdp_watts == pytest.approx(10.56)

    def test_celeron_g1840_power_matches_paper(self):
        # "versus 43.06 watts for the Celeron G1840"
        assert CELERON_G1840.tdp_watts == pytest.approx(43.06)

    def test_celeron_has_no_hyperthreading(self):
        # Section 5.1: "These CPU choices also eliminate the option of using
        # hyperthreading"
        assert not CELERON_G1840.has_hyperthreading

    def test_i7_4770s_specs_match_section_5_2(self):
        assert I7_4770S.clock_ghz == pytest.approx(3.1)
        assert I7_4770S.cache_mib == pytest.approx(8.0)
        assert I7_4770S.tdp_watts == pytest.approx(65.0)
        assert I7_4770S.has_hyperthreading

    def test_celeron_socket_matches_ga_q87tn(self):
        assert CELERON_G1840.socket == GA_Q87TN.socket == "LGA-1150"

    def test_rpeak_uses_haswell_16_flops_per_cycle(self):
        # 2 cores x 2.8 GHz x 16 = 89.6 GFLOPS per socket
        assert CELERON_G1840.rpeak_gflops == pytest.approx(89.6)
        assert I7_4770S.rpeak_gflops == pytest.approx(198.4)

    def test_get_cpu_unknown_raises_with_known_list(self):
        with pytest.raises(CatalogError, match="known:"):
            get_cpu("Intel Pentium 4")

    def test_calibrated_cpu_hits_target(self):
        cpu = calibrated_cpu("site-cpu", cores=8, target_rpeak_gflops=118.18)
        assert cpu.rpeak_gflops == pytest.approx(118.18)

    def test_calibrated_cpu_rejects_nonpositive(self):
        with pytest.raises(CatalogError):
            calibrated_cpu("bad", cores=0, target_rpeak_gflops=100)
        with pytest.raises(CatalogError):
            calibrated_cpu("bad", cores=8, target_rpeak_gflops=0)


class TestCoolerFit:
    def test_stock_cooler_does_not_fit_littlefe_frame(self):
        # Section 5.1: the boxed Celeron cooler "is too large to fit in the
        # space allocated per LittleFe node"
        with pytest.raises(ClearanceError, match="mm"):
            check_cooler_fit(INTEL_STOCK_LGA1150, CELERON_G1840, GA_Q87TN)

    def test_rosewill_low_profile_fits(self):
        check_cooler_fit(ROSEWILL_RCX_Z775_LP, CELERON_G1840, GA_Q87TN)

    def test_undersized_cooler_rejected_thermally(self):
        from repro.hardware import PASSIVE_SINK_PLUS_FAN

        with pytest.raises(ClearanceError, match="dissipates"):
            check_cooler_fit(PASSIVE_SINK_PLUS_FAN, CELERON_G1840, GA_Q87TN)


class TestPowerBudget:
    def test_pico_psu_carries_one_haswell_node(self):
        margin = check_budget(PICO_PSU_160, 68.0)
        assert margin > 0

    def test_overload_raises_with_diagnostic(self):
        with pytest.raises(PowerBudgetError, match="exceeds"):
            check_budget(PICO_PSU_160, 150.0)

    def test_headroom_below_one_rejected(self):
        with pytest.raises(PowerBudgetError):
            check_budget(ATX_450W, 100.0, headroom=0.9)

    def test_limulus_psu_is_850w(self):
        assert LIMULUS_850W.rating_watts == pytest.approx(850.0)

    def test_negative_draw_rejected(self):
        from repro.hardware.power import total_draw

        with pytest.raises(PowerBudgetError):
            total_draw([10.0, -1.0])


class TestBoards:
    def test_ga_q87tn_is_dual_homed_capable(self):
        # Section 5.1: dual-homed headnode with no add-in card
        assert GA_Q87TN.dual_homed_capable
        assert GA_Q87TN.nic_count == 2

    def test_atom_board_single_nic(self):
        assert not LITTLEFE_ATOM_BOARD.dual_homed_capable

    def test_ga_q87tn_has_msata(self):
        assert GA_Q87TN.msata_slots == 1


class TestPartsCatalog:
    def test_all_parts_unambiguous(self):
        parts = all_parts()
        assert "Intel Celeron G1840" in parts
        assert parts["Intel Celeron G1840"].family == "cpu"

    def test_find_part_unknown(self):
        with pytest.raises(CatalogError):
            find_part("flux capacitor")

    def test_price_bom_totals(self):
        lines, total = price_bom(
            [("Intel Celeron G1840", 6), ("Gigabyte GA-Q87TN", 6)]
        )
        assert total == pytest.approx(6 * 52.0 + 6 * 165.0)
        assert lines[0].extended_usd == pytest.approx(312.0)

    def test_price_bom_rejects_zero_quantity(self):
        with pytest.raises(CatalogError):
            price_bom([("Intel Celeron G1840", 0)])

    def test_nic_bandwidth(self):
        assert GIGE_ONBOARD.bandwidth_bytes_s == pytest.approx(1.25e8)

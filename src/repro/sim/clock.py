"""Simulated time: the kernel clock and per-entity timelines.

A :class:`SimClock` is the single source of "now" for one simulation; it
only moves forward, and every subsystem that needs the current time reads
it from the kernel instead of keeping its own float.  A :class:`Timeline`
is a named per-entity clock (an MPI rank, a DMA engine) that shares the
kernel's time base but may run ahead of the global clock — the standard
way discrete-event simulators model concurrent actors whose local progress
is reconciled at synchronisation points.
"""

from __future__ import annotations

import math

from ..errors import SimulationError

__all__ = ["SimClock", "Timeline"]


def _check_time(time_s: float) -> float:
    time_s = float(time_s)
    if math.isnan(time_s):
        raise SimulationError("time is NaN")
    return time_s


class SimClock:
    """The monotonic simulation clock.

    ``advance_to`` enforces the single kernel invariant every consumer
    relies on: simulated time never decreases.
    """

    __slots__ = ("_now_s", "start_s")

    def __init__(self, start_s: float = 0.0) -> None:
        self.start_s = _check_time(start_s)
        self._now_s = self.start_s

    @property
    def now_s(self) -> float:
        return self._now_s

    def advance_to(self, time_s: float) -> float:
        """Move the clock forward to ``time_s`` (equal is a no-op)."""
        time_s = _check_time(time_s)
        if time_s < self._now_s:
            raise SimulationError(
                f"time went backwards: advance_to({time_s}) at t={self._now_s}"
            )
        self._now_s = time_s
        return self._now_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now_s={self._now_s})"


class Timeline:
    """A named per-entity clock on the kernel's time base.

    Timelines are created with :meth:`SimKernel.timeline` so the kernel
    knows every clock in the simulation.  They are monotonic like the
    kernel clock, with one documented exception: :meth:`reset` starts a
    new epoch (used between benchmark phases that reuse one entity).
    """

    __slots__ = ("name", "_now_s")

    def __init__(self, name: str, *, start_s: float = 0.0) -> None:
        self.name = name
        self._now_s = _check_time(start_s)

    @property
    def now_s(self) -> float:
        return self._now_s

    def advance(self, seconds: float) -> float:
        """Advance by a non-negative duration (local work, a transfer)."""
        seconds = _check_time(seconds)
        if seconds < 0:
            raise SimulationError(
                f"timeline {self.name}: cannot advance by {seconds}"
            )
        self._now_s += seconds
        return self._now_s

    def advance_to(self, time_s: float) -> float:
        """Advance to an absolute time (equal is a no-op)."""
        time_s = _check_time(time_s)
        if time_s < self._now_s:
            raise SimulationError(
                f"timeline {self.name}: time went backwards "
                f"(advance_to({time_s}) at t={self._now_s})"
            )
        self._now_s = time_s
        return self._now_s

    def meet(self, time_s: float) -> float:
        """Advance to at least ``time_s`` (no-op if already past it).

        The receive-side clock rule: completion happens at
        ``max(local clock, event time)``.
        """
        time_s = _check_time(time_s)
        if time_s > self._now_s:
            self._now_s = time_s
        return self._now_s

    def reset(self, start_s: float = 0.0) -> None:
        """Start a new epoch at ``start_s`` (between benchmark phases)."""
        self._now_s = _check_time(start_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeline({self.name!r}, now_s={self._now_s})"

"""Section 5.2 — Limulus power management: energy saved vs wait added.

"There is power management that turns nodes on and off as needed for
maximum power efficiency."  The bench replays the same bursty personal-use
trace (a deskside machine works in bursts) with management on and off and
regenerates the energy/wait comparison.  The timed unit is the managed run.
"""

import pytest

from repro.hardware import build_limulus_hpc200
from repro.scheduler import Job, PowerManagedScheduler


def bursty_day(scheduler):
    """A personal-cluster day: three bursts separated by long idle gaps."""
    for burst in range(3):
        scheduler.now_s = burst * 4 * 3600.0
        for i in range(2):
            scheduler.submit(
                Job(
                    f"burst{burst}-job{i}",
                    "scientist",
                    cores=6,
                    walltime_limit_s=3600,
                    runtime_s=1200,
                )
            )
        scheduler.run_to_completion()
    # account the trailing idle evening
    scheduler.now_s = 16 * 3600.0
    scheduler._account_energy(scheduler.now_s)
    return scheduler


def managed_run():
    return bursty_day(
        PowerManagedScheduler(build_limulus_hpc200().machine, manage_power=True)
    )


def baseline_run():
    return bursty_day(
        PowerManagedScheduler(build_limulus_hpc200().machine, manage_power=False)
    )


def test_limulus_power_management(benchmark, save_artifact):
    managed = benchmark(managed_run)
    baseline = baseline_run()

    saved = baseline.energy.total_joules - managed.energy.total_joules
    saved_frac = saved / baseline.energy.total_joules
    mean_wait_managed = sum(
        j.wait_time_s for j in managed.finished
    ) / len(managed.finished)
    mean_wait_baseline = sum(
        j.wait_time_s for j in baseline.finished
    ) / len(baseline.finished)

    lines = [
        "Limulus power management (Section 5.2) — bursty personal-use day",
        "",
        f"{'':<26}{'always-on':>12}{'managed':>12}",
        f"{'energy (Wh)':<26}{baseline.energy.total_joules / 3600:>12.1f}"
        f"{managed.energy.total_joules / 3600:>12.1f}",
        f"{'idle energy (Wh)':<26}{baseline.energy.idle_joules / 3600:>12.1f}"
        f"{managed.energy.idle_joules / 3600:>12.1f}",
        f"{'boot events':<26}{baseline.energy.boot_events:>12}"
        f"{managed.energy.boot_events:>12}",
        f"{'node-off hours':<26}{baseline.energy.off_node_seconds / 3600:>12.1f}"
        f"{managed.energy.off_node_seconds / 3600:>12.1f}",
        f"{'mean job wait (s)':<26}{mean_wait_baseline:>12.1f}"
        f"{mean_wait_managed:>12.1f}",
        "",
        f"energy saved: {saved_frac:.0%}; wait added: "
        f"{mean_wait_managed - mean_wait_baseline:.0f} s/job",
    ]
    save_artifact("limulus_power_mgmt", "\n".join(lines))

    # the paper's pitch holds: meaningful saving, bounded wait cost
    assert saved_frac > 0.3
    assert managed.energy.off_node_seconds > 0
    assert mean_wait_managed - mean_wait_baseline <= managed.boot_delay_s
    # both runs completed the same work
    assert len(managed.finished) == len(baseline.finished) == 6

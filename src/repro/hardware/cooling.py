"""CPU coolers and the clearance/fit rules.

Straight from Section 5.1: the Atom D510 got by with a passive heat sink plus
a small add-on fan, but the 43 W Celeron needs a real CPU fan — and "the fan
that comes packaged with the Celeron G1840 processor ... is too large to fit
in the space allocated per LittleFe node.  You need to use a lower-profile
fan assembly.  We chose the Rosewill RCX-Z775-LP 80mm Sleeve Low Profile CPU
Cooler as it fits well in the allotted space."

Fit is checked two ways:

* geometric: ``cooler.height_mm <= board.cpu_clearance_mm``
* thermal: ``cooler.max_tdp_watts >= cpu.tdp_watts``
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CatalogError, ClearanceError
from .cpu import CpuModel
from .motherboard import MotherboardModel

__all__ = [
    "CoolerModel",
    "PASSIVE_SINK_PLUS_FAN",
    "INTEL_STOCK_LGA1150",
    "ROSEWILL_RCX_Z775_LP",
    "COOLER_CATALOG",
    "get_cooler",
    "check_cooler_fit",
]


@dataclass(frozen=True)
class CoolerModel:
    """A CPU cooler SKU."""

    model: str
    height_mm: float
    max_tdp_watts: float
    power_watts: float  # fan draw
    price_usd: float

    def __post_init__(self) -> None:
        if self.height_mm <= 0:
            raise CatalogError(f"cooler {self.model} has non-positive height")
        if self.max_tdp_watts <= 0:
            raise CatalogError(f"cooler {self.model} has non-positive capacity")


#: The original LittleFe arrangement: heat sink + small add-on fan over fins.
PASSIVE_SINK_PLUS_FAN = CoolerModel(
    model="heatsink + 40mm add-on fan",
    height_mm=20.0,
    max_tdp_watts=15.0,
    power_watts=0.6,
    price_usd=8.0,
)

#: The boxed cooler bundled with the Celeron G1840 — too tall for LittleFe.
INTEL_STOCK_LGA1150 = CoolerModel(
    model="Intel stock LGA-1150 cooler",
    height_mm=60.0,
    max_tdp_watts=84.0,
    power_watts=1.8,
    price_usd=0.0,  # bundled
)

#: The low-profile cooler the paper actually used (Section 5.1).
ROSEWILL_RCX_Z775_LP = CoolerModel(
    model="Rosewill RCX-Z775-LP 80mm Low Profile",
    height_mm=37.0,
    max_tdp_watts=89.0,
    power_watts=1.6,
    price_usd=15.0,
)

COOLER_CATALOG: dict[str, CoolerModel] = {
    c.model: c
    for c in (PASSIVE_SINK_PLUS_FAN, INTEL_STOCK_LGA1150, ROSEWILL_RCX_Z775_LP)
}


def get_cooler(model: str) -> CoolerModel:
    """Look up a cooler SKU, raising :class:`CatalogError` if unknown."""
    try:
        return COOLER_CATALOG[model]
    except KeyError:
        known = ", ".join(sorted(COOLER_CATALOG))
        raise CatalogError(f"unknown cooler model {model!r}; known: {known}") from None


def check_cooler_fit(
    cooler: CoolerModel,
    cpu: CpuModel,
    board: MotherboardModel,
    *,
    what: str = "node",
) -> None:
    """Validate a cooler against both the CPU's heat and the board's clearance.

    Raises :class:`~repro.errors.ClearanceError` naming the failing
    dimension.  This is the check that rejects the stock Celeron cooler in
    the LittleFe frame and accepts the Rosewill low-profile unit.
    """
    if cooler.height_mm > board.cpu_clearance_mm:
        raise ClearanceError(
            f"{what}: cooler {cooler.model!r} is {cooler.height_mm:.0f} mm tall "
            f"but {board.model!r} in its chassis slot allows only "
            f"{board.cpu_clearance_mm:.0f} mm"
        )
    if cooler.max_tdp_watts < cpu.tdp_watts:
        raise ClearanceError(
            f"{what}: cooler {cooler.model!r} is rated for "
            f"{cooler.max_tdp_watts:.0f} W but {cpu.model!r} dissipates "
            f"{cpu.tdp_watts:.2f} W"
        )

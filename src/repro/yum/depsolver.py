"""Dependency resolution: goals + repositories + installed set -> closure.

Yum's resolver is closure-based (not a SAT solver): start from the goal
packages, repeatedly pick a best provider for every unsatisfied requirement,
and fail loudly when nothing provides a capability.  Best-provider selection
is deterministic:

1. priority filtering already happened in :class:`RepoSet` (the plugin);
2. prefer a provider whose *name* equals the required capability name
   (matching yum's heuristic that ``Requires: foo`` usually means the
   package ``foo``);
3. then the newest EVR;
4. then the lexicographically smallest name (tie-break for determinism).

The resolver also pulls upgrades for installed packages that would otherwise
conflict-by-version, and honours ``obsoletes`` during updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DependencyError, PackageNotFoundError
from ..rpm.database import RpmDatabase
from ..rpm.package import Package, Requirement
from .repository import RepoSet

__all__ = ["Resolution", "resolve_install", "resolve_update", "best_provider"]


@dataclass
class Resolution:
    """Outcome of a resolve: what to install and what it upgrades."""

    to_install: list[Package] = field(default_factory=list)
    #: names of installed packages being replaced by to_install entries
    upgrades: dict[str, Package] = field(default_factory=dict)  # name -> new pkg
    #: requirements satisfied by already-installed packages (for reporting)
    already_satisfied: list[Requirement] = field(default_factory=list)

    @property
    def install_names(self) -> set[str]:
        return {p.name for p in self.to_install}

    def is_empty(self) -> bool:
        return not self.to_install


def best_provider(
    req: Requirement, repos: RepoSet, *, prefer_name: str | None = None
) -> Package:
    """Pick the best available provider for ``req`` (see module rules).

    Raises :class:`DependencyError` if nothing in the enabled repositories
    satisfies the requirement.
    """
    candidates = repos.providers_of(req)
    if not candidates:
        raise DependencyError(
            f"nothing provides {req}", missing=(str(req),)
        )
    want = prefer_name or req.name
    exact = [p for p in candidates if p.name == want]
    pool = exact or candidates
    # newest EVR per name, then smallest name wins
    best_by_name: dict[str, Package] = {}
    for pkg in pool:
        held = best_by_name.get(pkg.name)
        if held is None or pkg.evr > held.evr:
            best_by_name[pkg.name] = pkg
    return best_by_name[sorted(best_by_name)[0]]


def _closure(
    goals: list[Package],
    repos: RepoSet,
    db: RpmDatabase,
) -> Resolution:
    """Compute the install closure of ``goals`` against ``db``."""
    resolution = Resolution()
    selected: dict[str, Package] = {}
    queue: list[Package] = []

    def select(pkg: Package) -> None:
        held = selected.get(pkg.name)
        if held is not None:
            if held.nevra != pkg.nevra:
                # Keep the newer of the two candidates.
                if pkg.evr > held.evr:
                    selected[pkg.name] = pkg
                    queue.append(pkg)
            return
        selected[pkg.name] = pkg
        queue.append(pkg)

    for goal in goals:
        select(goal)

    while queue:
        pkg = queue.pop(0)
        for req in pkg.requires:
            if any(p.satisfies(req) for p in selected.values()):
                continue
            if db.is_satisfied(req):
                resolution.already_satisfied.append(req)
                continue
            try:
                provider = best_provider(req, repos)
            except DependencyError as exc:
                raise DependencyError(
                    f"{pkg.nevra} requires {req}, which no enabled repository "
                    f"provides",
                    missing=exc.missing,
                ) from None
            select(provider)

    for name, pkg in sorted(selected.items()):
        if db.has(name):
            old = db.get(name)
            if pkg.evr > old.evr:
                resolution.upgrades[name] = pkg
                resolution.to_install.append(pkg)
            # same or older EVR installed: nothing to do
        else:
            resolution.to_install.append(pkg)
    return resolution


def resolve_install(
    names: list[str], repos: RepoSet, db: RpmDatabase
) -> Resolution:
    """Resolve ``yum install name...``: goals by name, newest candidates."""
    goals: list[Package] = []
    for name in names:
        try:
            goals.append(repos.latest_by_name(name))
        except PackageNotFoundError:
            raise DependencyError(
                f"no package {name} available in any enabled repository",
                missing=(name,),
            ) from None
    return _closure(goals, repos, db)


def resolve_update(
    repos: RepoSet,
    db: RpmDatabase,
    *,
    names: list[str] | None = None,
) -> Resolution:
    """Resolve ``yum update [name...]``.

    For every installed package (or the named subset) with a newer candidate
    available, pull the newest candidate plus its closure.  Also honours
    ``obsoletes``: an available package obsoleting an installed one replaces
    it even across a name change.
    """
    targets = names if names is not None else sorted(db.names())
    goals: list[Package] = []
    obsoleted: dict[str, Package] = {}
    for name in targets:
        if not db.has(name):
            raise DependencyError(
                f"cannot update {name}: not installed", missing=(name,)
            )
        installed_pkg = db.get(name)
        candidates = repos.candidates_by_name(name)
        if candidates and candidates[-1].evr > installed_pkg.evr:
            goals.append(candidates[-1])
        # obsoletes scan: any available package that obsoletes this one
        for repo in repos.enabled_repos():
            for pkg in repo.all_packages():
                if pkg.name != name and pkg.obsoletes_package(installed_pkg):
                    goals.append(pkg)
                    obsoleted[name] = pkg
    resolution = _closure(goals, repos, db) if goals else Resolution()
    for old_name, new_pkg in obsoleted.items():
        if new_pkg.name in resolution.install_names:
            resolution.upgrades[old_name] = new_pkg
    return resolution

"""Hardware-build checks: the assembly rules as lint instead of exceptions.

:func:`~repro.hardware.chassis.populate` raises
:class:`~repro.errors.AssemblyError`/:class:`~repro.errors.PowerBudgetError`
on the *first* violation it meets.  The analyzer walks the same rules over a
:class:`~repro.analyze.spec.HardwarePlan` and reports *all* of them, plus a
margin warning the assembler has no vocabulary for: a budget that fits today
but leaves less than 10 % of the supply's rating spare.
"""

from __future__ import annotations

from ...hardware.node import NodeRole
from ...hardware.power import DEFAULT_HEADROOM
from ..diagnostic import Severity
from ..registry import rule

#: Margin (fraction of PSU rating) under which HW602 warns.
THIN_MARGIN_FRACTION = 0.10

HW601 = rule(
    "HW601",
    "hardware",
    Severity.ERROR,
    "power draw with headroom exceeds the supply rating",
    "use a bigger supply or per-node supplies — the modified-LittleFe fix "
    "(Section 5.1)",
)
HW602 = rule(
    "HW602",
    "hardware",
    Severity.WARNING,
    "power margin after headroom is under 10% of the supply rating",
    "the build fits, barely; one more drive or DIMM tips it over",
)
HW603 = rule(
    "HW603",
    "hardware",
    Severity.ERROR,
    "PSU arrangement conflicts with the chassis",
    "shared-supply chassis: nodes must not carry PSUs; otherwise every "
    "node needs its own",
)
HW604 = rule(
    "HW604",
    "hardware",
    Severity.ERROR,
    "more nodes than the chassis has slots",
    "drop nodes or pick a bigger chassis",
)
HW605 = rule(
    "HW605",
    "hardware",
    Severity.ERROR,
    "machine does not have exactly one frontend node",
    "Rocks needs one dual-homed frontend; retag the nodes",
)


def run(definition, emit) -> None:
    plan = definition.effective_hardware_plan()
    if plan is None:
        return
    chassis = plan.chassis
    nodes = plan.nodes
    where = f"hardware:{chassis.model}"

    if len(nodes) > chassis.slots:
        emit(
            "HW604",
            f"{len(nodes)} nodes for the {chassis.slots} slots of "
            f"{chassis.model!r}",
            location=where,
        )

    heads = [n for n in nodes if n.role == NodeRole.FRONTEND]
    if len(heads) != 1:
        emit(
            "HW605",
            f"expected exactly one frontend node, found {len(heads)}",
            location=where,
        )

    shared = plan.effective_shared_psu
    if shared is not None:
        offenders = [n.name for n in nodes if n.psu is not None]
        if offenders:
            emit(
                "HW603",
                f"chassis supplies shared power ({shared.model}) but nodes "
                f"carry their own PSUs: {offenders}",
                location=where,
            )
        draw = sum(n.draw_watts for n in nodes)
        _check_budget(
            emit, shared, draw, what=f"{chassis.model} (shared supply)",
            location=where,
        )
    else:
        for node in nodes:
            if node.psu is None:
                emit(
                    "HW603",
                    f"chassis {chassis.model!r} provides no shared PSU and "
                    f"node {node.name!r} carries none either",
                    location=f"hardware:node/{node.name}",
                )
            else:
                _check_budget(
                    emit, node.psu, node.draw_watts, what=f"node {node.name}",
                    location=f"hardware:node/{node.name}",
                )


def _check_budget(emit, psu, draw_watts, *, what, location) -> None:
    """The assembly-time power rule, emitted instead of raised."""
    required = draw_watts * DEFAULT_HEADROOM
    if required > psu.rating_watts:
        emit(
            "HW601",
            f"{what}: draw {draw_watts:.2f} W x headroom "
            f"{DEFAULT_HEADROOM:.2f} = {required:.2f} W exceeds "
            f"{psu.model} rating {psu.rating_watts:.0f} W",
            location=location,
        )
    elif psu.rating_watts - required < THIN_MARGIN_FRACTION * psu.rating_watts:
        emit(
            "HW602",
            f"{what}: only {psu.rating_watts - required:.1f} W of "
            f"{psu.model}'s {psu.rating_watts:.0f} W remain after headroom",
            location=location,
        )

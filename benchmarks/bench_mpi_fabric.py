"""MPI fabric microbenchmarks over the two paper machines.

The hpc roll ships exactly these tests (mpi-ping-pong, collectives).  The
bench regenerates a ping-pong latency/bandwidth sweep and an allreduce
scaling series on the LittleFe and Limulus fabrics — the substrate numbers
under the HPL model's interconnect terms.
"""

import pytest

from repro.hardware import build_limulus_hpc200, build_littlefe_modified
from repro.mpi import MpiWorld, allreduce_sweep, effective_bandwidth, ping_pong
from repro.network import build_cluster_network


def make_world(machine):
    net = build_cluster_network(machine)
    hosts = [n.name for n in machine.nodes for _ in range(n.cores)]
    return MpiWorld(net.fabric, hosts)


def run_microbench():
    results = {}
    for quote, label in (
        (build_littlefe_modified(), "LittleFe"),
        (build_limulus_hpc200(), "Limulus"),
    ):
        world = make_world(quote.machine)
        # cross-node ranks: first rank of node 0 and first rank of node 1
        first_on_second_node = quote.machine.nodes[0].cores
        points = ping_pong(
            world, src=0, dst=first_on_second_node,
            sizes=[8, 1024, 65536, 1 << 20],
        )
        world.reset_clocks()
        sweep = allreduce_sweep(world, [64, 4096])
        results[label] = (points, sweep)
    return results


def test_mpi_fabric_microbench(benchmark, save_artifact):
    results = benchmark(run_microbench)

    lines = ["MPI microbenchmarks (cross-node, GigE fabric)", ""]
    for label, (points, sweep) in results.items():
        lines.append(f"-- {label} ping-pong")
        lines.append(f"{'bytes':>10}{'rtt (us)':>12}{'MB/s':>10}")
        for p in points:
            lines.append(
                f"{p.nbytes:>10}{p.round_trip_s * 1e6:>12.1f}"
                f"{p.bandwidth_bytes_s / 1e6:>10.1f}"
            )
        lines.append(f"   allreduce: " + ", ".join(
            f"{count} doubles -> {t * 1e3:.2f} ms" for count, t in sweep
        ))
        lines.append("")
    save_artifact("mpi_fabric_microbench", "\n".join(lines))

    for label, (points, sweep) in results.items():
        # latency floor at small messages, bandwidth asymptote below line rate
        assert points[0].round_trip_s < points[-1].round_trip_s
        bw = effective_bandwidth(points)
        assert 0.5e8 < bw < 1.25e8, label
        # allreduce time grows with payload
        assert sweep[1][1] > sweep[0][1]

"""The parallel-filesystem substrate (Table 3's storage column): a
Lustre-like MDS/OST model with striping, per-OST capacity, and an aggregate
bandwidth model.

:func:`montana_hyalite_storage` and :func:`hawaii_storage` build the two
Table 3 storage systems as published.
"""

from .lustre import LustreFs, Ost, PfsError, PfsFile, StripeLayout

__all__ = [
    "LustreFs",
    "Ost",
    "PfsFile",
    "StripeLayout",
    "PfsError",
    "montana_hyalite_storage",
    "hawaii_storage",
]


def montana_hyalite_storage() -> LustreFs:
    """Montana State's "300 TB of Lustre storage" (Table 3): 20 OSTs of
    15 TB each behind the Hyalite cluster."""
    return LustreFs(
        "hyalite",
        ost_count=20,
        ost_capacity_bytes=15 * 10**12,
        default_stripe_count=1,
    )


def hawaii_storage() -> tuple[LustreFs, LustreFs]:
    """Pacific Basin's "40TB storage, 60TB scratch" (Table 3) as two
    filesystems: persistent (4 x 10 TB) and scratch (6 x 10 TB, wider
    default striping — scratch is for bandwidth)."""
    persistent = LustreFs(
        "pbarc-home",
        ost_count=4,
        ost_capacity_bytes=10 * 10**12,
        default_stripe_count=1,
    )
    scratch = LustreFs(
        "pbarc-scratch",
        ost_count=6,
        ost_capacity_bytes=10 * 10**12,
        default_stripe_count=4,
    )
    return persistent, scratch

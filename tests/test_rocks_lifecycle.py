"""Rocks lifecycle extensions: kickstart rendering, node replacement, and
CLI showq/pbsnodes surfaces."""

import pytest

from repro.cli import ClusterShell
from repro.errors import RocksError
from repro.rocks import Profile, install_cluster
from repro.rocks.installer import RocksInstaller
from repro.scheduler import ClusterResources, Job, MauiScheduler


class TestKickstartRendering:
    def test_compute_profile_renders(self, xcbc_littlefe):
        graph = xcbc_littlefe.cluster.graph
        text = graph.render_kickstart(Profile.COMPUTE)
        assert text.startswith("# Kickstart for appliance profile 'compute'")
        assert "%packages" in text and "%end" in text
        assert "gromacs" in text
        assert "chkconfig pbs_mom on" in text
        # frontend-only services must NOT appear on the compute profile
        assert "chkconfig pbs_server on" not in text

    def test_frontend_profile_has_post_actions(self, xcbc_littlefe):
        graph = xcbc_littlefe.cluster.graph
        text = graph.render_kickstart(Profile.FRONTEND)
        assert "configure dual-homed network" in text
        assert "chkconfig rocks-dhcpd on" in text

    def test_render_is_deterministic(self, xcbc_littlefe):
        graph = xcbc_littlefe.cluster.graph
        assert graph.render_kickstart(Profile.COMPUTE) == graph.render_kickstart(
            Profile.COMPUTE
        )


class TestNodeReplacement:
    def test_replace_dead_node(self, littlefe_machine):
        installer = RocksInstaller(littlefe_machine)
        cluster = installer.run()
        old_record = cluster.rocksdb.get("compute-0-2")
        old_mac = old_record.mac
        # the board dies
        dead = next(
            n for n in littlefe_machine.compute_nodes if n.mac_address == old_mac
        )
        dead.powered_on = False
        host = installer.replace_node(
            cluster, "compute-0-2", new_mac="02:xc:bc:ff:ff:01"
        )
        record = cluster.rocksdb.get("compute-0-2")
        assert record.mac == "02:xc:bc:ff:ff:01"
        assert record.ip == old_record.ip            # keeps its address
        assert record.rank == old_record.rank        # and its position
        # compute appliance: the mom runs, the server does not
        assert host.services.is_running("pbs_mom")
        assert not host.services.is_running("pbs_server")
        assert cluster.db_for(host).has("torque")
        assert "modules" in cluster.installed_everywhere()

    def test_replace_frontend_refused(self, littlefe_machine):
        installer = RocksInstaller(littlefe_machine)
        cluster = installer.run()
        with pytest.raises(RocksError, match="compute"):
            installer.replace_node(
                cluster, littlefe_machine.head.name, new_mac="02:aa"
            )


class TestSchedulerCli:
    @pytest.fixture
    def shell(self, xcbc_littlefe):
        return ClusterShell(
            xcbc_littlefe.cluster,
            scheduler=MauiScheduler(
                ClusterResources(xcbc_littlefe.cluster.machine)
            ),
        )

    def test_showq_active_and_eligible(self, shell):
        shell.run("qsub -N wide -u alice -c 10 -t 100 -w 600")
        shell.run("qsub -N waiting -u bob -c 10 -t 50 -w 600")
        output = shell.run("showq").output
        assert "ACTIVE JOBS" in output and "ELIGIBLE JOBS" in output
        assert "wide" in output and "waiting" in output
        assert "Total jobs: 2" in output

    def test_pbsnodes_states(self, shell):
        shell.run("qsub -N filler -u alice -c 10 -t 100 -w 600")
        output = shell.run("pbsnodes").output
        assert "state = job-exclusive" in output
        assert output.count("np = 2") == 5  # five Celeron compute nodes

    def test_showq_requires_scheduler(self, xcbc_littlefe):
        shell = ClusterShell(xcbc_littlefe.cluster)
        assert not shell.run("showq").ok

"""The self-healing supervisor: detection becomes repair, declaratively.

PR 3's fault machinery can *detect* a dead node (gmetad's missed
heartbeats), a failed kickstart (``InstallState.FAILED``), or a starved
job (failed at submit on a degraded cluster) — but nothing repaired them,
which is exactly the gap between "a cluster that reports failures" and
the paper's one-part-time-admin cluster that *keeps running*.  The
:class:`Supervisor` closes the loop: a periodic kernel event sweeps the
wired subsystems against a set of declarative :class:`RecoveryPolicy`
entries and performs bounded, observable repairs:

* ``reboot.node`` — power-cycle failed nodes whose power is actually OK
  (a ``power_probe`` callback arbitrates; a dead PSU cannot be rebooted
  away), after a modelled reboot delay;
* ``restart.gmond`` — restart unresponsive monitoring daemons on
  powered-on hosts;
* ``undrain.node`` — return healthy drained nodes to service;
* ``resubmit.job`` — resubmit jobs that failed *in the queue* (never
  started) once usable capacity can hold them again;
* ``reinstall.node`` — re-kickstart hosts whose install failed (needs a
  wired Rocks installer + cluster).

Every repair emits a ``recover.*`` trace event; every policy is bounded
by a :class:`~repro.faults.retry.RetryPolicy`'s ``max_attempts`` (the
sweep period provides the pacing, so the policy's delay fields are
unused here).  The supervisor never consumes kernel RNG — sweeps are a
pure function of observed state, preserving the determinism contract.
All repairs are idempotent against the injector's own auto-recovery:
restoring an already-restored node is a no-op, so a supervisor repair
racing a scheduled ``fault.recover`` event cannot corrupt state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ProvisionError, RecoveryError
from ..faults.retry import RetryPolicy

__all__ = ["RecoveryPolicy", "Supervisor", "default_policies"]

#: The actions the supervisor knows how to perform, in sweep order.
ACTIONS = (
    "reboot.node",
    "restart.gmond",
    "undrain.node",
    "resubmit.job",
    "reinstall.node",
)


@dataclass(frozen=True)
class RecoveryPolicy:
    """One declarative repair rule.

    ``retry.max_attempts`` bounds how many times the supervisor will try
    to repair any single target under this action (repair loops on a
    genuinely broken part must converge to "needs a human", not spin
    forever).  ``delay_s`` models the repair's own duration — a reboot
    takes minutes, so the node returns ``delay_s`` after the sweep that
    ordered it.
    """

    action: str
    enabled: bool = True
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=3)
    )
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            known = ", ".join(ACTIONS)
            raise RecoveryError(
                f"unknown recovery action {self.action!r} (known: {known})"
            )
        if self.delay_s < 0:
            raise RecoveryError(f"{self.action}: negative delay_s")


def default_policies() -> tuple[RecoveryPolicy, ...]:
    """The out-of-the-box policy set (every action on, modest bounds)."""
    return (
        RecoveryPolicy("reboot.node", retry=RetryPolicy(max_attempts=3),
                       delay_s=180.0),
        RecoveryPolicy("restart.gmond", retry=RetryPolicy(max_attempts=5)),
        RecoveryPolicy("undrain.node", retry=RetryPolicy(max_attempts=3)),
        RecoveryPolicy("resubmit.job", retry=RetryPolicy(max_attempts=2)),
        RecoveryPolicy("reinstall.node", retry=RetryPolicy(max_attempts=2)),
    )


@dataclass
class Repair:
    """One performed repair (the supervisor's audit trail)."""

    t_s: float
    action: str
    target: str
    attempt: int
    ok: bool = True


class Supervisor:
    """Periodic repair sweeps over wired subsystems (all optional)."""

    def __init__(
        self,
        kernel,
        *,
        scheduler=None,
        gmetad=None,
        machine=None,
        installer=None,
        cluster=None,
        power_probe=None,
        policies: tuple[RecoveryPolicy, ...] | None = None,
        period_s: float = 120.0,
    ) -> None:
        if period_s <= 0:
            raise RecoveryError(f"sweep period must be positive, got {period_s}")
        self.kernel = kernel
        self.scheduler = scheduler
        self.gmetad = gmetad
        self.machine = machine
        self.installer = installer
        self.cluster = cluster
        #: ``power_probe(node_name) -> bool``: True when the node's power
        #: is OK (reboots help).  Without one, power is assumed OK.
        self.power_probe = power_probe
        self.period_s = period_s
        policy_list = policies if policies is not None else default_policies()
        self._policies = {p.action: p for p in policy_list}
        self._attempts: dict[str, int] = {}
        self._pending_reboots: set[str] = set()
        #: nodes this supervisor brought back (the chaos audit exempts
        #: them from the crashed-means-dead confluence check)
        self.repaired_nodes: set[str] = set()
        self.repairs: list[Repair] = []
        self._sweeper = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self, *, first_at_s: float | None = None):
        """Register the sweep as a periodic kernel event; returns it."""
        if self._sweeper is not None:
            raise RecoveryError("supervisor is already running")
        self._sweeper = self.kernel.every(
            self.period_s, self.sweep, first_at_s=first_at_s,
            label="supervisor.sweep",
        )
        return self._sweeper

    def stop(self) -> None:
        """Cancel the periodic sweep (idempotent)."""
        if self._sweeper is not None:
            self._sweeper.cancel()
            self._sweeper = None

    def policy(self, action: str) -> RecoveryPolicy:
        try:
            return self._policies[action]
        except KeyError:
            raise RecoveryError(f"no policy for action {action!r}") from None

    # -- bookkeeping --------------------------------------------------------------

    def _may_attempt(self, policy: RecoveryPolicy, target: str) -> int | None:
        """Next attempt number for target, or None when the bound is spent."""
        key = f"{policy.action}:{target}"
        used = self._attempts.get(key, 0)
        if used >= policy.retry.max_attempts:
            return None
        self._attempts[key] = used + 1
        return used + 1

    def _power_ok(self, node: str) -> bool:
        return self.power_probe is None or bool(self.power_probe(node))

    def _hw_node(self, name: str):
        if self.machine is None:
            return None
        for node in self.machine.nodes:
            if node.name == name:
                return node
        return None

    # -- the sweep ----------------------------------------------------------------

    def sweep(self) -> list[Repair]:
        """One repair pass; returns the repairs performed this sweep."""
        before = len(self.repairs)
        for action in ACTIONS:
            policy = self._policies.get(action)
            if policy is None or not policy.enabled:
                continue
            getattr(self, "_sweep_" + action.replace(".", "_"))(policy)
        return self.repairs[before:]

    def _sweep_reboot_node(self, policy: RecoveryPolicy) -> None:
        if self.scheduler is None:
            return
        for node in self.scheduler.resources.failed_nodes():
            if node in self._pending_reboots or not self._power_ok(node):
                continue
            attempt = self._may_attempt(policy, node)
            if attempt is None:
                continue
            self._pending_reboots.add(node)
            self.kernel.after(
                policy.delay_s,
                lambda node=node, attempt=attempt: self._finish_reboot(
                    node, attempt
                ),
                label=f"recover.reboot:{node}",
            )

    def _finish_reboot(self, node: str, attempt: int) -> None:
        """The reboot completed: bring the node back if it still needs it."""
        self._pending_reboots.discard(node)
        if self.scheduler is None or not self.scheduler.resources.is_failed(node):
            return  # something else (the injector's auto-recovery) beat us
        hw = self._hw_node(node)
        if hw is not None:
            hw.powered_on = True
        if self.gmetad is not None:
            try:
                self.gmetad.gmond_for(node).restore_heartbeat()
            except Exception:
                pass  # not in the monitoring mesh
        self.scheduler.recover_node(node)
        self.repaired_nodes.add(node)
        self.repairs.append(
            Repair(self.kernel.now_s, "reboot.node", node, attempt)
        )
        self.kernel.trace.emit(
            "recover.node", t_s=self.kernel.now_s, subsystem="recovery",
            node=node, attempt=attempt,
        )

    def _sweep_restart_gmond(self, policy: RecoveryPolicy) -> None:
        if self.gmetad is None:
            return
        for host in self.gmetad.hosts():
            gmond = self.gmetad.gmond_for(host)
            if gmond.responsive or not gmond.host.node.powered_on:
                # A daemon on a powered-down chassis cannot be restarted;
                # that host is reboot.node's (or a human's) problem.
                continue
            if self.scheduler is not None and self.scheduler.resources.is_failed(
                host
            ):
                continue  # dead node, not a dead daemon
            attempt = self._may_attempt(policy, host)
            if attempt is None:
                continue
            gmond.restore_heartbeat()
            self.repairs.append(
                Repair(self.kernel.now_s, "restart.gmond", host, attempt)
            )
            self.kernel.trace.emit(
                "recover.gmond", t_s=self.kernel.now_s, subsystem="recovery",
                host=host,
            )

    def _sweep_undrain_node(self, policy: RecoveryPolicy) -> None:
        if self.scheduler is None:
            return
        for node in self.scheduler.resources.draining_nodes():
            if self.scheduler.resources.is_failed(node):
                continue
            hw = self._hw_node(node)
            if hw is not None and not hw.powered_on:
                continue
            if not self._power_ok(node):
                continue
            attempt = self._may_attempt(policy, node)
            if attempt is None:
                continue
            self.scheduler.undrain_node(node)
            self.repairs.append(
                Repair(self.kernel.now_s, "undrain.node", node, attempt)
            )
            self.kernel.trace.emit(
                "recover.undrain", t_s=self.kernel.now_s, subsystem="recovery",
                node=node,
            )

    def _sweep_resubmit_job(self, policy: RecoveryPolicy) -> None:
        if self.scheduler is None:
            return
        usable = self.scheduler.resources.usable_cores
        candidates = [
            job
            for job in list(self.scheduler.finished)
            if job.state.value == "failed"
            and job.start_time_s is None
            and job.cores <= usable
        ]
        for job in candidates:
            attempt = self._may_attempt(policy, job.name)
            if attempt is None:
                continue
            self.scheduler.resubmit(job)
            self.repairs.append(
                Repair(self.kernel.now_s, "resubmit.job", job.name, attempt)
            )
            self.kernel.trace.emit(
                "recover.resubmit", t_s=self.kernel.now_s, subsystem="recovery",
                job=job.name, attempt=attempt,
            )

    def _sweep_reinstall_node(self, policy: RecoveryPolicy) -> None:
        if self.installer is None or self.cluster is None:
            return
        failed = [
            record.name
            for record in self.cluster.rocksdb.compute_hosts()
            if record.state.value == "install-failed"
        ]
        for name in failed:
            if not self._power_ok(name):
                continue
            attempt = self._may_attempt(policy, name)
            if attempt is None:
                continue
            hw = self._hw_node(name)
            if hw is not None:
                hw.powered_on = True
            try:
                self.installer.reinstall_node(self.cluster, name)
                ok = True
            except ProvisionError:
                # The re-kickstart crashed too; the FAILED state stands and
                # the attempt counter converges toward "needs a human".
                ok = False
            self.repairs.append(
                Repair(self.kernel.now_s, "reinstall.node", name, attempt, ok=ok)
            )
            self.kernel.trace.emit(
                "recover.reinstall", t_s=self.kernel.now_s,
                subsystem="recovery", node=name, attempt=attempt, ok=ok,
            )

    # -- snapshots ----------------------------------------------------------------

    def state_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot of repair bookkeeping (checkpointing)."""
        return {
            "attempts": dict(sorted(self._attempts.items())),
            "pending_reboots": sorted(self._pending_reboots),
            "repaired_nodes": sorted(self.repaired_nodes),
            "repairs": [
                {
                    "t_s": r.t_s,
                    "action": r.action,
                    "target": r.target,
                    "attempt": r.attempt,
                    "ok": r.ok,
                }
                for r in self.repairs
            ],
        }

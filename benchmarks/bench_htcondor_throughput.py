"""The htcondor roll: high-throughput sweeps and cycle scavenging.

Two comparisons the roll exists for:

* a 200-task parameter sweep through the Condor pool built from the XCBC
  cluster's nodes (the timed unit);
* the scavenging dividend: adding four owner-controlled desktops shortens
  the sweep even though owners interrupt, quantifying the restart tax.
"""

import pytest

from repro.hardware import build_littlefe_modified
from repro.htc import ClassAd, CondorPool, HtcJob, pool_from_cluster
from repro.rocks import install_cluster, optional_rolls


def sweep_jobs(n=200, cycles=2):
    return [
        HtcJob(
            ad=ClassAd(f"sweep-{i}", attributes={"RequestMemory": 256}),
            owner=f"user{i % 3}",
            runtime_cycles=cycles,
        )
        for i in range(n)
    ]


def dedicated_only():
    cluster = install_cluster(
        build_littlefe_modified().machine, rolls=[optional_rolls()["htcondor"]]
    )
    pool = pool_from_cluster(cluster)
    for job in sweep_jobs():
        pool.submit(job)
    cycles = pool.run_until_drained()
    return pool, cycles


def with_scavenged_desktops():
    cluster = install_cluster(
        build_littlefe_modified().machine, rolls=[optional_rolls()["htcondor"]]
    )
    pool = pool_from_cluster(cluster)
    for i in range(4):
        pool.add_desktop(f"lab-desktop-{i}", memory_mb=8192)
    for job in sweep_jobs():
        pool.submit(job)
    # owners come and go: every 10 cycles, desktops get used for 2
    cycles = 0
    while pool.queue:
        if cycles % 10 == 8:
            for i in range(4):
                pool.set_owner_present(f"lab-desktop-{i}", True)
        if cycles % 10 == 0 and cycles > 0:
            for i in range(4):
                pool.set_owner_present(f"lab-desktop-{i}", False)
        pool.step()
        cycles += 1
        if cycles > 10_000:  # pragma: no cover - guard
            raise AssertionError("scavenged pool did not drain")
    return pool, cycles


def test_htcondor_throughput(benchmark, save_artifact):
    pool_dedicated, cycles_dedicated = benchmark(dedicated_only)
    pool_scavenged, cycles_scavenged = with_scavenged_desktops()

    lines = [
        "HTCondor pool: 200-task sweep on the XCBC LittleFe",
        "",
        f"{'':<28}{'dedicated':>12}{'+4 desktops':>13}",
        f"{'slots':<28}{pool_dedicated.slot_count():>12}"
        f"{pool_scavenged.slot_count():>13}",
        f"{'cycles to drain':<28}{cycles_dedicated:>12}{cycles_scavenged:>13}",
        f"{'evictions':<28}{pool_dedicated.evictions:>12}"
        f"{pool_scavenged.evictions:>13}",
        "",
        "scavenged desktops shorten the sweep despite owner interruptions",
        "(evicted vanilla jobs restart from scratch — the restart tax)",
    ]
    save_artifact("htcondor_throughput", "\n".join(lines))

    assert len(pool_dedicated.completed) == 200
    assert len(pool_scavenged.completed) == 200
    assert cycles_scavenged < cycles_dedicated
    assert pool_scavenged.evictions >= 0
    # fair share: the three submitting users end within 2x of each other
    usages = sorted(pool_dedicated.usage.values())
    assert usages[-1] <= 2 * usages[0]

"""Batch jobs and their lifecycle.

The XCBC build ships "Torque, SLURM, sge (choose one)" (Table 1) plus Maui
(Table 2's scheduler row).  A :class:`Job` is scheduler-agnostic: cores
requested, a walltime limit, and the actual runtime the simulation will
charge (unknown to the scheduler until the job ends, like real life).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from ..errors import JobError

__all__ = ["JobState", "Job", "Allocation"]


class JobState(str, Enum):
    """Lifecycle states (qstat letters in parentheses)."""

    PENDING = "pending"      # (Q)
    RUNNING = "running"      # (R)
    COMPLETED = "completed"  # (C)
    CANCELLED = "cancelled"
    FAILED = "failed"


_job_serial = itertools.count(1)


@dataclass
class Job:
    """One batch job.

    ``runtime_s`` is what the job will actually take; ``walltime_limit_s``
    is what the user asked for.  A job whose runtime exceeds its limit is
    killed at the limit and marked FAILED (the scheduler enforces this).
    """

    name: str
    user: str
    cores: int
    walltime_limit_s: float
    runtime_s: float
    priority: int = 0
    job_id: int = field(default_factory=lambda: next(_job_serial))

    # lifecycle bookkeeping, owned by the scheduler
    state: JobState = JobState.PENDING
    submit_time_s: float = 0.0
    start_time_s: float | None = None
    end_time_s: float | None = None
    allocation: "Allocation | None" = None

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise JobError(f"job {self.name}: cores must be positive")
        if self.walltime_limit_s <= 0:
            raise JobError(f"job {self.name}: walltime limit must be positive")
        if self.runtime_s < 0:
            raise JobError(f"job {self.name}: negative runtime")

    @property
    def exceeded_walltime(self) -> bool:
        """True if the job's real runtime exceeds its declared limit."""
        return self.runtime_s > self.walltime_limit_s

    @property
    def charged_runtime_s(self) -> float:
        """Time the job will occupy the machine (capped at the limit)."""
        return min(self.runtime_s, self.walltime_limit_s)

    @property
    def wait_time_s(self) -> float:
        """Queue wait (start - submit); raises if not yet started."""
        if self.start_time_s is None:
            raise JobError(f"job {self.name} has not started")
        return self.start_time_s - self.submit_time_s

    @property
    def core_seconds(self) -> float:
        """Machine time consumed (cores x charged runtime)."""
        return self.cores * self.charged_runtime_s

    def state_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot of the job (checkpoint participation).

        ``job_id`` is deliberately excluded: it comes from a process-global
        serial, so two identically-replayed worlds assign different ids —
        names are the stable identity everywhere that matters (traces,
        allocations, snapshots).
        """
        return {
            "name": self.name,
            "user": self.user,
            "cores": self.cores,
            "walltime_limit_s": self.walltime_limit_s,
            "runtime_s": self.runtime_s,
            "priority": self.priority,
            "state": self.state.value,
            "submit_time_s": self.submit_time_s,
            "start_time_s": self.start_time_s,
            "end_time_s": self.end_time_s,
            "allocation": str(self.allocation) if self.allocation else None,
        }


@dataclass(frozen=True)
class Allocation:
    """Cores granted to a job: ``{node_name: core_count}``."""

    by_node: tuple[tuple[str, int], ...]

    @property
    def total_cores(self) -> int:
        return sum(c for _n, c in self.by_node)

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(n for n, _c in self.by_node)

    def __str__(self) -> str:
        return "+".join(f"{n}:{c}" for n, c in self.by_node)

"""An HTCondor-like high-throughput pool: matchmaking + cycle scavenging.

The pool's slots come from two places, as in a real campus deployment:

* dedicated cluster nodes (one slot per core);
* *scavenged* desktop machines that join when their owner is idle and evict
  jobs when the owner returns — the canonical Condor story.

The negotiator runs a simple fair-share matchmaking cycle: for each idle
job (oldest first per user, users interleaved by usage), find matching
slots, rank by the job's preference, claim.  Eviction requeues the job
(HTCondor's default for vanilla-universe jobs here: restart from scratch).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from .classads import ClassAd, HtcError

__all__ = ["HtcJobState", "HtcJob", "Slot", "CondorPool"]


class HtcJobState(str, Enum):
    IDLE = "idle"
    RUNNING = "running"
    COMPLETED = "completed"
    EVICTED = "evicted"  # transient: back to idle at the next cycle


_htc_serial = itertools.count(1)


@dataclass
class HtcJob:
    """One queued high-throughput job (vanilla universe)."""

    ad: ClassAd
    owner: str
    runtime_cycles: int
    job_id: int = field(default_factory=lambda: next(_htc_serial))
    state: HtcJobState = HtcJobState.IDLE
    remaining_cycles: int = 0
    slot_name: str = ""
    restarts: int = 0

    def __post_init__(self) -> None:
        if self.runtime_cycles <= 0:
            raise HtcError(f"job {self.ad.name}: runtime must be positive")
        self.remaining_cycles = self.runtime_cycles


@dataclass
class Slot:
    """One execution slot (a core of some machine)."""

    ad: ClassAd
    dedicated: bool
    owner_present: bool = False  # desktops only
    running: HtcJob | None = None

    @property
    def name(self) -> str:
        return self.ad.name

    @property
    def available(self) -> bool:
        if self.running is not None:
            return False
        return self.dedicated or not self.owner_present


class CondorPool:
    """The pool: collector + negotiator + startds, discretised in cycles."""

    def __init__(self) -> None:
        self._slots: dict[str, Slot] = {}
        self.queue: list[HtcJob] = []
        self.completed: list[HtcJob] = []
        self.cycle = 0
        self.usage: dict[str, int] = {}  # owner -> slot-cycles consumed
        self.evictions = 0

    # -- membership --------------------------------------------------------------

    def add_slot(self, slot: Slot) -> None:
        if slot.name in self._slots:
            raise HtcError(f"duplicate slot {slot.name}")
        self._slots[slot.name] = slot

    def add_dedicated_machine(self, name: str, cores: int, memory_mb: int, **attrs) -> None:
        """Add one dedicated node as ``cores`` slots."""
        for i in range(cores):
            ad = ClassAd(
                name=f"slot{i + 1}@{name}",
                attributes={
                    "Machine": name,
                    "Memory": memory_mb // max(cores, 1),
                    "Arch": "X86_64",
                    "Dedicated": True,
                    **attrs,
                },
            )
            self.add_slot(Slot(ad=ad, dedicated=True))

    def add_desktop(self, name: str, memory_mb: int, **attrs) -> None:
        """Add one owner-controlled desktop (single slot, scavenged)."""
        ad = ClassAd(
            name=f"slot1@{name}",
            attributes={
                "Machine": name,
                "Memory": memory_mb,
                "Arch": "X86_64",
                "Dedicated": False,
                **attrs,
            },
        )
        self.add_slot(Slot(ad=ad, dedicated=False))

    def set_owner_present(self, machine: str, present: bool) -> list[HtcJob]:
        """Owner sits down / leaves; returning owners evict running jobs."""
        evicted = []
        for slot in self._slots.values():
            if slot.ad.attributes.get("Machine") != machine or slot.dedicated:
                continue
            slot.owner_present = present
            if present and slot.running is not None:
                job = slot.running
                slot.running = None
                job.state = HtcJobState.EVICTED
                job.slot_name = ""
                job.remaining_cycles = job.runtime_cycles  # vanilla restart
                job.restarts += 1
                self.evictions += 1
                evicted.append(job)
        return evicted

    # -- queue --------------------------------------------------------------------

    def submit(self, job: HtcJob) -> HtcJob:
        """condor_submit."""
        self.queue.append(job)
        return job

    def idle_jobs(self) -> list[HtcJob]:
        return [
            j
            for j in self.queue
            if j.state in (HtcJobState.IDLE, HtcJobState.EVICTED)
        ]

    def running_jobs(self) -> list[HtcJob]:
        return [j for j in self.queue if j.state is HtcJobState.RUNNING]

    # -- negotiation ------------------------------------------------------------------

    def _fair_order(self) -> list[HtcJob]:
        """Idle jobs, interleaved across owners by accumulated usage."""
        by_owner: dict[str, list[HtcJob]] = {}
        for job in self.idle_jobs():
            by_owner.setdefault(job.owner, []).append(job)
        for jobs in by_owner.values():
            jobs.sort(key=lambda j: j.job_id)
        order: list[HtcJob] = []
        while any(by_owner.values()):
            # owner with the least usage goes next (fair share)
            owner = min(
                (o for o, jobs in by_owner.items() if jobs),
                key=lambda o: (self.usage.get(o, 0), o),
            )
            order.append(by_owner[owner].pop(0))
        return order

    def negotiate(self) -> int:
        """One negotiation pass; returns the number of matches made."""
        matched = 0
        for job in self._fair_order():
            candidates = [
                slot
                for slot in self._slots.values()
                if slot.available and job.ad.matches(slot.ad)
            ]
            if not candidates:
                continue
            best = max(
                candidates, key=lambda s: (job.ad.rank_of(s.ad), s.dedicated, s.name)
            )
            best.running = job
            job.state = HtcJobState.RUNNING
            job.slot_name = best.name
            matched += 1
        return matched

    def step(self) -> None:
        """One pool cycle: negotiate, then advance running jobs."""
        self.cycle += 1
        self.negotiate()
        for slot in self._slots.values():
            job = slot.running
            if job is None:
                continue
            job.remaining_cycles -= 1
            self.usage[job.owner] = self.usage.get(job.owner, 0) + 1
            if job.remaining_cycles <= 0:
                job.state = HtcJobState.COMPLETED
                slot.running = None
                self.queue.remove(job)
                self.completed.append(job)

    def run_until_drained(self, *, max_cycles: int = 10_000) -> int:
        """Step until the queue empties; returns cycles used."""
        start = self.cycle
        while self.queue:
            if self.cycle - start >= max_cycles:
                raise HtcError(
                    f"pool did not drain in {max_cycles} cycles "
                    f"({len(self.queue)} jobs left — unmatchable requirements?)"
                )
            self.step()
        return self.cycle - start

    def slot_count(self) -> int:
        return len(self._slots)

    def condor_status(self) -> str:
        """The condor_status table."""
        lines = [f"{'Name':<26}{'Type':<11}{'State':<12}{'Activity':<10}"]
        for name in sorted(self._slots):
            slot = self._slots[name]
            kind = "dedicated" if slot.dedicated else "desktop"
            if slot.running is not None:
                state, activity = "Claimed", "Busy"
            elif slot.available:
                state, activity = "Unclaimed", "Idle"
            else:
                state, activity = "Owner", "InUse"
            lines.append(f"{name:<26}{kind:<11}{state:<12}{activity:<10}")
        return "\n".join(lines)

"""Limulus-style power management (Section 5.2).

"Further, there is power management that turns nodes on and off as needed
for maximum power efficiency.  This can also be scheduled."

:class:`PowerManagedScheduler` layers node on/off control over the Maui
policy: compute nodes power off when they go idle and power back on (paying
a boot delay, charged to the jobs that needed them) when demand returns.
Energy is integrated exactly over the simulation: busy nodes draw their full
power, idle-but-on nodes their idle power, off nodes nothing.

The comparison bench (`bench_limulus_power_mgmt`) runs the same trace with
management on and off and reports energy saved vs added wait.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchedulerError
from ..hardware.chassis import Machine
from ..sim import SimKernel
from .base import ClusterResources
from .job import Allocation, Job
from .torque import MauiScheduler

__all__ = ["PowerManagedScheduler", "EnergyReport", "PowerWindow"]


@dataclass(frozen=True)
class PowerWindow:
    """A scheduled power policy window (Section 5.2: "This can also be
    scheduled").

    Within ``[start_s, end_s)`` of each recurring ``period_s`` (a day, by
    default), compute nodes are *kept off* regardless of demand — e.g. a
    deskside machine silenced overnight.  Jobs submitted inside the window
    simply wait for it to end.
    """

    start_s: float
    end_s: float
    period_s: float = 24 * 3600.0

    def __post_init__(self) -> None:
        if not 0 <= self.start_s < self.end_s <= self.period_s:
            raise SchedulerError(
                f"invalid power window [{self.start_s}, {self.end_s}) over "
                f"period {self.period_s}"
            )

    def is_blackout(self, now_s: float) -> bool:
        phase = now_s % self.period_s
        return self.start_s <= phase < self.end_s

    def next_window_end(self, now_s: float) -> float:
        """The absolute time the current/upcoming blackout ends."""
        base = now_s - (now_s % self.period_s)
        end = base + self.end_s
        return end if end > now_s else end + self.period_s


@dataclass
class EnergyReport:
    """Energy accounting for one simulation."""

    busy_joules: float = 0.0
    idle_joules: float = 0.0
    boot_joules: float = 0.0
    boot_events: int = 0
    #: node-seconds spent powered off (the saving's source)
    off_node_seconds: float = 0.0

    @property
    def total_joules(self) -> float:
        return self.busy_joules + self.idle_joules + self.boot_joules

    @property
    def total_kwh(self) -> float:
        return self.total_joules / 3.6e6


class PowerManagedScheduler(MauiScheduler):
    """Maui + node power management.

    Parameters
    ----------
    machine:
        Needed for per-node power figures.
    manage_power:
        False reproduces the always-on baseline (same policy, no power
        control) so the two runs differ only in power behaviour.
    boot_delay_s:
        Time a powered-off node takes to become usable; jobs whose
        allocation required booting start late by this much.
    boot_power_watts:
        Extra draw during boot (disks spinning up, POST).
    """

    scheduler_name = "torque+maui+powermgmt"

    def __init__(
        self,
        machine: Machine,
        *,
        manage_power: bool = True,
        boot_delay_s: float = 60.0,
        boot_power_watts: float = 20.0,
        blackout: "PowerWindow | None" = None,
        kernel: SimKernel | None = None,
    ) -> None:
        super().__init__(ClusterResources(machine), kernel=kernel)
        self.machine = machine
        self.manage_power = manage_power
        self.boot_delay_s = boot_delay_s
        self.boot_power_watts = boot_power_watts
        self.blackout = blackout
        self._node_power: dict[str, tuple[float, float]] = {
            n.name: (n.draw_watts, n.idle_watts) for n in machine.compute_nodes
        }
        self._hw_by_name = {n.name: n for n in machine.compute_nodes}
        self.energy = EnergyReport()
        self._last_account_s = 0.0
        self._just_booted: set[str] = set()
        if self.manage_power:
            # Start with all compute nodes powered down (deskside at rest).
            for node in self.resources.idle_nodes():
                self._set_power(node, on=False)

    def _set_power(self, node_name: str, *, on: bool) -> None:
        """Flip a node's power both in the allocator and on the hardware —
        the monitoring mesh and Machine.draw_watts see the same state the
        scheduler does."""
        self.resources.set_offline(node_name, not on)
        hw = self._hw_by_name.get(node_name)
        if hw is not None:
            hw.powered_on = on
        if on:
            self.kernel.trace.emit(
                "node.power_on", t_s=self.now_s, subsystem="power",
                node=node_name, boot_delay_s=self.boot_delay_s,
            )
        else:
            self.kernel.trace.emit(
                "node.power_off", t_s=self.now_s, subsystem="power",
                node=node_name,
            )

    # -- energy integration ---------------------------------------------------

    def _busy_cores_by_node(self) -> dict[str, int]:
        busy: dict[str, int] = {}
        for job in self.running:
            assert job.allocation is not None
            for node, cores in job.allocation.by_node:
                busy[node] = busy.get(node, 0) + cores
        return busy

    def _account_energy(self, until_s: float) -> None:
        """Integrate power over [last accounting point, until_s]."""
        dt = until_s - self._last_account_s
        if dt < 0:
            raise SchedulerError("time went backwards in energy accounting")
        if dt == 0:
            return
        busy = self._busy_cores_by_node()
        for node, (draw, idle) in self._node_power.items():
            if self.resources.is_offline(node):
                self.energy.off_node_seconds += dt
            elif busy.get(node, 0) > 0:
                self.energy.busy_joules += draw * dt
            else:
                self.energy.idle_joules += idle * dt
        self._last_account_s = until_s

    # -- power control -----------------------------------------------------------

    def _power_on_for_demand(self) -> None:
        """Bring nodes online until pending demand fits (or none left).

        Failed nodes are never candidates: power management stops routing
        to crashed hardware until :meth:`recover_node` restores it.
        """

        def powerable(n: str) -> bool:
            return self.resources.is_offline(n) and not self.resources.is_failed(n)

        demand = sum(j.cores for j in self.pending)
        while (
            demand > self.resources.free_cores()
            and any(powerable(n) for n in self.resources.node_names())
        ):
            node = next(n for n in self.resources.node_names() if powerable(n))
            self._set_power(node, on=True)
            self._just_booted.add(node)
            self.energy.boot_events += 1
            self.energy.boot_joules += self.boot_power_watts * self.boot_delay_s

    def _power_off_idle(self) -> None:
        """Power down idle nodes (immediate-off policy)."""
        for node in self.resources.idle_nodes():
            self._set_power(node, on=False)

    # -- engine hooks --------------------------------------------------------------

    def _start(self, job: Job, allocation: Allocation) -> None:
        booted = [n for n in allocation.node_names if n in self._just_booted]
        super()._start(job, allocation)
        if booted and self.manage_power:
            # The job waits for its nodes to boot: shift its window and
            # re-key the completion event through the kernel's first-class
            # reschedule API (no private heap to mutate).
            assert job.start_time_s is not None and job.end_time_s is not None
            job.start_time_s += self.boot_delay_s
            job.end_time_s += self.boot_delay_s
            self.reschedule_completion(job)
            for node in booted:
                self._just_booted.discard(node)

    def crash_node(self, node: str, *, reason: str = "node crash"):
        # Energy up to the crash instant is charged at the pre-crash state;
        # from here the node draws nothing (offline in the integrator).
        self._account_energy(self.now_s)
        affected = super().crash_node(node, reason=reason)
        hw = self._hw_by_name.get(node)
        if hw is not None:
            hw.powered_on = False
        self._just_booted.discard(node)
        return affected

    def recover_node(self, node: str) -> None:
        self._account_energy(self.now_s)
        self.resources.restore_node(node)
        if self.manage_power:
            # Repaired nodes come back powered down; the next demand spike
            # boots them through the normal path (paying the boot delay).
            self._set_power(node, on=False)
        if self.on_idle_change is not None:
            self.on_idle_change(self)
        self._try_start_jobs()

    def _in_blackout(self) -> bool:
        return (
            self.manage_power
            and self.blackout is not None
            and self.blackout.is_blackout(self.now_s)
        )

    def _try_start_jobs(self) -> None:
        if self._in_blackout():
            # scheduled silence: nothing starts; pending jobs wait for the
            # window to end (run_to_completion advances time past it)
            return
        if self.manage_power and self.pending:
            self._power_on_for_demand()
        super()._try_start_jobs()

    def submit(self, job: Job) -> Job:
        self._account_energy(self.now_s)
        return super().submit(job)

    def _on_job_end(self, job: Job) -> None:
        # The kernel advanced the clock to the completion time; integrate
        # energy over the elapsed interval while the job still holds its
        # cores (busy draw), then complete it and power down what idles.
        self._account_energy(self.now_s)
        super()._on_job_end(job)
        if self.manage_power:
            self._power_off_idle()

    def run_to_completion(self):  # type: ignore[override]
        # Blackout windows can stall pending work with no completion events
        # to advance time; whenever that happens, run the kernel forward to
        # the window's end (energy accounted with the nodes off) and retry.
        while True:
            while self.step():
                pass
            if self.pending and self._in_blackout():
                assert self.blackout is not None
                wake = self.blackout.next_window_end(self.now_s)
                self._account_energy(wake)
                self.kernel.run_until(wake)
                self._try_start_jobs()
                continue
            break
        stats = super().run_to_completion()
        self._account_energy(max(self.now_s, stats.makespan_s))
        if self.manage_power:
            self._power_off_idle()
        return stats

"""Section 5.1 — the LittleFe modification, as constraint checks.

Times the full modified build with validation, and regenerates the
engineering-decision table: stock-vs-modified power, cooler clearance, the
diskless rejection, and the Rpeak gain the Haswell parts buy.
"""

import pytest

from repro.core import build_xcbc_cluster
from repro.errors import ClearanceError, ProvisionError
from repro.hardware import (
    ATOM_D510,
    CELERON_G1840,
    GA_Q87TN,
    INTEL_STOCK_LGA1150,
    ROSEWILL_RCX_Z775_LP,
    build_littlefe_modified,
    build_littlefe_original,
    check_cooler_fit,
)


def validated_build():
    return build_littlefe_modified()


def regenerate_modification_report() -> str:
    stock = build_littlefe_original()
    modified = build_littlefe_modified()
    lines = [
        "Section 5.1 — modifying LittleFe for XCBC",
        "",
        f"{'':<28}{'stock (Atom D510)':>20}{'modified (G1840)':>20}",
        f"{'CPU watts/node':<28}{ATOM_D510.tdp_watts:>20.2f}"
        f"{CELERON_G1840.tdp_watts:>20.2f}",
        f"{'frame draw (W)':<28}{stock.machine.draw_watts:>20.1f}"
        f"{modified.machine.draw_watts:>20.1f}",
        f"{'Rpeak (GFLOPS)':<28}{stock.machine.rpeak_gflops:>20.1f}"
        f"{modified.machine.rpeak_gflops:>20.1f}",
        f"{'disks':<28}{'none (diskless)':>20}{'mSATA x 6':>20}",
        f"{'power supplies':<28}{'one shared':>20}{'one per node':>20}",
        f"{'BOM (USD)':<28}{stock.bom_usd:>20.0f}{modified.bom_usd:>20.0f}",
        "",
    ]
    try:
        check_cooler_fit(INTEL_STOCK_LGA1150, CELERON_G1840, GA_Q87TN)
        lines.append("stock cooler: FITS (unexpected)")
    except ClearanceError as exc:
        lines.append(f"stock cooler: rejected — {exc}")
    check_cooler_fit(ROSEWILL_RCX_Z775_LP, CELERON_G1840, GA_Q87TN)
    lines.append("Rosewill RCX-Z775-LP: fits (thermal and clearance)")
    try:
        build_xcbc_cluster(stock.machine)
        lines.append("stock LittleFe + XCBC: INSTALLED (unexpected)")
    except ProvisionError:
        lines.append("stock LittleFe + XCBC: rejected (Rocks needs disks)")
    return "\n".join(lines)


def test_littlefe_modification(benchmark, save_artifact):
    from repro.hardware import render_parts_list

    quote = benchmark(validated_build)
    report = regenerate_modification_report()
    # Section 5.1: "the parts list ... included in the LittleFe web site" —
    # publish it with the engineering report, derived from the same build
    report += "\n\n" + render_parts_list(quote)
    save_artifact("littlefe_modification", report)

    assert "rejected" in report
    assert quote.machine.rpeak_gflops == pytest.approx(537.6)
    # the power story: > 10x more Rpeak for ~3x the power
    stock = build_littlefe_original()
    rpeak_gain = quote.machine.rpeak_gflops / stock.machine.rpeak_gflops
    power_gain = quote.machine.draw_watts / stock.machine.draw_watts
    assert rpeak_gain > 10
    assert power_gain < 5

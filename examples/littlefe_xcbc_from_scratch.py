#!/usr/bin/env python3
"""The Section 5.1 walkthrough: modifying LittleFe for XCBC, step by step.

Reproduces the paper's engineering narrative executably:

1. the stock (diskless, Atom) LittleFe cannot take the Rocks-based XCBC;
2. the stock Celeron cooler does not clear the frame — the Rosewill
   low-profile unit does;
3. Haswell power forces per-node supplies;
4. the modified build installs XCBC end-to-end, nodes discovered one at a
   time by insert-ethers;
5. the finished frame is rendered front and rear (the Figure 1/2 substitutes).
"""

from repro.core import build_xcbc_cluster
from repro.errors import ClearanceError, PowerBudgetError, ProvisionError
from repro.hardware import (
    ATOM_D510,
    ATX_450W,
    CELERON_G1840,
    INTEL_STOCK_LGA1150,
    build_littlefe_modified,
    build_littlefe_original,
    check_budget,
    render_littlefe,
)


def main() -> None:
    print("=== Step 1: why the stock LittleFe cannot run XCBC ===")
    stock = build_littlefe_original()
    print(f"Stock LittleFe: {stock.machine.total_cores} Atom cores, "
          f"{stock.machine.rpeak_gflops:.1f} GFLOPS, diskless nodes")
    try:
        build_xcbc_cluster(stock.machine)
    except ProvisionError as exc:
        print(f"Rocks refuses it: {exc}\n")

    print("=== Step 2: the cooler problem ===")
    try:
        build_littlefe_modified(cooler=INTEL_STOCK_LGA1150)
    except ClearanceError as exc:
        print(f"Stock Celeron cooler: {exc}")
    print("-> use the Rosewill RCX-Z775-LP low-profile cooler instead\n")

    print("=== Step 3: the power problem ===")
    print(f"Atom D510 draws {ATOM_D510.tdp_watts} W; "
          f"Celeron G1840 draws {CELERON_G1840.tdp_watts} W per node")
    six_haswell_nodes_watts = 6 * 67.7  # full modified-node draw
    try:
        check_budget(ATX_450W, six_haswell_nodes_watts * 1.3,
                     what="six Haswell nodes + drives + fans on one supply")
    except PowerBudgetError as exc:
        print(f"Single-supply design fails once margins are realistic: {exc}")
    print("-> one picoPSU-160-XT per node\n")

    print("=== Step 4: the modified build, installed from scratch ===")
    quote = build_littlefe_modified()
    report = build_xcbc_cluster(quote.machine)
    cluster = report.cluster
    print(f"BOM ${quote.bom_usd:,.0f} (paper quotes ${quote.quoted_usd:,.0f})")
    for record in cluster.rocksdb.hosts():
        print(f"  {record.name:<16} {record.ip:<12} {record.appliance:<9} "
              f"{record.state.value}")
    print(f"Uniform packages across all nodes: "
          f"{len(cluster.installed_everywhere())}\n")

    print("=== Step 5: the finished frame (Figures 1-2 substitutes) ===")
    print(render_littlefe(quote.machine, view="front"))
    print()
    print(render_littlefe(quote.machine, view="rear"))


def cluster_definition():
    """Pre-flight view of the step-4 build, for ``cluster-lint``."""
    from repro.core import xcbc_cluster_definition
    from repro.hardware import build_littlefe_modified

    return xcbc_cluster_definition(build_littlefe_modified().machine)


if __name__ == "__main__":
    main()

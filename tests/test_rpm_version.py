"""rpmvercmp / EVR tests, including the property-based ordering laws."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RpmError
from repro.rpm import EVR, compare_evr, parse_evr, rpmvercmp


class TestRpmVerCmp:
    """The documented RPM corner cases."""

    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("1.0", "1.0", 0),
            ("1.0", "2.0", -1),
            ("2.0", "1.0", 1),
            ("2.0.1", "2.0", 1),           # leftover content wins
            ("1.0a", "1.0", 1),             # trailing alpha beats nothing
            ("1.0a", "1.0b", -1),           # alpha strcmp
            ("10", "9", 1),                 # numeric, not lexicographic
            ("1.010", "1.10", 0),           # leading zeros stripped
            ("6.5", "6.3", 1),              # the XCBC 0.0.8 OS bump
            ("1.0~rc1", "1.0", -1),         # tilde pre-release sorts older
            ("1.0~rc1", "1.0~rc2", -1),
            ("1.0~~", "1.0~", -1),          # double tilde older still
            ("1.0.a", "1.0.1", -1),         # digits beat alphas
            ("a", "1", -1),
            ("1_0", "1.0", 0),              # separators equivalent
            ("2.6.32", "2.6.32-431", -1),   # extra segment is newer
            ("20140628", "4.6.5", 1),       # date-style versions compare big
        ],
    )
    def test_corner_cases(self, a, b, expected):
        assert rpmvercmp(a, b) == expected

    def test_antisymmetric_on_corners(self):
        cases = ["1.0", "1.0a", "1.0~rc1", "1.010", "2.0.1", "0.0.9"]
        for a in cases:
            for b in cases:
                assert rpmvercmp(a, b) == -rpmvercmp(b, a)


class TestEvr:
    def test_parse_full(self):
        evr = parse_evr("2:1.6.4-3")
        assert (evr.epoch, evr.version, evr.release) == (2, "1.6.4", "3")

    def test_parse_no_epoch_no_release(self):
        evr = parse_evr("4.6.5")
        assert (evr.epoch, evr.version, evr.release) == (0, "4.6.5", "")

    def test_str_roundtrip(self):
        for text in ("1.0-1", "2:1.0-1", "0.0.9"):
            assert str(parse_evr(text)) == text

    @pytest.mark.parametrize("bad", ["", "1.0 2", " 1.0", "1:2:3-4"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(RpmError):
            parse_evr(bad)

    def test_epoch_dominates(self):
        assert parse_evr("1:0.1-1") > parse_evr("9.9-9")

    def test_version_dominates_release(self):
        assert parse_evr("1.1-1") > parse_evr("1.0-99")

    def test_missing_release_matches_any(self):
        # RPM's versioned-dependency rule: "openmpi >= 1.6" matches 1.6-4
        assert parse_evr("1.6") == parse_evr("1.6-4")

    def test_compare_evr_convenience(self):
        assert compare_evr("0.0.8", "0.0.9") == -1
        assert compare_evr("0.0.9-1", "0.0.9-1") == 0


# --- property-based ordering laws ----------------------------------------------

version_strings = st.from_regex(r"[0-9a-z]{1,4}(\.[0-9a-z]{1,4}){0,3}(~rc[0-9])?", fullmatch=True)


@given(version_strings)
@settings(max_examples=120)
def test_reflexive(v):
    assert rpmvercmp(v, v) == 0


@given(version_strings, version_strings)
@settings(max_examples=120)
def test_antisymmetric(a, b):
    assert rpmvercmp(a, b) == -rpmvercmp(b, a)


@given(version_strings, version_strings, version_strings)
@settings(max_examples=150)
def test_transitive(a, b, c):
    """If a<=b and b<=c then a<=c (checked over the <= relation)."""
    if rpmvercmp(a, b) <= 0 and rpmvercmp(b, c) <= 0:
        assert rpmvercmp(a, c) <= 0


@given(version_strings, version_strings)
@settings(max_examples=100)
def test_evr_total_ordering_consistent(a, b):
    ea, eb = parse_evr(a), parse_evr(b)
    assert (ea < eb) == (eb > ea)
    assert (ea == eb) == (eb == ea)
    # exactly one of <, ==, > holds
    assert sum([ea < eb, ea == eb, ea > eb]) == 1


@given(version_strings)
@settings(max_examples=80)
def test_tilde_suffix_always_older(v):
    assert rpmvercmp(v + "~beta", v) == -1

"""Yum package groups (comps.xml's ``yum groupinstall`` surface).

Section 1: XNIT "make[s] it easy for campus cluster administrators to do
one-time installations of any particular software capability they want
within the suite of the XNIT set".  Capabilities map onto yum groups: a
named set with mandatory and optional members, installable as a unit.

:mod:`repro.core.xnit` publishes the XNIT groups (one per Table 2 category
plus domain bundles); this module is the mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import YumError
from .client import YumClient
from ..rpm.transaction import TransactionResult

__all__ = ["PackageGroup", "GroupCatalog", "groupinstall"]


@dataclass(frozen=True)
class PackageGroup:
    """One comps group."""

    group_id: str
    name: str
    description: str = ""
    mandatory: tuple[str, ...] = ()
    optional: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.group_id:
            raise YumError("group id must be non-empty")
        if not self.mandatory:
            raise YumError(f"group {self.group_id}: needs mandatory packages")
        overlap = set(self.mandatory) & set(self.optional)
        if overlap:
            raise YumError(
                f"group {self.group_id}: packages both mandatory and "
                f"optional: {sorted(overlap)}"
            )

    @property
    def all_members(self) -> tuple[str, ...]:
        return self.mandatory + self.optional


class GroupCatalog:
    """The groups a repository publishes (its comps.xml)."""

    def __init__(self) -> None:
        self._groups: dict[str, PackageGroup] = {}

    def add(self, group: PackageGroup) -> None:
        if group.group_id in self._groups:
            raise YumError(f"duplicate group {group.group_id}")
        self._groups[group.group_id] = group

    def get(self, group_id: str) -> PackageGroup:
        try:
            return self._groups[group_id]
        except KeyError:
            known = ", ".join(sorted(self._groups))
            raise YumError(
                f"no such group {group_id!r}; known: {known}"
            ) from None

    def grouplist(self) -> list[PackageGroup]:
        """``yum grouplist``."""
        return [self._groups[g] for g in sorted(self._groups)]

    def groupinfo(self, group_id: str) -> str:
        """``yum groupinfo <id>``."""
        group = self.get(group_id)
        lines = [
            f"Group: {group.name}",
            f" Group-Id: {group.group_id}",
            f" Description: {group.description}",
            " Mandatory Packages:",
        ]
        lines += [f"   {name}" for name in group.mandatory]
        if group.optional:
            lines.append(" Optional Packages:")
            lines += [f"   {name}" for name in group.optional]
        return "\n".join(lines)


def groupinstall(
    client: YumClient,
    catalog: GroupCatalog,
    group_id: str,
    *,
    with_optional: bool = False,
) -> TransactionResult:
    """``yum groupinstall <id>`` against a client.

    Installs the group's mandatory members (plus optional ones on request)
    as one transaction; members already installed are skipped.
    """
    group = catalog.get(group_id)
    targets = list(group.mandatory) + (
        list(group.optional) if with_optional else []
    )
    missing = [name for name in targets if not client.db.has(name)]
    if not missing:
        raise YumError(f"group {group_id!r}: nothing to do")
    return client.groupinstall(group.name, missing)

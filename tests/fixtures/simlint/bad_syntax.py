"""Known-bad fixture: does not parse (SL000)."""

def broken(:
    return

"""XCBC tests: the XSEDE roll, the from-scratch build, and release history."""

import pytest

from repro.core import (
    ADDED_IN_0_0_8,
    ADDED_IN_0_0_9,
    CURRENT_RELEASE,
    RELEASES,
    build_xcbc_cluster,
    build_xsede_roll,
    get_xcbc_release,
    packages_by_category,
    packages_for_release,
    xsede_package_names,
    xsede_packages,
)
from repro.core.packages_xsede import (
    CATEGORY_COMPILERS,
    CATEGORY_MISC,
    CATEGORY_SCHEDULER,
    CATEGORY_SCIENCE,
    CATEGORY_XSEDE,
    TABLE2_CATEGORIES,
)
from repro.errors import ReproError, RocksError


class TestCatalogue:
    def test_every_table2_category_populated(self):
        grouped = packages_by_category()
        for category in TABLE2_CATEGORIES:
            assert grouped[category], category

    def test_headline_packages_present(self):
        names = set(xsede_package_names())
        for name in (
            "gcc", "openmpi", "mpich2", "fftw", "hdf5", "R", "python",
            "gromacs", "lammps", "petsc", "ncbi-blast", "mpiblast", "gatk",
            "trinity", "numpy", "octave", "torque", "maui",
            "globus-connect-server", "genesis2", "gffs",
        ):
            assert name in names, name

    def test_no_duplicate_names(self):
        names = xsede_package_names()
        assert len(names) == len(set(names))

    def test_all_dependencies_resolve_within_catalogue_plus_base(self):
        from repro.distro import CENTOS_6_5
        from repro.rocks import base_os_packages

        available = {p.name for p in xsede_packages()}
        available |= {p.name for p in base_os_packages(CENTOS_6_5)}
        for pkg in xsede_packages():
            for req in pkg.requires:
                assert req.name in available, f"{pkg.name} requires {req.name}"

    def test_scheduler_category_is_maui_torque(self):
        names = {p.name for p in packages_by_category()[CATEGORY_SCHEDULER]}
        assert names == {"maui", "torque"}

    def test_xsede_tools_category(self):
        names = {p.name for p in packages_by_category()[CATEGORY_XSEDE]}
        assert names == {"globus-connect-server", "genesis2", "gffs"}

    def test_apps_get_opt_trees_and_modules(self):
        gromacs = next(p for p in xsede_packages() if p.name == "gromacs")
        assert gromacs.modulefile == "gromacs/4.6.5"
        assert "/opt/gromacs/.keep" in gromacs.files


class TestReleaseHistory:
    def test_paper_addition_counts(self):
        # Section 2: "27 scientific and supporting packages have been added"
        assert len(ADDED_IN_0_0_8) == 27
        # "The 0.0.9 release ... saw 41 additions"
        assert len(ADDED_IN_0_0_9) == 41

    def test_additions_are_catalogue_members_and_disjoint(self):
        names = set(xsede_package_names())
        assert set(ADDED_IN_0_0_8) <= names
        assert set(ADDED_IN_0_0_9) <= names
        assert not set(ADDED_IN_0_0_8) & set(ADDED_IN_0_0_9)

    def test_named_additions_from_the_text(self):
        # "including GenomeAnalysisTK, gromacs, mpiblast" (gatk = GenomeAnalysisTK)
        for name in ("gatk", "gromacs", "mpiblast"):
            assert name in ADDED_IN_0_0_8
        # "including TrinityRNASeq, R" (trinity = TrinityRNASeq)
        for name in ("trinity", "R"):
            assert name in ADDED_IN_0_0_9

    def test_os_bump_at_0_0_8(self):
        # "a major OS release update from Centos 6.3 to 6.5"
        assert get_xcbc_release("0.0.7").os_release.version == "6.3"
        assert get_xcbc_release("0.0.8").os_release.version == "6.5"

    def test_releases_cumulative(self):
        n7 = len(packages_for_release("0.0.7"))
        n8 = len(packages_for_release("0.0.8"))
        n9 = len(packages_for_release("0.0.9"))
        assert n8 == n7 + 27
        assert n9 == n8 + 41

    def test_java_updates_across_releases(self):
        # "significant Java updates" = version bumps, not additions
        def java_version(version):
            return next(
                p.version
                for p in packages_for_release(version)
                if p.name == "java-1.7.0-openjdk"
            )

        v7, v8, v9 = java_version("0.0.7"), java_version("0.0.8"), java_version("0.0.9")
        assert v7 < v8 < v9

    def test_unknown_release_rejected(self):
        with pytest.raises(ReproError, match="known"):
            get_xcbc_release("1.0.0")

    def test_current_release_is_0_0_9(self):
        assert CURRENT_RELEASE.version == "0.0.9"
        assert RELEASES[-1] is CURRENT_RELEASE


class TestXsedeRoll:
    def test_roll_carries_catalogue_minus_scheduler(self):
        roll = build_xsede_roll()
        names = set(roll.package_names())
        assert "gromacs" in names and "R" in names
        # scheduler packages come from the job-management roll instead
        assert "torque" not in names and "maui" not in names

    def test_grid_services_frontend_only(self):
        roll = build_xsede_roll()
        grid = next(f for f in roll.fragments if f.node_name == "xsede-grid-services")
        assert grid.attach_to == ("frontend",)
        assert "globus-connect-server" in grid.packages

    def test_roll_versioned_by_release(self):
        roll = build_xsede_roll("0.0.8")
        assert roll.version == "0.0.8"
        assert "trinity" not in set(roll.package_names())


class TestXcbcBuild:
    def test_full_build_on_littlefe(self, xcbc_littlefe):
        cluster = xcbc_littlefe.cluster
        assert xcbc_littlefe.node_count == 6
        assert "xsede" in cluster.roll_names()
        fe = cluster.frontend
        # run-alike surface everywhere
        for command in ("mdrun", "R", "qsub", "mpirun"):
            assert fe.has_command(command), command
        for host in cluster.hosts()[1:]:
            assert host.has_command("mdrun")
            # grid services are frontend-only
            assert not host.has_command("globus-url-copy")

    def test_modules_installed(self, xcbc_littlefe):
        fe = xcbc_littlefe.cluster.frontend
        for module in ("gromacs/4.6.5", "openmpi/1.6.4", "R/3.1.2"):
            assert fe.modules.has(module), module

    def test_os_release_follows_roll_version(self, littlefe_machine):
        report = build_xcbc_cluster(
            littlefe_machine, roll_version="0.0.7", include_optional_rolls=False
        )
        assert report.cluster.frontend.release_string() == "CentOS 6.3"

    def test_diskless_machine_cannot_take_xcbc(self, limulus_machine):
        from repro.errors import ProvisionError

        with pytest.raises(ProvisionError, match="XNIT instead"):
            build_xcbc_cluster(limulus_machine)

    def test_duplicate_extra_roll_rejected(self, littlefe_machine):
        from repro.rocks import optional_rolls

        with pytest.raises(RocksError, match="twice"):
            build_xcbc_cluster(
                littlefe_machine, extra_rolls=[optional_rolls()["hpc"]]
            )

    def test_uniform_environment_across_nodes(self, xcbc_littlefe):
        cluster = xcbc_littlefe.cluster
        common = cluster.installed_everywhere()
        # the run-alike set (minus frontend-only grid tools) is uniform
        assert "gromacs" in common
        assert "openmpi" in common
        assert xcbc_littlefe.uniform_package_count > 100


class TestReleaseNotesAndRebuilds:
    def test_release_notes_render_from_history(self):
        from repro.core import render_release_notes

        notes8 = render_release_notes("0.0.8")
        assert "OS update: CentOS 6.3 -> CentOS 6.5" in notes8
        assert "27 package additions" in notes8
        assert "gromacs" in notes8
        notes9 = render_release_notes("0.0.9")
        assert "41 package additions" in notes9
        assert "java-1.7.0-openjdk: 1.7.0.65 -> 1.7.0.79" in notes9
        assert "Total packages in this release: 117" in notes9

    def test_baseline_notes_have_no_delta_sections(self):
        from repro.core import render_release_notes

        notes7 = render_release_notes("0.0.7")
        assert "package additions" not in notes7
        assert "Total packages in this release: 49" in notes7

    def test_teardown_and_rebuild_story(self, littlefe_machine):
        """Section 4: Howard/Marshall ran another management system, were
        torn down, and rebuilt from scratch with XCBC."""
        from repro.core import audit_host, teardown_and_rebuild

        prior, report = teardown_and_rebuild(littlefe_machine)
        # before: the prior manager ran, the XSEDE stack did not
        prior_db = prior.client_for(prior.frontend).db
        assert prior_db.has("prior-cluster-manager")
        assert not prior_db.has("gromacs")
        # after: bare-metal rebuild — the old stack is GONE, the new is clean
        new = report.cluster
        assert not new.frontend_db.has("prior-cluster-manager")
        assert not new.frontend.has_command("pcm-admin")
        audit = audit_host(new.frontend, new.frontend_db)
        assert audit.overall == 1.0

    def test_section4_rebuilt_sites_recorded(self):
        from repro.core import SECTION4_REBUILT_SITES

        assert "Howard University" in SECTION4_REBUILT_SITES
        assert "Marshall University" in SECTION4_REBUILT_SITES

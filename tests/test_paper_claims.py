"""End-to-end reproduction checks: one test per headline paper claim.

These are the integration tests tying the whole stack together — each
asserts a number or behaviour the paper states, through the same code paths
the benchmark harness uses.
"""

import pytest

from repro.core import (
    TABLE3_SITES,
    audit_host,
    build_xnit_repository,
    diff_environments,
    table3_totals,
    xsede_package_names,
)
from repro.linpack import benchmark_machine, price_performance


class TestAbstractClaims:
    def test_xcbc_is_all_at_once_from_scratch(self, xcbc_littlefe):
        """One call takes bare validated hardware to a working cluster."""
        cluster = xcbc_littlefe.cluster
        assert cluster.frontend.services.is_running("pbs_server")
        assert all(
            host.services.is_running("pbs_mom") for host in cluster.hosts()[1:]
        )

    def test_xnit_installs_in_portions(self, xnit_limulus):
        """Specific tools can be installed without rebuilding."""
        client = xnit_limulus.client_for(xnit_limulus.frontend)
        # the vendor stack from before integration is still there
        assert client.db.has("limulus-manage")

    def test_both_approaches_converge(self, xcbc_littlefe, xnit_limulus):
        """The abstract's central claim, as an executable assertion."""
        diff = diff_environments(
            xcbc_littlefe.cluster.frontend_db,
            xnit_limulus.client_for(xnit_limulus.frontend).db,
        )
        assert diff.converged
        xcbc_audit = audit_host(
            xcbc_littlefe.cluster.frontend, xcbc_littlefe.cluster.frontend_db
        )
        xnit_audit = audit_host(
            xnit_limulus.frontend,
            xnit_limulus.client_for(xnit_limulus.frontend).db,
        )
        assert xcbc_audit.overall == pytest.approx(xnit_audit.overall)
        assert xcbc_audit.overall == pytest.approx(1.0)


class TestTable3:
    def test_published_totals(self):
        assert table3_totals() == (304, 2708, 49.61)

    def test_almost_50_tflops_claim(self):
        # "Clusters making use of XCBC or XNIT total almost 50 TFLOPS"
        _n, _c, tf = table3_totals()
        assert 49.0 < tf < 50.0


class TestTable4:
    def test_row_littlefe(self, littlefe_quote):
        m = littlefe_quote.machine
        assert (m.node_count, m.clock_ghz, m.cpu_count, m.total_cores) == (
            6, pytest.approx(2.8), 6, 12,
        )

    def test_row_limulus(self, limulus_quote):
        m = limulus_quote.machine
        assert (m.node_count, m.clock_ghz, m.cpu_count, m.total_cores) == (
            4, pytest.approx(3.1), 4, 16,
        )


class TestTable5:
    def test_littlefe_row(self, littlefe_quote):
        # the table row uses the paper's own 75 %-of-peak estimation rule
        report = benchmark_machine(littlefe_quote.machine, estimate_fraction=0.75)
        pp = price_performance(report, littlefe_quote.quoted_usd)
        assert report.rpeak_gflops == pytest.approx(537.6)
        assert report.rmax_gflops == pytest.approx(403.2)
        assert round(pp.usd_per_rpeak_gflops) == 7
        assert round(pp.usd_per_rmax_gflops) == 9
        assert report.estimated
        # the model's genuine prediction lands near the paper's estimate
        model = benchmark_machine(littlefe_quote.machine)
        assert model.rmax_gflops == pytest.approx(403.2, rel=0.10)

    def test_limulus_row(self, limulus_quote):
        report = benchmark_machine(limulus_quote.machine)
        pp = price_performance(report, limulus_quote.quoted_usd)
        assert report.rpeak_gflops == pytest.approx(793.6)
        assert report.rmax_gflops == pytest.approx(498.3, rel=0.05)
        assert round(pp.usd_per_rpeak_gflops) == 8
        assert round(pp.usd_per_rmax_gflops) == 12

    def test_half_teraflops_deskside_under_4000(self, littlefe_quote):
        # "A half-TeraFLOPS deskside cluster for under $4,000"
        assert littlefe_quote.machine.rpeak_gflops > 500
        assert littlefe_quote.quoted_usd < 4000

    def test_three_quarter_teraflops_commercial(self, limulus_quote):
        # "a roughly $6,000, three-quarter-TeraFLOPS deskside system"
        assert limulus_quote.machine.rpeak_gflops > 750
        assert limulus_quote.quoted_usd == pytest.approx(5995.0)

    def test_littlefe_cheaper_per_gflops(self, littlefe_quote, limulus_quote):
        # Section 8: "the LittleFe modified design we present offers
        # performance comparable to the Limulus HPC200 at a lower price point"
        lf = price_performance(
            benchmark_machine(littlefe_quote.machine, estimate_fraction=0.75),
            littlefe_quote.quoted_usd,
        )
        lm = price_performance(
            benchmark_machine(limulus_quote.machine), limulus_quote.quoted_usd
        )
        assert lf.usd_per_rpeak_gflops < lm.usd_per_rpeak_gflops
        assert lf.usd_per_rmax_gflops < lm.usd_per_rmax_gflops


class TestSection5Engineering:
    def test_rocks_needs_disks_story(self, original_littlefe_quote, littlefe_quote):
        """Stock LittleFe (diskless) fails XCBC; modified build passes."""
        from repro.core import build_xcbc_cluster
        from repro.errors import ProvisionError

        with pytest.raises(ProvisionError):
            build_xcbc_cluster(original_littlefe_quote.machine)
        report = build_xcbc_cluster(littlefe_quote.machine)
        assert report.node_count == 6

    def test_atom_vs_celeron_power_ratio(self):
        from repro.hardware import ATOM_D510, CELERON_G1840

        # 43.06 / 10.56 — the 4x power jump that forced per-node PSUs
        ratio = CELERON_G1840.tdp_watts / ATOM_D510.tdp_watts
        assert ratio == pytest.approx(4.08, abs=0.01)


class TestRepositoryScale:
    def test_xnit_superset_of_xcbc(self):
        repo = build_xnit_repository()
        catalogue = set(xsede_package_names())
        assert catalogue <= repo.names()
        assert repo.names() - catalogue  # strictly more

    def test_dozens_of_packages_claim(self):
        # "the XNIT Yum repository as a source of RPMs for dozens of useful
        # software packages"
        assert build_xnit_repository().package_count() > 100

"""Crash-consistent snapshots: the simulated stack as canonical JSON.

A :class:`Snapshot` captures one world's complete declarative state — the
kernel (clock, RNG, pending-event shadow), scheduler queues and node
flags, monitoring mesh, mirror contents, package and host databases — at
a driver-step boundary, plus a SHA-256 digest over the canonical JSON
encoding of that state.

Restore is **state-verified deterministic replay** rather than object
revival: event-queue callbacks are closures and cannot leave the process,
so :meth:`CheckpointManager.restore` rebuilds the world from its
configuration, replays exactly ``snapshot.steps`` driver steps (the
kernel's determinism contract makes this land in the identical state),
and then *proves* it by digesting the rebuilt state against the
snapshot.  The serialized state is load-bearing as the corruption and
divergence check — a single differing field fails the restore loudly with
the paths that diverged.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import CheckpointError

__all__ = [
    "FORMAT_VERSION",
    "canonical_json",
    "state_digest",
    "diff_states",
    "Snapshot",
]

#: Bump on any incompatible change to the snapshot layout.
FORMAT_VERSION = 1


def canonical_json(obj: Any) -> str:
    """The one true encoding: sorted keys, compact separators, no NaN."""
    try:
        return json.dumps(
            obj, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"state is not canonical-JSON-able: {exc}") from exc


def state_digest(state: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON encoding of ``state``."""
    return hashlib.sha256(canonical_json(state).encode()).hexdigest()


def diff_states(
    expected: Any, actual: Any, *, prefix: str = "", limit: int = 20
) -> list[str]:
    """Dotted paths where two state trees differ (first ``limit`` shown).

    The debugging half of digest verification: a mismatched restore tells
    you *where* the replayed world diverged, not just that it did.
    """
    diffs: list[str] = []

    def walk(a: Any, b: Any, path: str) -> None:
        if len(diffs) >= limit:
            return
        if isinstance(a, Mapping) and isinstance(b, Mapping):
            for key in sorted(set(a) | set(b)):
                sub = f"{path}.{key}" if path else str(key)
                if key not in a:
                    diffs.append(f"{sub}: unexpected (only in actual)")
                elif key not in b:
                    diffs.append(f"{sub}: missing from actual")
                else:
                    walk(a[key], b[key], sub)
        elif isinstance(a, list) and isinstance(b, list):
            if len(a) != len(b):
                diffs.append(f"{path}: length {len(a)} != {len(b)}")
                return
            for index, (x, y) in enumerate(zip(a, b)):
                walk(x, y, f"{path}[{index}]")
        elif a != b:
            diffs.append(f"{path}: {a!r} != {b!r}")

    walk(expected, actual, prefix)
    return diffs[:limit]


@dataclass(frozen=True)
class Snapshot:
    """One checkpoint of a world, at a driver-step boundary.

    ``steps`` is the resume position — how many top-level driver steps the
    world had taken; ``config`` is everything needed to rebuild the world
    from scratch; ``state`` the full declarative state tree; ``digest``
    its canonical-JSON SHA-256.  ``trace_sha256``/``trace_len`` pin the
    trace prefix, so a resumed run is checked against the original bytes
    too, not only the object state.
    """

    world: str
    steps: int
    now_s: float
    events_processed: int
    config: dict[str, Any]
    state: dict[str, Any]
    trace_len: int
    trace_sha256: str
    digest: str
    label: str = ""
    version: int = FORMAT_VERSION

    def verify(self) -> None:
        """Recompute the state digest; raise on tamper/corruption."""
        actual = state_digest(self.state)
        if actual != self.digest:
            raise CheckpointError(
                f"snapshot {self.label or self.steps}: state digest mismatch "
                f"({actual[:12]} != recorded {self.digest[:12]}) — snapshot "
                f"corrupted or hand-edited"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "world": self.world,
            "label": self.label,
            "steps": self.steps,
            "now_s": self.now_s,
            "events_processed": self.events_processed,
            "config": dict(self.config),
            "state": dict(self.state),
            "trace_len": self.trace_len,
            "trace_sha256": self.trace_sha256,
            "digest": self.digest,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path) -> None:
        pathlib.Path(path).write_text(self.to_json())

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "Snapshot":
        missing = [
            key
            for key in (
                "version", "world", "steps", "now_s", "events_processed",
                "config", "state", "trace_len", "trace_sha256", "digest",
            )
            if key not in obj
        ]
        if missing:
            raise CheckpointError(f"snapshot missing fields: {missing}")
        version = int(obj["version"])
        if version != FORMAT_VERSION:
            raise CheckpointError(
                f"snapshot format v{version} is not supported "
                f"(this build reads v{FORMAT_VERSION})"
            )
        snapshot = cls(
            world=str(obj["world"]),
            steps=int(obj["steps"]),
            now_s=float(obj["now_s"]),
            events_processed=int(obj["events_processed"]),
            config=dict(obj["config"]),
            state=dict(obj["state"]),
            trace_len=int(obj["trace_len"]),
            trace_sha256=str(obj["trace_sha256"]),
            digest=str(obj["digest"]),
            label=str(obj.get("label", "")),
            version=version,
        )
        snapshot.verify()
        return snapshot

    @classmethod
    def from_json(cls, text: str) -> "Snapshot":
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"snapshot is not valid JSON: {exc.msg}") from exc
        if not isinstance(obj, Mapping):
            raise CheckpointError("snapshot must be a JSON object")
        return cls.from_dict(obj)

    @classmethod
    def load(cls, path) -> "Snapshot":
        return cls.from_json(pathlib.Path(path).read_text())

"""Content-addressed lazy delivery: chunking, the store, the hierarchy.

The heavyweight guarantees are property-based: a chunked mirror must end
byte-identical to a whole-NEVRA mirror under any interleaving of
publishes, interruptions, and corruptions; and no publish / rollback /
prune churn may ever leak a chunk refcount.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cas import (
    CHUNK_SIZE,
    ChunkingPolicy,
    ChunkStore,
    LazyDelivery,
    SiteChunkCache,
    Stratum0,
    Stratum1,
    cas_confluence_problems,
    chunk_package,
    recover_stratum0,
)
from repro.errors import CasError, CasIntegrityError, YumError
from repro.faults.retry import RetryPolicy
from repro.recovery import Journal
from repro.rpm import Package
from repro.sim import SimKernel
from repro.yum import MirrorLink, RepoMirror, Repository

MB = 1024 * 1024


def make_link():
    return MirrorLink(bandwidth_bytes_s=50 * MB, latency_s=0.01)


def release(version, n=6, size=2 * MB):
    return [Package(f"pkg{i}", version, size_bytes=size) for i in range(n)]


# --- chunking ---------------------------------------------------------------------


class TestChunking:
    def test_deterministic_and_sized(self):
        pkg = Package("gcc", "4.8", size_bytes=3 * MB + 17)
        a = chunk_package(pkg)
        b = chunk_package(pkg)
        assert a == b
        assert sum(c.size for c in a.chunks) == pkg.size_bytes
        assert len(a.chunks) == -(-pkg.size_bytes // CHUNK_SIZE)

    def test_adjacent_versions_share_most_chunks(self):
        v1 = chunk_package(Package("openmpi", "1.6", size_bytes=8 * MB))
        v2 = chunk_package(Package("openmpi", "1.8", size_bytes=8 * MB))
        shared = set(v1.digests) & set(v2.digests)
        # delta_fraction defaults to 12.5%; sharing must clearly dominate
        assert len(shared) > len(v2.chunks) // 2
        assert set(v1.digests) != set(v2.digests) or v1 == v2

    def test_different_names_never_collide(self):
        a = chunk_package(Package("alpha", "1.0", size_bytes=MB))
        b = chunk_package(Package("beta", "1.0", size_bytes=MB))
        assert not set(a.digests) & set(b.digests)

    def test_policy_validation(self):
        with pytest.raises(CasError):
            ChunkingPolicy(chunk_size=0)
        with pytest.raises(CasError):
            ChunkingPolicy(delta_fraction=1.5)


# --- the chunk store --------------------------------------------------------------


class TestChunkStore:
    def test_put_dedups_and_verifies(self):
        store = ChunkStore()
        manifest = chunk_package(Package("a", "1.0", size_bytes=MB))
        chunk = manifest.chunks[0]
        assert store.put(chunk) is True
        assert store.put(chunk) is False  # already held
        from repro.cas.chunks import Chunk

        with pytest.raises(CasIntegrityError):
            store.put(Chunk(digest=chunk.digest, size=chunk.size + 1))

    def test_refcounts_gc(self):
        store = ChunkStore()
        manifest = chunk_package(Package("a", "1.0", size_bytes=MB))
        store.retain(manifest)
        store.retain(manifest)
        assert store.refcount(manifest.chunks[0].digest) == 2
        store.release(manifest)
        store.release(manifest)
        evicted, freed = store.gc()
        assert evicted == len(manifest.chunks)
        assert freed == MB
        assert store.chunk_count == 0
        with pytest.raises(CasError):
            store.release(manifest)  # would go negative

    def test_missing_of_preserves_order(self):
        store = ChunkStore()
        manifest = chunk_package(Package("a", "1.0", size_bytes=3 * MB))
        store.put(manifest.chunks[1])
        missing = store.missing_of(manifest.chunks)
        assert [c.digest for c in missing] == [
            c.digest for c in manifest.chunks if c != manifest.chunks[1]
        ]


# --- stratum 0: transactional publish / rollback / prune --------------------------


class TestStratum0:
    def test_publish_dedups_delta(self):
        s0 = Stratum0("origin", kernel=SimKernel(seed=1))
        first = s0.publish(release("1.0"))
        second = s0.publish(release("2.0"))
        assert first.serial == 1 and second.serial == 2
        assert first.new_chunks == first.chunks
        assert second.new_chunks < second.chunks  # the dedup delta
        assert second.nbytes < first.nbytes / 3

    def test_rollback_moves_forward(self):
        kernel = SimKernel(seed=2)
        s0 = Stratum0("origin", kernel=kernel)
        s0.publish(release("1.0"))
        v1_catalog = dict(s0.catalog)
        s0.publish(release("2.0"))
        stats = s0.rollback()
        assert stats.serial == 3  # Guix-style: a NEW generation
        assert s0.catalog == v1_catalog
        assert not cas_confluence_problems(kernel.trace.events, strata=[s0])

    def test_rollback_empty_refuses(self):
        with pytest.raises(CasError):
            Stratum0("origin", kernel=SimKernel(seed=3)).rollback()

    def test_prune_collects_dropped_generations(self):
        s0 = Stratum0("origin", kernel=SimKernel(seed=4))
        for v in ("1.0", "2.0", "3.0"):
            s0.publish(release(v))
        dropped, evicted, freed = s0.prune(keep=1)
        assert dropped == 3  # generations 0, 1, 2
        assert evicted > 0 and freed > 0
        assert not s0.store.refcount_problems(s0.live_manifests())

    def test_crash_mid_publish_recovers(self):
        journal = Journal()
        s0 = Stratum0("origin", kernel=SimKernel(seed=5), journal=journal)
        s0.publish(release("1.0"))
        # Simulate a crash between applied and commit: run the flip but
        # leave the journal transaction open.
        committed = s0.serial
        catalog = {p.nevra: s0.policy.manifest(p) for p in release("2.0")}
        txn = journal.begin("cas.publish", catalog=s0.name, note="publish")
        journal.intent(txn, "flip", serial=s0.serial + 1, nevras=sorted(catalog))
        for nevra in sorted(catalog):
            s0.store.retain(catalog[nevra])
        s0._catalogs[s0.serial + 1] = catalog
        s0.serial += 1
        # ... crash: no applied/commit.  Recovery undoes the half-flip.
        resolved = recover_stratum0(journal, s0)
        assert len(resolved) == 1
        assert s0.serial == committed
        assert not journal.open_txns("cas.publish")
        assert not s0.store.refcount_problems(s0.live_manifests())


# --- stratum 1: chunk-delta replication -------------------------------------------


class TestStratum1:
    def test_replicates_only_the_delta(self):
        kernel = SimKernel(seed=6)
        s0 = Stratum0("origin", kernel=kernel)
        s1 = Stratum1("replica", s0, make_link(), kernel=kernel)
        s0.publish(release("1.0"))
        cold = s1.replicate()
        s0.publish(release("2.0"))
        update = s1.replicate()
        assert not update.skipped
        assert update.nbytes < cold.nbytes / 3
        again = s1.replicate()
        assert again.skipped and again.nbytes == 0
        assert not s1.problems()

    def test_interruption_resumes_at_chunk_granularity(self):
        kernel = SimKernel(seed=7)
        s0 = Stratum0("origin", kernel=kernel)
        s1 = Stratum1("replica", s0, make_link(), kernel=kernel)
        s0.publish(release("1.0"))
        s1.inject_interruptions(1)
        with pytest.raises(CasError):
            s1.replicate()
        landed = s1.store.chunk_count
        assert landed > 0  # half the missing chunks stayed
        resumed = s1.replicate()
        assert resumed.chunks + landed == s0.store.chunk_count
        assert s1.is_current
        assert not s1.problems()

    def test_retry_policy_drives_resume(self):
        kernel = SimKernel(seed=8)
        s0 = Stratum0("origin", kernel=kernel)
        s1 = Stratum1(
            "replica", s0, make_link(), kernel=kernel,
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.5),
        )
        s0.publish(release("1.0"))
        s1.inject_interruptions(2)
        stats = s1.replicate()  # retries internally
        assert s1.is_current
        assert stats.serial == s0.serial


# --- the site tier + lazy delivery ------------------------------------------------


class TestSiteCache:
    def chain(self, seed=9):
        kernel = SimKernel(seed=seed)
        s0 = Stratum0("origin", kernel=kernel)
        s1 = Stratum1("replica", s0, make_link(), kernel=kernel)
        site = SiteChunkCache("campus", s1, make_link(), kernel=kernel)
        return kernel, s0, s1, site

    def test_needs_upstream_or_policy(self):
        with pytest.raises(CasError):
            SiteChunkCache("campus")

    def test_wave_of_nodes_shares_one_upstream_pull(self):
        kernel, s0, s1, site = self.chain()
        pkgs = release("1.0")
        s0.publish(pkgs)
        s1.replicate()
        delivery = LazyDelivery(site)
        for node in range(8):
            for pkg in pkgs:
                delivery.fetch_package(f"node{node}", pkg)
        total = sum(p.size_bytes for p in pkgs)
        assert site.wan_bytes == total          # one copy crossed the uplink
        assert delivery.stats.bytes_fetched == 8 * total  # LAN fan-out
        assert not cas_confluence_problems(
            kernel.trace.events, strata=[s0], replicas=[s1], caches=[site]
        )

    def test_update_moves_only_delta_chunks(self):
        kernel, s0, s1, site = self.chain()
        s0.publish(release("1.0"))
        s1.replicate()
        delivery = LazyDelivery(site)
        for pkg in release("1.0"):
            delivery.fetch_package("node0", pkg)
        cold_wan = site.wan_bytes
        s0.publish(release("2.0"))
        s1.replicate()
        site.notice_release(s0.serial)
        for pkg in release("2.0"):
            delivery.fetch_package("node0", pkg)
        assert site.wan_bytes - cold_wan < cold_wan / 3
        assert delivery.stats.bytes_reused > 0

    def test_release_serial_never_regresses(self):
        _, s0, _, site = self.chain()
        s0.publish(release("1.0"))
        site.notice_release(3)
        with pytest.raises(CasError):
            site.notice_release(2)

    def test_no_upstream_miss_raises(self):
        policy = ChunkingPolicy()
        site = SiteChunkCache("island", policy=policy, kernel=SimKernel(seed=10))
        with pytest.raises(CasError):
            site.fetch_package(Package("a", "1.0", size_bytes=MB))

    def test_ingest_makes_fetch_free(self):
        policy = ChunkingPolicy()
        site = SiteChunkCache("campus", policy=policy, kernel=SimKernel(seed=11))
        pkg = Package("a", "1.0", size_bytes=MB)
        assert site.ingest_package(pkg) == len(policy.manifest(pkg).chunks)
        stats = site.fetch_package(pkg)
        assert stats.nbytes == 0 and stats.hit_chunks == stats.chunks


# --- SiteProxy integration --------------------------------------------------------


class TestProxyIntegration:
    def test_proxy_seeds_chunk_cache(self):
        from repro.repod import RepoServer, SiteProxy

        kernel = SimKernel(seed=12)
        pkgs = release("1.0", n=3)
        s0 = Stratum0("origin", kernel=kernel)
        s0.publish(pkgs)
        server = RepoServer("origin", kernel=kernel, link=make_link())
        server.publish(pkgs)
        proxy = SiteProxy("campus", server, kernel=kernel)
        cache = SiteChunkCache("campus-chunks", policy=s0.policy, kernel=kernel)
        proxy.attach_chunk_cache(cache)
        proxy.notice_release(server.serial)
        assert cache._chunk_epoch == server.serial  # forwarded
        result = proxy.fetch_blocking(pkgs[0].name)
        assert result.ok
        assert cache.chunk_count == len(s0.policy.manifest(pkgs[0]).chunks)
        # the package that came through the proxy now installs WAN-free
        stats = LazyDelivery(cache).fetch_package("node0", pkgs[0])
        assert stats.nbytes == 0

    def test_proxy_forwards_backwards_serial_refusal(self):
        from repro.repod import RepoServer, SiteProxy

        kernel = SimKernel(seed=13)
        server = RepoServer("origin", kernel=kernel, link=make_link())
        proxy = SiteProxy("campus", server, kernel=kernel)
        cache = SiteChunkCache(
            "campus-chunks", policy=ChunkingPolicy(), kernel=kernel
        )
        proxy.attach_chunk_cache(cache)
        proxy.notice_release(5)
        assert cache._chunk_epoch == 5


# --- installer integration --------------------------------------------------------


class TestLazyInstall:
    def test_transaction_fetch_failure_rolls_back(self):
        from repro.distro import CENTOS_6_5, Host
        from repro.errors import TransactionError
        from repro.hardware import build_littlefe_modified
        from repro.rpm import RpmDatabase, Transaction

        host = Host(build_littlefe_modified().machine.head, CENTOS_6_5)
        db = RpmDatabase(host)
        # A site cache with no upstream and no content: every fetch fails.
        site = SiteChunkCache(
            "island", policy=ChunkingPolicy(), kernel=SimKernel(seed=14)
        )
        txn = Transaction(db, delivery=LazyDelivery(site))
        txn.install(Package("solo", "1.0", size_bytes=MB))
        with pytest.raises(TransactionError):
            txn.commit()
        assert not db.has("solo")  # rolled back, nothing half-landed

    def test_installer_delivery_matches_plain_install(self):
        from repro.hardware import build_littlefe_modified
        from repro.rocks.installer import RocksInstaller

        machine = build_littlefe_modified().machine
        plain = RocksInstaller(machine).run()

        kernel = SimKernel(seed=15)
        s0 = Stratum0("xsede", kernel=kernel)
        s0.publish(list(RocksInstaller(machine).build_distribution().all_packages()))
        s1 = Stratum1("replica", s0, make_link(), kernel=kernel)
        s1.replicate()
        site = SiteChunkCache("campus", s1, make_link(), kernel=kernel)
        delivery = LazyDelivery(site)
        lazy = RocksInstaller(machine, delivery=delivery).run()

        assert lazy.installed_everywhere() == plain.installed_everywhere()
        assert delivery.stats.packages > 0
        # wave sharing: the campus uplink moved far fewer bytes than the LAN
        assert site.wan_bytes < delivery.stats.bytes_fetched
        assert not cas_confluence_problems(
            kernel.trace.events, strata=[s0], replicas=[s1], caches=[site]
        )


# --- chunked mirror sync ----------------------------------------------------------


class TestChunkedMirror:
    def test_zero_landed_interruption_charges_probe_only(self):
        # Regression: an interrupted sync that landed nothing used to be
        # charged requests=max(1, cutoff) round trips anyway.
        kernel = SimKernel(seed=16)
        upstream = Repository("one")
        upstream.add(Package("solo", "1.0", size_bytes=4 * MB))
        link = make_link()
        mirror = RepoMirror(upstream, link, kernel=kernel)
        mirror.inject_interruptions(1)
        t0 = kernel.now_s
        with pytest.raises(YumError):
            mirror.sync()
        assert kernel.now_s - t0 == pytest.approx(
            link.transfer_time_s(16 * 1024)
        )

    def test_requests_follow_fetched_plus_refetched(self):
        kernel = SimKernel(seed=17)
        upstream = Repository("xsede")
        upstream.add_all(release("1.0", n=4))
        link = make_link()
        mirror = RepoMirror(upstream, link, kernel=kernel)
        mirror.corrupt_next({"pkg0-1.0-1.x86_64"})
        t0 = kernel.now_s
        stats = mirror.sync()
        expected = link.transfer_time_s(16 * 1024) + link.transfer_time_s(
            stats.bytes_transferred, requests=4 + 1
        )
        assert kernel.now_s - t0 == pytest.approx(expected)

    def test_chunked_update_sync_moves_only_delta(self):
        kernel = SimKernel(seed=18)
        upstream = Repository("xsede")
        upstream.add_all(release("1.0"))
        mirror = RepoMirror(
            upstream, make_link(), kernel=kernel, chunk_store=ChunkStore()
        )
        cold = mirror.sync()
        v2 = Repository("xsede")
        v2.add_all(release("2.0"))
        mirror.upstream = v2
        update = mirror.sync()
        assert update.bytes_transferred < cold.bytes_transferred / 3
        assert {p.nevra for p in mirror.local.all_packages()} == {
            p.nevra for p in v2.all_packages()
        }

    def test_interrupted_chunked_sync_resumes_mid_package(self):
        kernel = SimKernel(seed=19)
        upstream = Repository("one")
        upstream.add(Package("big", "1.0", size_bytes=8 * MB))
        store = ChunkStore()
        mirror = RepoMirror(
            upstream, make_link(), kernel=kernel, chunk_store=store
        )
        mirror.inject_interruptions(1)
        with pytest.raises(YumError):
            mirror.sync()
        staged = store.chunk_count
        assert 0 < staged < 32  # half of one package's chunks landed
        resumed = mirror.sync()
        total = -(-8 * MB // CHUNK_SIZE) * CHUNK_SIZE
        assert resumed.bytes_transferred == total - staged * CHUNK_SIZE


# --- properties -------------------------------------------------------------------

mirror_ops = st.lists(
    st.sampled_from(["publish", "interrupt", "corrupt", "sync"]),
    min_size=1,
    max_size=10,
)


@given(mirror_ops)
@settings(max_examples=25, deadline=None)
def test_property_chunked_mirror_matches_whole_nevra(ops):
    """Under any interleaving of publishes, interruptions, and corruptions,
    a chunked mirror converges to the same contents as a whole-NEVRA
    mirror, the chunked run is same-seed deterministic, and the store's
    refcounts match its retained manifests."""

    def drive(chunk_store):
        kernel = SimKernel(seed=42)
        version = 1
        upstream = Repository("xsede")
        upstream.add_all(release(f"{version}.0", n=4, size=MB))
        mirror = RepoMirror(
            upstream, make_link(), kernel=kernel, chunk_store=chunk_store
        )
        for op in ops:
            if op == "publish":
                version += 1
                upstream = Repository("xsede")
                upstream.add_all(release(f"{version}.0", n=4, size=MB))
                mirror.upstream = upstream
            elif op == "interrupt":
                mirror.inject_interruptions(1)
            elif op == "corrupt":
                mirror.corrupt_next({f"pkg0-{version}.0-1.x86_64"})
            else:
                try:
                    mirror.sync()
                except YumError:
                    pass
        while True:  # final converging sync (interruptions may be pending)
            try:
                mirror.sync()
                break
            except YumError:
                continue
        return mirror, kernel.trace.to_jsonl()

    plain, _ = drive(None)
    store = ChunkStore()
    chunked, trace_a = drive(store)
    assert {p.nevra for p in chunked.local.all_packages()} == {
        p.nevra for p in plain.local.all_packages()
    }
    _, trace_b = drive(ChunkStore())
    assert trace_a == trace_b  # same-seed chunked runs are byte-identical
    assert not store.refcount_problems(
        list(chunked._retained_manifests.values())
    )


stratum_ops = st.lists(
    st.sampled_from(["publish", "rollback", "prune", "replicate", "interrupt"]),
    min_size=1,
    max_size=12,
)


@given(stratum_ops)
@settings(max_examples=25, deadline=None)
def test_property_refcounts_never_leak(ops):
    """Any interleaving of publish / rollback / prune / replicate leaves
    the origin's and replica's refcounts exactly matching their live
    catalogs — and the confluence audit agrees."""
    kernel = SimKernel(seed=7)
    s0 = Stratum0("origin", kernel=kernel)
    s1 = Stratum1("replica", s0, make_link(), kernel=kernel)
    version = 0
    for op in ops:
        if op == "publish":
            version += 1
            s0.publish(release(f"{version}.0", n=3, size=MB))
        elif op == "rollback":
            if s0.serial > 0 and s0.serial - 1 in s0._catalogs:
                s0.rollback()
        elif op == "prune":
            s0.prune(keep=2)
        elif op == "interrupt":
            s1.inject_interruptions(1)
        else:
            try:
                s1.replicate()
            except CasError:
                pass
    s1.inject_interruptions(0)
    s1.replicate()
    assert not s0.store.refcount_problems(s0.live_manifests())
    assert not s1.problems()
    assert not cas_confluence_problems(
        kernel.trace.events, strata=[s0], replicas=[s1]
    )


# --- chaos invariant 9 ------------------------------------------------------------


class TestConfluenceAudit:
    def test_backwards_serial_detected(self):
        from repro.sim import TraceBus

        bus = TraceBus()
        bus.emit(
            "cas.publish", t_s=0.0, subsystem="cas", catalog="o", serial=2,
            packages=1, chunks=1, new_chunks=1, nbytes=1,
        )
        bus.emit(
            "cas.publish", t_s=1.0, subsystem="cas", catalog="o", serial=1,
            packages=1, chunks=1, new_chunks=1, nbytes=1,
        )
        problems = cas_confluence_problems(bus.events)
        assert any("did not advance" in p for p in problems)

    def test_overcounted_hits_detected(self):
        from repro.sim import TraceBus

        bus = TraceBus()
        bus.emit(
            "cas.fetch", t_s=0.0, subsystem="cas", tier="campus",
            artifact="a", chunks=2, hit_chunks=3, nbytes=0,
        )
        problems = cas_confluence_problems(bus.events)
        assert any("hits" in p for p in problems)

    def test_vacuous_on_cas_free_trace(self):
        from repro.sim import TraceBus

        assert cas_confluence_problems(TraceBus().events) == []

"""Memory (DIMM) models.

Memory capacity matters to the reproduction in two places:

* HPL problem sizing — the Linpack N is chosen to fill ~80 % of aggregate
  memory (see :mod:`repro.linpack.hpl`), so per-node RAM feeds Rmax.
* The power budget — DIMMs draw a few watts each and the modified LittleFe's
  per-node PSU sizing (Section 5.1) has to account for every component.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CatalogError

__all__ = ["DimmModel", "DDR3_4G_SODIMM", "DDR3_8G_UDIMM", "DIMM_CATALOG", "get_dimm"]


@dataclass(frozen=True)
class DimmModel:
    """A memory module SKU."""

    model: str
    capacity_bytes: int
    generation: str  # e.g. "DDR3"
    speed_mt_s: int  # mega-transfers per second (DDR3-1600 -> 1600)
    power_watts: float
    price_usd: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise CatalogError(f"DIMM {self.model} has non-positive capacity")
        if self.speed_mt_s <= 0:
            raise CatalogError(f"DIMM {self.model} has non-positive speed")

    @property
    def bandwidth_bytes_s(self) -> float:
        """Peak transfer rate of one module (8-byte bus width)."""
        return self.speed_mt_s * 1e6 * 8


#: 4 GiB DDR3 SO-DIMM as used on mini-ITX boards in the LittleFe build.
DDR3_4G_SODIMM = DimmModel(
    model="DDR3-1600 4GiB SO-DIMM",
    capacity_bytes=4 * 1024**3,
    generation="DDR3",
    speed_mt_s=1600,
    power_watts=3.0,
    price_usd=32.0,
)

#: 8 GiB DDR3 UDIMM as used in the Limulus HPC200 nodes.
DDR3_8G_UDIMM = DimmModel(
    model="DDR3-1600 8GiB UDIMM",
    capacity_bytes=8 * 1024**3,
    generation="DDR3",
    speed_mt_s=1600,
    power_watts=4.0,
    price_usd=58.0,
)

DIMM_CATALOG: dict[str, DimmModel] = {
    d.model: d for d in (DDR3_4G_SODIMM, DDR3_8G_UDIMM)
}


def get_dimm(model: str) -> DimmModel:
    """Look up a DIMM SKU by name, raising :class:`CatalogError` if unknown."""
    try:
        return DIMM_CATALOG[model]
    except KeyError:
        known = ", ".join(sorted(DIMM_CATALOG))
        raise CatalogError(f"unknown DIMM model {model!r}; known: {known}") from None

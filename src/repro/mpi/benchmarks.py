"""MPI microbenchmarks: ping-pong and collective sweeps.

These are the "does the interconnect behave" tools a cluster admin runs
after an XCBC install (the hpc roll ships exactly such tests).  They also
calibrate the HPL efficiency model's view of the fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MpiError
from .collectives import allreduce
from .simulator import MpiWorld

__all__ = ["PingPongPoint", "ping_pong", "allreduce_sweep", "effective_bandwidth"]


@dataclass(frozen=True)
class PingPongPoint:
    """One message-size sample of a ping-pong run."""

    nbytes: int
    round_trip_s: float

    @property
    def one_way_s(self) -> float:
        return self.round_trip_s / 2.0

    @property
    def bandwidth_bytes_s(self) -> float:
        """One-way effective bandwidth at this size."""
        return self.nbytes / self.one_way_s if self.one_way_s > 0 else 0.0


def ping_pong(
    world: MpiWorld, *, src: int = 0, dst: int = 1, sizes: list[int] | None = None
) -> list[PingPongPoint]:
    """Classic two-rank ping-pong across a size sweep.

    Returns one point per size; the latency floor shows at small sizes and
    the bandwidth asymptote at large ones.
    """
    if world.size < 2:
        raise MpiError("ping-pong needs at least two ranks")
    sizes = sizes or [8 << (2 * k) for k in range(10)]  # 8 B .. 2 MiB
    points = []
    for nbytes in sizes:
        one_way = world.transfer_time_s(src, dst, nbytes)
        back = world.transfer_time_s(dst, src, nbytes)
        points.append(PingPongPoint(nbytes=nbytes, round_trip_s=one_way + back))
    return points


def effective_bandwidth(points: list[PingPongPoint]) -> float:
    """Asymptotic bandwidth: the best one-way rate seen in the sweep."""
    if not points:
        raise MpiError("empty ping-pong sweep")
    return max(p.bandwidth_bytes_s for p in points)


def allreduce_sweep(
    world: MpiWorld, element_counts: list[int] | None = None
) -> list[tuple[int, float]]:
    """Time allreduce of vectors of doubles across a size sweep.

    Returns ``(element_count, elapsed_s)`` pairs; the correctness of the
    reduction itself is asserted inline (sum of per-rank vectors).
    """
    element_counts = element_counts or [1, 64, 1024, 16384]
    results = []
    for count in element_counts:
        world.reset_clocks()
        data = [[float(rank + 1)] * count for rank in range(world.size)]
        merged = allreduce(world, data, lambda a, b: [x + y for x, y in zip(a, b)])
        expected = float(world.size * (world.size + 1) // 2)
        if any(abs(x - expected) > 1e-9 for x in merged[0]):
            raise MpiError("allreduce produced a wrong reduction")
        results.append((count, world.elapsed_s))
    return results

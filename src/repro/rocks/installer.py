"""The Rocks cluster installer: frontend first, then PXE'd compute nodes.

This is the "all at once, from scratch" path (Abstract): pick rolls at
install time, build the frontend, then power compute nodes on under
insert-ethers.  Two paper-critical behaviours live here:

* **Rocks does not support diskless installation** (Section 5.1) — the
  installer refuses any node without a local drive, which is exactly why
  the modified LittleFe adds an mSATA drive per node and why the diskless
  Limulus compute nodes cannot take the XCBC-from-scratch path (they use
  XNIT instead, Section 5.2);
* the kickstart graph decides what lands on each appliance, so adding the
  XSEDE roll changes every node built afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..distro.distribution import CENTOS_6_5, DistroRelease
from ..distro.host import Host
from ..errors import ProvisionError, RocksError
from ..hardware.chassis import Machine
from ..network.pxe import BootImage, PxeServer
from ..network.topology import ClusterNetwork, build_cluster_network
from ..rpm.database import RpmDatabase
from ..rpm.transaction import Transaction
from ..yum.depsolver import resolve_install
from ..yum.repository import Repository, RepoSet
from .database import HostRecord, InstallState, RocksDatabase
from .insert_ethers import InsertEthers
from .kickstart import GraphNode, KickstartGraph, Profile
from .roll import Roll
from .rolls_catalog import all_standard_rolls, base_os_packages, base_roll

__all__ = [
    "ProvisionedCluster",
    "RocksInstaller",
    "install_cluster",
    "recover_install",
]


@dataclass
class ProvisionedCluster:
    """A fully installed Rocks cluster."""

    machine: Machine
    network: ClusterNetwork
    release: DistroRelease
    graph: KickstartGraph
    distribution: Repository
    rocksdb: RocksDatabase
    frontend: Host
    frontend_db: RpmDatabase
    compute: dict[str, tuple[Host, RpmDatabase]] = field(default_factory=dict)
    rolls: dict[str, Roll] = field(default_factory=dict)
    scheduler_choice: str = "torque"

    def hosts(self) -> list[Host]:
        """Frontend first, then compute nodes in database order."""
        out = [self.frontend]
        for record in self.rocksdb.compute_hosts():
            if record.name in self.compute:
                out.append(self.compute[record.name][0])
        return out

    def db_for(self, host: Host) -> RpmDatabase:
        """The RPM database of any cluster host."""
        if host is self.frontend:
            return self.frontend_db
        for cand, db in self.compute.values():
            if cand is host:
                return db
        raise RocksError(f"host {host.name} is not part of this cluster")

    def installed_everywhere(self) -> set[str]:
        """Package names present on every node (the cluster's uniform
        software environment — the consistency XCBC is about)."""
        common = set(self.frontend_db.names())
        for _host, db in self.compute.values():
            common &= db.names()
        return common

    def roll_names(self) -> list[str]:
        return sorted(self.rolls)

    def failed_hosts(self) -> list[str]:
        """Compute nodes whose kickstart crashed (state FAILED).

        Feed these to ``ClusterResources(machine, exclude=...)`` so a
        half-provisioned node never becomes schedulable capacity."""
        return [
            r.name
            for r in self.rocksdb.compute_hosts()
            if r.state is InstallState.FAILED
        ]


class RocksInstaller:
    """Drives one from-scratch installation."""

    def __init__(
        self,
        machine: Machine,
        *,
        rolls: list[Roll] | None = None,
        scheduler: str = "torque",
        release: DistroRelease = CENTOS_6_5,
        journal=None,
    ) -> None:
        standard = all_standard_rolls()
        if scheduler not in ("torque", "slurm", "sge"):
            raise RocksError(f"unknown job-management roll {scheduler!r}")
        self.machine = machine
        self.release = release
        self.scheduler = scheduler
        selected: dict[str, Roll] = {"base": standard["base"], scheduler: standard[scheduler]}
        for roll in rolls or []:
            if roll.name in selected:
                raise RocksError(f"roll {roll.name} selected twice")
            selected[roll.name] = roll
        self.rolls = selected
        #: optional write-ahead :class:`~repro.recovery.Journal`: each
        #: compute node's discovery + kickstart becomes a ``rocks.install``
        #: transaction, so a frontend crash mid-provision leaves an open
        #: entry instead of a silently half-registered host —
        #: :func:`recover_install` rolls the phantom record back.
        self.journal = journal
        self._crash_macs: set[str] = set()

    def inject_kickstart_crash(self, mac: str) -> None:
        """The next kickstart of this MAC dies mid-install (lost power,
        dead disk).  The install transaction aborts — nothing half-lands
        on the node — and :meth:`run` either raises or, with
        ``continue_on_error``, records the node as FAILED and moves on."""
        self._crash_macs.add(mac)

    # -- validation ---------------------------------------------------------------

    def _check_disks(self) -> None:
        """Rocks refuses diskless nodes (Section 5.1)."""
        diskless = [n.name for n in self.machine.nodes if n.diskless]
        if diskless:
            raise ProvisionError(
                f"Rocks does not support diskless installation; nodes "
                f"without drives: {diskless} (add a disk per node, as the "
                f"modified LittleFe does, or integrate via XNIT instead)"
            )

    # -- build steps -----------------------------------------------------------------

    def build_graph(self) -> KickstartGraph:
        """The kickstart graph this installation would use.

        Side-effect free — nothing is installed — which makes it the
        pre-flight entry point: the analyzer lints this graph before
        :meth:`run` ever touches a node.
        """
        return self._build_graph()

    def build_distribution(self) -> Repository:
        """The local distribution :meth:`run` would populate (side-effect
        free, for pre-flight analysis)."""
        return self._build_distribution()

    def _build_graph(self) -> KickstartGraph:
        graph = KickstartGraph()
        graph.add_node(GraphNode(name=Profile.FRONTEND, roll="base"))
        graph.add_node(GraphNode(name=Profile.COMPUTE, roll="base"))
        os_node = GraphNode(
            name="os-base",
            packages=[p.name for p in base_os_packages(self.release)],
            enable_services=["sshd", "crond"],
            roll="os",
        )
        graph.add_node(os_node)
        graph.add_edge(Profile.FRONTEND, "os-base")
        graph.add_edge(Profile.COMPUTE, "os-base")
        for roll in self.rolls.values():
            roll.apply_to_graph(graph)
        return graph

    def _build_distribution(self) -> Repository:
        """The frontend's local distribution: OS packages + roll packages."""
        dist = Repository(
            "rocks-dist",
            name=f"Rocks {self.release.release_string} distribution",
            priority=10,
        )
        dist.add_all(base_os_packages(self.release))
        for roll in self.rolls.values():
            for pkg in roll.packages:
                if not any(
                    existing.nevra == pkg.nevra
                    for existing in dist.versions_of(pkg.name)
                ):
                    dist.add(pkg)
        return dist

    def _kickstart_host(
        self,
        host: Host,
        graph: KickstartGraph,
        distribution: Repository,
        profile: str,
    ) -> RpmDatabase:
        """Install a profile's package closure onto a host and enable its
        services — one node's kickstart."""
        db = RpmDatabase(host)
        repos = RepoSet([distribution])
        wanted = graph.resolve_packages(profile)
        resolution = resolve_install(wanted, repos, db)
        txn = Transaction(db)
        for pkg in resolution.to_install:
            txn.install(pkg)
        if host.node.mac_address in self._crash_macs:
            # Injected mid-kickstart crash: the transaction never commits,
            # so the node holds no packages — there is no half-installed
            # state to reconcile, only a FAILED record.
            self._crash_macs.discard(host.node.mac_address)
            raise ProvisionError(
                f"{host.hostname}: node lost power mid-kickstart; "
                f"install transaction aborted"
            )
        txn.commit()
        for service in graph.resolve_services(profile):
            host.services.enable(service)
        host.services.boot()
        for action in graph.resolve_actions(profile):
            host.fs.write(
                f"/var/log/rocks-post/{action.replace(' ', '-')}",
                f"executed: {action}\n",
            )
        return db

    # -- the install ------------------------------------------------------------------

    def run(self, *, continue_on_error: bool = False) -> ProvisionedCluster:
        """Perform the full installation and return the live cluster.

        With ``continue_on_error``, a compute node whose kickstart crashes
        is recorded as :attr:`InstallState.FAILED`, powered off, and left
        out of the cluster's compute map (and hence out of any scheduler
        resources built from it); the install proceeds to the next node.
        Without it, the first crash raises :class:`ProvisionError`.
        """
        self._check_disks()
        graph = self._build_graph()
        distribution = self._build_distribution()
        network = build_cluster_network(self.machine)

        # 1. Frontend install (from the install media, no PXE involved).
        head = self.machine.head
        frontend = Host(head, self.release)
        frontend_db = self._kickstart_host(
            frontend, graph, distribution, Profile.FRONTEND
        )
        rocksdb = RocksDatabase()
        rocksdb.add_host(
            HostRecord(
                name=head.name,
                mac=head.mac_address,
                ip="10.1.1.1",
                appliance="frontend",
                rack=0,
                rank=0,
                state=InstallState.INSTALLED,
            )
        )

        # 2. PXE infrastructure served by the frontend.
        pxe = PxeServer(network.dhcp)
        pxe.set_default_image(
            BootImage(name="rocks-kickstart", kickstart_profile=Profile.COMPUTE)
        )
        inserter = InsertEthers(db=rocksdb, dhcp=network.dhcp, pxe=pxe)

        cluster = ProvisionedCluster(
            machine=self.machine,
            network=network,
            release=self.release,
            graph=graph,
            distribution=distribution,
            rocksdb=rocksdb,
            frontend=frontend,
            frontend_db=frontend_db,
            rolls=dict(self.rolls),
            scheduler_choice=self.scheduler,
        )

        # 3. Power compute nodes on one at a time under insert-ethers.
        # Each node is one journaled transaction: register (the database
        # row insert-ethers writes) then install.  A frontend crash leaves
        # the transaction open and recover_install() removes the
        # half-registered row; a *node*-side kickstart crash is a clean
        # abort (the FAILED record is deliberate state, not a phantom).
        for node in self.machine.compute_nodes:
            txn = (
                self.journal.begin("rocks.install", mac=node.mac_address)
                if self.journal is not None
                else None
            )
            record = inserter.discover_boot(node.mac_address)
            if txn is not None:
                reg_op = self.journal.intent(
                    txn, "register", name=record.name, mac=node.mac_address
                )
                self.journal.applied(txn, reg_op)
            rocksdb.set_state(record.name, InstallState.INSTALLING)
            compute_host = Host(node, self.release)
            compute_host.hostname = record.name
            install_op = (
                self.journal.intent(txn, "install", name=record.name)
                if txn is not None
                else None
            )
            try:
                compute_db = self._kickstart_host(
                    compute_host, graph, distribution, Profile.COMPUTE
                )
            except ProvisionError:
                if not continue_on_error:
                    if txn is not None:
                        self.journal.abort(txn, note="kickstart failed")
                    raise
                rocksdb.set_state(record.name, InstallState.FAILED)
                node.powered_on = False
                pxe.clear_assignment(node.mac_address)
                if txn is not None:
                    self.journal.abort(
                        txn, note="kickstart failed; node recorded FAILED"
                    )
                continue
            rocksdb.set_state(record.name, InstallState.INSTALLED)
            pxe.clear_assignment(node.mac_address)
            cluster.compute[record.name] = (compute_host, compute_db)
            if txn is not None:
                assert install_op is not None
                self.journal.applied(txn, install_op)
                self.journal.commit(txn)
        return cluster

    def replace_node(
        self, cluster: ProvisionedCluster, name: str, *, new_mac: str
    ) -> Host:
        """Swap a dead node's board: new MAC, rediscovery, fresh install.

        The Rocks workflow for failed hardware: ``rocks remove host``, run
        insert-ethers, power the replacement on.  The record keeps the same
        compute-<rack>-<rank> name only if it is re-discovered first, so we
        remove and re-register explicitly at the same rack/rank.
        """
        record = cluster.rocksdb.get(name)
        if record.appliance != "compute":
            raise RocksError("only compute nodes can be replaced")
        node = next(
            n for n in self.machine.compute_nodes if n.mac_address == record.mac
        )
        cluster.rocksdb.remove_host(name)
        node.mac_address = new_mac  # the replacement board's NIC
        node.powered_on = True
        cluster.rocksdb.add_host(
            HostRecord(
                name=name,
                mac=new_mac,
                ip=record.ip,
                appliance="compute",
                rack=record.rack,
                rank=record.rank,
                state=InstallState.INSTALLING,
            )
        )
        host = Host(node, self.release)
        host.hostname = name
        db = self._kickstart_host(
            host, cluster.graph, cluster.distribution, Profile.COMPUTE
        )
        cluster.compute[name] = (host, db)
        cluster.rocksdb.set_state(name, InstallState.INSTALLED)
        return host

    def reinstall_node(self, cluster: ProvisionedCluster, name: str) -> Host:
        """Re-kickstart one compute node (Rocks' usual fix for drift)."""
        record = cluster.rocksdb.get(name)
        if record.appliance != "compute":
            raise RocksError("only compute nodes can be reinstalled in place")
        node = next(
            n for n in self.machine.compute_nodes if n.mac_address == record.mac
        )
        cluster.rocksdb.set_state(name, InstallState.INSTALLING)
        host = Host(node, self.release)
        host.hostname = name
        db = self._kickstart_host(
            host, cluster.graph, cluster.distribution, Profile.COMPUTE
        )
        cluster.compute[name] = (host, db)
        cluster.rocksdb.set_state(name, InstallState.INSTALLED)
        return host


def recover_install(journal, rocksdb: RocksDatabase) -> list:
    """Resolve open ``rocks.install`` journal transactions after a crash.

    A frontend that died between registering a node (insert-ethers wrote
    the database row) and finishing its kickstart leaves the row pointing
    at a node with no OS — a half-registered host that would poison every
    tool reading the hosts table.  Recovery removes those rows in strict
    reverse order; the node re-registers cleanly on the next insert-ethers
    run.  Returns the transactions rolled back.
    """
    from ..recovery.journal import OpState

    resolved = []
    for txn in journal.open_txns("rocks.install"):
        for op in reversed(txn.ops):
            if op.state is OpState.UNDONE:
                continue
            if op.op == "register":
                name = op.payload["name"]
                try:
                    rocksdb.get(name)
                except RocksError:
                    pass  # row never landed; nothing to remove
                else:
                    rocksdb.remove_host(name)
            journal.undone(txn, op)
        journal.rolled_back(txn)
        resolved.append(txn)
    return resolved


def install_cluster(
    machine: Machine,
    *,
    rolls: list[Roll] | None = None,
    scheduler: str = "torque",
    release: DistroRelease = CENTOS_6_5,
) -> ProvisionedCluster:
    """Convenience wrapper: build and run a :class:`RocksInstaller`."""
    return RocksInstaller(
        machine, rolls=rolls, scheduler=scheduler, release=release
    ).run()

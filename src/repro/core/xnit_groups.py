"""The XNIT group catalogue: "particular software capabilities" as units.

One group per Table 2 category, plus the domain bundles Campus Champions
actually ask for (bioinformatics pipeline, molecular dynamics, climate/data,
R statistics).  Mandatory members are the capability's core; optional
members the long tail.
"""

from __future__ import annotations

from ..yum.groups import GroupCatalog, PackageGroup
from .packages_xsede import packages_by_category

__all__ = ["xnit_group_catalog", "DOMAIN_GROUPS"]

#: Hand-curated domain bundles (group id -> (name, mandatory, optional)).
DOMAIN_GROUPS: dict[str, tuple[str, tuple[str, ...], tuple[str, ...]]] = {
    "xnit-bio-pipeline": (
        "XNIT Bioinformatics Pipeline",
        ("ncbi-blast", "bowtie", "bwa", "Samtools", "BEDTools", "hmmer"),
        ("trinity", "gatk", "picard-tools", "sratoolkit", "mrbayes",
         "mpiblast", "Abyss", "SHRiMP"),
    ),
    "xnit-molecular-dynamics": (
        "XNIT Molecular Dynamics",
        ("gromacs", "lammps", "openmpi", "fftw"),
        ("charm", "espresso-ab", "meep", "autodocksuite"),
    ),
    "xnit-data-climate": (
        "XNIT Climate and Data Tools",
        ("netcdf", "nco", "hdf5"),
        ("PnetCDF", "ncl", "gnuplot", "plplot"),
    ),
    "xnit-statistics": (
        "XNIT R Statistics",
        ("R", "R-core"),
        ("R-devel", "R-java", "libRmath", "octave", "numpy"),
    ),
}


def xnit_group_catalog() -> GroupCatalog:
    """Build the full group catalogue: categories + domain bundles."""
    catalog = GroupCatalog()
    for category, packages in packages_by_category().items():
        slug = (
            "xnit-"
            + category.lower()
            .replace(",", "")
            .replace(" and ", " ")
            .replace(" ", "-")
        )
        names = tuple(p.name for p in packages)
        catalog.add(
            PackageGroup(
                group_id=slug,
                name=f"XNIT {category}",
                description=f"The Table 2 category: {category}",
                mandatory=names,
            )
        )
    for group_id, (name, mandatory, optional) in DOMAIN_GROUPS.items():
        catalog.add(
            PackageGroup(
                group_id=group_id,
                name=name,
                description="Community-requested capability bundle",
                mandatory=mandatory,
                optional=optional,
            )
        )
    return catalog

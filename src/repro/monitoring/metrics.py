"""Metric model for the Ganglia-like monitoring substrate.

Table 1 ships the **ganglia** roll ("Cluster monitoring system"), and the
conclusion counts monitoring among the skills a student cluster teaches.
The model mirrors Ganglia's: a *metric* is a named, typed, unit-carrying
sample attached to a host; gmond collects them per host, gmetad aggregates
per cluster (:mod:`repro.monitoring.gmond` / ``gmetad``); history is kept in
round-robin archives (:mod:`repro.monitoring.rrd`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ReproError

__all__ = ["MetricKind", "MetricSample", "MetricSpec", "CORE_METRICS", "MonitoringError"]


class MonitoringError(ReproError):
    """Invalid monitoring operation."""


class MetricKind(str, Enum):
    """Value semantics, as Ganglia distinguishes them."""

    GAUGE = "gauge"        # instantaneous (load, free memory)
    COUNTER = "counter"    # monotone (bytes in/out)
    CONSTANT = "constant"  # machine facts (cores, boottime)


@dataclass(frozen=True)
class MetricSpec:
    """Schema of one metric."""

    name: str
    kind: MetricKind
    unit: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise MonitoringError("metric name must be non-empty")


@dataclass(frozen=True)
class MetricSample:
    """One observation of one metric on one host."""

    spec: MetricSpec
    host: str
    value: float
    timestamp_s: float

    def __post_init__(self) -> None:
        if self.timestamp_s < 0:
            raise MonitoringError(
                f"negative timestamp for {self.spec.name}@{self.host}"
            )


#: The metric set the ganglia roll's default gmond.conf collects.
CORE_METRICS: dict[str, MetricSpec] = {
    spec.name: spec
    for spec in (
        MetricSpec("load_one", MetricKind.GAUGE, "", "1-minute load average"),
        MetricSpec("cpu_num", MetricKind.CONSTANT, "CPUs", "core count"),
        MetricSpec("cpu_user", MetricKind.GAUGE, "%", "user CPU"),
        MetricSpec("mem_total", MetricKind.CONSTANT, "KB", "installed memory"),
        MetricSpec("mem_free", MetricKind.GAUGE, "KB", "free memory"),
        MetricSpec("disk_total", MetricKind.CONSTANT, "GB", "local disk"),
        MetricSpec("bytes_in", MetricKind.COUNTER, "bytes/sec", "network in"),
        MetricSpec("bytes_out", MetricKind.COUNTER, "bytes/sec", "network out"),
        MetricSpec("proc_run", MetricKind.GAUGE, "", "running processes"),
        MetricSpec("pkg_count", MetricKind.GAUGE, "", "installed RPMs"),
        MetricSpec("svc_failed", MetricKind.GAUGE, "", "failed services"),
        MetricSpec("powered_on", MetricKind.GAUGE, "", "1 if the node is up"),
    )
}

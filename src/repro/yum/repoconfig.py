"""Parsing and writing ``/etc/yum.repos.d/*.repo`` files.

Section 3 gives two ways to enable XNIT: install the ``xsede-repo`` RPM
(which drops the file for you), or "install the yum-plugin-priorities
package, then create the file /etc/yum.repos.d/xsede.repo with the lines
specified in the XSEDE Yum repository README".  Both paths converge on a
``.repo`` file like::

    [xsede]
    name=XSEDE National Integration Toolkit
    baseurl=http://cb-repo.iu.xsede.org/xsederepo/
    enabled=1
    gpgcheck=0
    priority=50

The parser accepts the INI dialect yum uses (sections, ``key=value``,
``#``/``;`` comments) and rejects malformed content loudly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RepoConfigError
from .repository import DEFAULT_PRIORITY

__all__ = ["RepoStanza", "parse_repo_file", "render_repo_file", "XSEDE_REPO_STANZA"]


@dataclass(frozen=True)
class RepoStanza:
    """One ``[repoid]`` section of a .repo file."""

    repo_id: str
    name: str
    baseurl: str
    enabled: bool = True
    gpgcheck: bool = False
    priority: int = DEFAULT_PRIORITY

    def render(self) -> str:
        return (
            f"[{self.repo_id}]\n"
            f"name={self.name}\n"
            f"baseurl={self.baseurl}\n"
            f"enabled={1 if self.enabled else 0}\n"
            f"gpgcheck={1 if self.gpgcheck else 0}\n"
            f"priority={self.priority}\n"
        )


#: The stanza the XSEDE Yum repository README specifies (ref [13]).
XSEDE_REPO_STANZA = RepoStanza(
    repo_id="xsede",
    name="XSEDE National Integration Toolkit",
    baseurl="http://cb-repo.iu.xsede.org/xsederepo/",
    enabled=True,
    gpgcheck=False,
    priority=50,
)


def _parse_bool(value: str, *, where: str) -> bool:
    if value in ("1", "true", "yes"):
        return True
    if value in ("0", "false", "no"):
        return False
    raise RepoConfigError(f"{where}: expected boolean 0/1, got {value!r}")


def parse_repo_file(text: str) -> list[RepoStanza]:
    """Parse a .repo file into stanzas.

    Raises :class:`RepoConfigError` on: content before the first section,
    duplicate section ids, duplicate keys, unknown keys, missing mandatory
    keys (``name``, ``baseurl``), or invalid values.
    """
    stanzas: list[RepoStanza] = []
    seen_ids: set[str] = set()
    current_id: str | None = None
    current: dict[str, str] = {}

    def flush() -> None:
        nonlocal current_id, current
        if current_id is None:
            return
        where = f"[{current_id}]"
        for key in ("name", "baseurl"):
            if key not in current:
                raise RepoConfigError(f"{where}: missing required key {key!r}")
        priority = int(current.get("priority", str(DEFAULT_PRIORITY)))
        stanzas.append(
            RepoStanza(
                repo_id=current_id,
                name=current["name"],
                baseurl=current["baseurl"],
                enabled=_parse_bool(current.get("enabled", "1"), where=where),
                gpgcheck=_parse_bool(current.get("gpgcheck", "0"), where=where),
                priority=priority,
            )
        )
        current_id, current = None, {}

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith(";"):
            continue
        if line.startswith("[") and line.endswith("]"):
            flush()
            repo_id = line[1:-1].strip()
            if not repo_id:
                raise RepoConfigError(f"line {lineno}: empty section name")
            if repo_id in seen_ids:
                raise RepoConfigError(f"line {lineno}: duplicate section [{repo_id}]")
            seen_ids.add(repo_id)
            current_id = repo_id
            continue
        if current_id is None:
            raise RepoConfigError(f"line {lineno}: content before any [section]")
        if "=" not in line:
            raise RepoConfigError(f"line {lineno}: expected key=value, got {line!r}")
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if key in current:
            raise RepoConfigError(
                f"line {lineno}: duplicate key {key!r} in [{current_id}]"
            )
        if key not in ("name", "baseurl", "enabled", "gpgcheck", "priority"):
            raise RepoConfigError(f"line {lineno}: unknown key {key!r}")
        current[key] = value
    flush()
    if not stanzas:
        raise RepoConfigError("no repository stanzas found")
    return stanzas


def render_repo_file(stanzas: list[RepoStanza]) -> str:
    """Render stanzas back to .repo text (round-trips with the parser)."""
    return "\n".join(s.render() for s in stanzas)

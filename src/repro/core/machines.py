"""Existing (non-Rocks) clusters: the machines XNIT retrofits.

The Limulus HPC200 "is delivered with software cluster management utilities
off the shelf, so one has only to add RPMs from the XSEDE Yum repository to
get the desired XCBC capabilities" (Section 5.2).  Its compute nodes are
diskless — they network-boot a shared image — which is exactly why the
Rocks/XCBC path is unavailable and the XNIT path matters.

:class:`ExistingCluster` is the generic shape: hosts with a vendor-chosen
OS, a vendor management stack, and per-host yum clients ready to take a
repository.  :func:`build_limulus_cluster` produces the paper's machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..distro.distribution import SCIENTIFIC_LINUX_6_5, DistroRelease
from ..distro.host import Host
from ..errors import ReproError
from ..hardware.builder import build_limulus_hpc200
from ..hardware.chassis import Machine
from ..network.topology import ClusterNetwork, build_cluster_network
from ..rocks.rolls_catalog import base_os_packages
from ..rpm.database import RpmDatabase
from ..rpm.package import Package
from ..rpm.transaction import Transaction
from ..yum.client import YumClient

__all__ = ["ExistingCluster", "build_existing_cluster", "build_limulus_cluster", "LIMULUS_VENDOR_PACKAGES"]

#: The Basement Supercomputing management stack the HPC200 ships with:
#: warewulf-style image management, the power scheduler of Section 5.2, and
#: a vendor build of Grid Engine.
LIMULUS_VENDOR_PACKAGES = (
    Package(
        name="limulus-manage",
        version="2.1",
        category="vendor",
        summary="Limulus cluster management utilities",
        commands=("limulus-power", "limulus-image"),
        services=("limulus-powerd",),
    ),
    Package(
        name="warewulf-provision",
        version="3.5",
        category="vendor",
        summary="Diskless image provisioning",
        commands=("wwsh",),
        services=("wwprovisiond",),
    ),
    Package(
        name="sge",
        version="8.1.6",
        category="vendor",
        summary="Vendor Grid Engine build",
        commands=("qsub", "qstat", "qdel", "qconf"),
        services=("sge_qmaster", "sge_execd"),
    ),
)


@dataclass
class ExistingCluster:
    """A running cluster that was NOT built with Rocks/XCBC."""

    machine: Machine
    network: ClusterNetwork
    release: DistroRelease
    frontend: Host
    compute: dict[str, Host] = field(default_factory=dict)
    clients: dict[str, YumClient] = field(default_factory=dict)
    vendor_stack: tuple[str, ...] = ()

    def hosts(self) -> list[Host]:
        return [self.frontend] + [self.compute[n] for n in sorted(self.compute)]

    def client_for(self, host: Host) -> YumClient:
        try:
            return self.clients[host.name]
        except KeyError:
            raise ReproError(f"no yum client for host {host.name}") from None

    def all_clients(self) -> list[YumClient]:
        return [self.client_for(h) for h in self.hosts()]


def build_existing_cluster(
    machine: Machine,
    *,
    release: DistroRelease = SCIENTIFIC_LINUX_6_5,
    vendor_packages: tuple[Package, ...] = (),
) -> ExistingCluster:
    """Stand up a generic pre-existing cluster on a machine.

    Every host gets the OS base plus the vendor stack; diskless compute
    nodes boot the shared image (``diskless_image=True``) — no Rocks
    involved anywhere.
    """
    network = build_cluster_network(machine)
    base = base_os_packages(release)

    def provision(host: Host) -> YumClient:
        db = RpmDatabase(host)
        txn = Transaction(db)
        for pkg in base:
            txn.install(pkg)
        for pkg in vendor_packages:
            txn.install(pkg)
        txn.commit()
        for pkg in vendor_packages:
            for service in pkg.services:
                host.services.enable(service)
        host.services.boot()
        return YumClient(host, db)

    head = machine.head
    frontend = Host(head, release)
    cluster = ExistingCluster(
        machine=machine,
        network=network,
        release=release,
        frontend=frontend,
        vendor_stack=tuple(p.name for p in vendor_packages),
    )
    cluster.clients[frontend.name] = provision(frontend)
    for node in machine.compute_nodes:
        host = Host(node, release, diskless_image=node.diskless)
        cluster.compute[host.name] = host
        cluster.clients[host.name] = provision(host)
    return cluster


def build_limulus_cluster(name: str = "limulus-hpc200") -> ExistingCluster:
    """The Limulus HPC200 as delivered: Scientific Linux, vendor management
    stack, one head plus three diskless compute blades."""
    quote = build_limulus_hpc200(name)
    return build_existing_cluster(
        quote.machine,
        release=SCIENTIFIC_LINUX_6_5,
        vendor_packages=LIMULUS_VENDOR_PACKAGES,
    )

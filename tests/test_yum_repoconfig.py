"""Parser edge cases for /etc/yum.repos.d/*.repo files (repro.yum.repoconfig)."""

import pytest

from repro.errors import RepoConfigError
from repro.yum.repoconfig import (
    XSEDE_REPO_STANZA,
    RepoStanza,
    parse_repo_file,
    render_repo_file,
)

VALID = """\
[xsede]
name=XSEDE National Integration Toolkit
baseurl=http://cb-repo.iu.xsede.org/xsederepo/
enabled=1
gpgcheck=0
priority=50
"""


class TestParsing:
    def test_parses_the_paper_stanza(self):
        (stanza,) = parse_repo_file(VALID)
        assert stanza == XSEDE_REPO_STANZA

    def test_defaults_applied_for_optional_keys(self):
        (stanza,) = parse_repo_file("[r]\nname=R\nbaseurl=http://r/\n")
        assert stanza.enabled is True
        assert stanza.gpgcheck is False
        assert stanza.priority == 99  # yum-plugin-priorities default

    def test_hash_and_semicolon_comments_ignored(self):
        text = (
            "# leading comment\n"
            "; alt comment style\n"
            "[r]\n"
            "# inside a section\n"
            "name=R\n"
            "; between keys\n"
            "baseurl=http://r/\n"
        )
        (stanza,) = parse_repo_file(text)
        assert stanza.repo_id == "r"

    def test_blank_lines_and_whitespace_tolerated(self):
        text = "\n  [r]  \n\n  name = R \n baseurl= http://r/ \n\n"
        (stanza,) = parse_repo_file(text)
        assert stanza.name == "R"
        assert stanza.baseurl == "http://r/"

    def test_multiple_stanzas(self):
        text = VALID + "\n[base]\nname=Base\nbaseurl=http://base/\npriority=90\n"
        stanzas = parse_repo_file(text)
        assert [s.repo_id for s in stanzas] == ["xsede", "base"]
        assert stanzas[1].priority == 90


class TestRejections:
    def test_duplicate_section_ids(self):
        text = VALID + VALID
        with pytest.raises(RepoConfigError, match=r"duplicate section \[xsede\]"):
            parse_repo_file(text)

    def test_missing_name(self):
        with pytest.raises(RepoConfigError, match="missing required key 'name'"):
            parse_repo_file("[r]\nbaseurl=http://r/\n")

    def test_missing_baseurl(self):
        with pytest.raises(RepoConfigError, match="missing required key 'baseurl'"):
            parse_repo_file("[r]\nname=R\n")

    def test_missing_key_in_non_final_stanza(self):
        text = "[a]\nname=A\n[b]\nname=B\nbaseurl=http://b/\n"
        with pytest.raises(RepoConfigError, match=r"\[a\]: missing required key"):
            parse_repo_file(text)

    def test_content_before_any_section(self):
        with pytest.raises(RepoConfigError, match="content before any"):
            parse_repo_file("name=R\n[r]\nbaseurl=http://r/\n")

    def test_empty_section_name(self):
        with pytest.raises(RepoConfigError, match="empty section name"):
            parse_repo_file("[]\nname=R\nbaseurl=http://r/\n")

    def test_duplicate_key_within_section(self):
        with pytest.raises(RepoConfigError, match="duplicate key 'name'"):
            parse_repo_file("[r]\nname=R\nname=Again\nbaseurl=http://r/\n")

    def test_unknown_key(self):
        with pytest.raises(RepoConfigError, match="unknown key 'mirrorlist'"):
            parse_repo_file("[r]\nname=R\nbaseurl=u\nmirrorlist=http://m/\n")

    def test_non_key_value_line(self):
        with pytest.raises(RepoConfigError, match="expected key=value"):
            parse_repo_file("[r]\nname=R\nbaseurl=u\njust words\n")

    def test_bad_boolean(self):
        with pytest.raises(RepoConfigError, match="expected boolean"):
            parse_repo_file("[r]\nname=R\nbaseurl=u\nenabled=maybe\n")

    def test_empty_file(self):
        with pytest.raises(RepoConfigError, match="no repository stanzas"):
            parse_repo_file("# only a comment\n")


class TestRoundTrip:
    def test_parse_render_parse_is_identity(self):
        stanzas = [
            XSEDE_REPO_STANZA,
            RepoStanza(repo_id="base", name="CentOS Base",
                       baseurl="http://mirror/centos/", enabled=False,
                       gpgcheck=True, priority=90),
        ]
        rendered = render_repo_file(stanzas)
        assert parse_repo_file(rendered) == stanzas
        # and rendering what we parsed reproduces the text
        assert render_repo_file(parse_repo_file(rendered)) == rendered

"""The HTCondor-like high-throughput substrate (Table 1's htcondor roll):
ClassAd-lite matchmaking, dedicated + scavenged slots, fair-share
negotiation, and owner-return eviction.
"""

from ..rocks.installer import ProvisionedCluster
from .classads import ClassAd, Condition, HtcError, Op, Requirements
from .condor import CondorPool, HtcJob, HtcJobState, Slot

__all__ = [
    "ClassAd",
    "Condition",
    "Requirements",
    "Op",
    "HtcError",
    "CondorPool",
    "HtcJob",
    "HtcJobState",
    "Slot",
    "pool_from_cluster",
]


def pool_from_cluster(cluster: ProvisionedCluster) -> CondorPool:
    """Build a pool from a provisioned cluster's compute nodes.

    Requires the htcondor roll to be installed (the condor_master service
    must exist on the compute nodes) — matching how the real roll turns
    cluster nodes into pool members.
    """
    pool = CondorPool()
    for host in cluster.hosts()[1:]:
        if not host.services.is_running("condor_master"):
            raise HtcError(
                f"{host.name}: condor_master is not running "
                f"(install the htcondor roll)"
            )
        node = host.node
        pool.add_dedicated_machine(
            host.name,
            cores=node.cores,
            memory_mb=node.memory_bytes // (1024 * 1024),
        )
    return pool

"""Parts-list rendering and scheduled power windows."""

import pytest

from repro.errors import SchedulerError
from repro.hardware import (
    build_limulus_hpc200,
    build_littlefe_modified,
    build_littlefe_original,
    parts_list,
    render_parts_list,
)
from repro.scheduler import Job, PowerManagedScheduler, PowerWindow


class TestPartsList:
    def test_littlefe_shopping_list(self, littlefe_quote):
        lines = {l.part: l for l in parts_list(littlefe_quote.machine)}
        assert lines["Gigabyte GA-Q87TN"].quantity == 6
        assert lines["Intel Celeron G1840"].quantity == 6
        assert lines["DDR3-1600 4GiB SO-DIMM"].quantity == 12
        assert lines["Crucial M550 128GB mSATA"].quantity == 6
        assert lines["picoPSU-160-XT"].quantity == 6
        assert lines["LittleFe v4 frame"].quantity == 1

    def test_totals_match_bom(self, littlefe_quote):
        total = sum(l.extended_usd for l in parts_list(littlefe_quote.machine))
        from repro.hardware.builder import NETWORK_KIT_USD

        assert total + NETWORK_KIT_USD == pytest.approx(littlefe_quote.bom_usd)

    def test_render_has_published_price(self, littlefe_quote):
        text = render_parts_list(littlefe_quote)
        assert "published price" in text
        assert "$  3600.00" in text

    def test_shared_psu_machines_list_the_case_supply(self, limulus_quote):
        lines = {l.part: l for l in parts_list(limulus_quote.machine)}
        assert "Limulus 850W case PSU" in lines
        assert not any("picoPSU" in name for name in lines)

    def test_soldered_cpu_rendered_as_on_board(self, original_littlefe_quote):
        lines = {l.part for l in parts_list(original_littlefe_quote.machine)}
        assert any("CPU on board" in name for name in lines)


class TestPowerWindow:
    def test_validation(self):
        with pytest.raises(SchedulerError):
            PowerWindow(start_s=10.0, end_s=5.0)
        with pytest.raises(SchedulerError):
            PowerWindow(start_s=0.0, end_s=30 * 3600.0)

    def test_blackout_phase_logic(self):
        window = PowerWindow(start_s=0.0, end_s=8 * 3600.0)
        assert window.is_blackout(2 * 3600.0)
        assert not window.is_blackout(12 * 3600.0)
        assert window.is_blackout(26 * 3600.0)  # next day's window

    def test_next_window_end(self):
        window = PowerWindow(start_s=0.0, end_s=8 * 3600.0)
        assert window.next_window_end(2 * 3600.0) == pytest.approx(8 * 3600.0)
        # outside the window: the end of tomorrow's window
        assert window.next_window_end(12 * 3600.0) == pytest.approx(32 * 3600.0)

    def test_job_waits_for_window_end(self, limulus_machine):
        scheduler = PowerManagedScheduler(
            limulus_machine,
            manage_power=True,
            blackout=PowerWindow(start_s=0.0, end_s=8 * 3600.0),
        )
        scheduler.now_s = 2 * 3600.0
        job = scheduler.submit(
            Job("overnight", "sci", cores=4, walltime_limit_s=7200, runtime_s=3600)
        )
        stats = scheduler.run_to_completion()
        assert job.start_time_s >= 8 * 3600.0
        assert stats.completed == 1

    def test_daytime_jobs_unaffected(self, limulus_machine):
        scheduler = PowerManagedScheduler(
            limulus_machine,
            manage_power=True,
            blackout=PowerWindow(start_s=0.0, end_s=8 * 3600.0),
        )
        scheduler.now_s = 10 * 3600.0
        job = scheduler.submit(
            Job("daytime", "sci", cores=4, walltime_limit_s=7200, runtime_s=3600)
        )
        scheduler.run_to_completion()
        # only the boot delay, never the window
        assert job.start_time_s <= 10 * 3600.0 + scheduler.boot_delay_s

    def test_blackout_energy_is_zero(self, limulus_machine):
        scheduler = PowerManagedScheduler(
            limulus_machine,
            manage_power=True,
            blackout=PowerWindow(start_s=0.0, end_s=8 * 3600.0),
        )
        scheduler.now_s = 1 * 3600.0
        scheduler.submit(
            Job("waits", "sci", cores=4, walltime_limit_s=7200, runtime_s=600)
        )
        scheduler.run_to_completion()
        # 7 hours of blackout: all node-seconds off, no idle burn
        assert scheduler.energy.off_node_seconds >= 3 * 7 * 3600.0
        assert scheduler.energy.idle_joules == pytest.approx(0.0)


class TestPowerStateVisibility:
    def test_hardware_reflects_managed_power(self, limulus_machine):
        scheduler = PowerManagedScheduler(limulus_machine, manage_power=True)
        # at rest: compute blades physically off, head untouched
        assert all(not n.powered_on for n in limulus_machine.compute_nodes)
        assert limulus_machine.head.powered_on
        job = scheduler.submit(
            Job("wake", "sci", cores=12, walltime_limit_s=3600, runtime_s=600)
        )
        assert all(n.powered_on for n in limulus_machine.compute_nodes)
        scheduler.run_to_completion()
        assert all(not n.powered_on for n in limulus_machine.compute_nodes)

    def test_machine_draw_tracks_power_state(self, limulus_machine):
        full = limulus_machine.draw_watts
        PowerManagedScheduler(limulus_machine, manage_power=True)
        assert limulus_machine.draw_watts < full  # blades off

"""Hierarchical monitoring: a gmetad-of-gmetads tree for 10k+ hosts.

A flat :class:`~repro.monitoring.gmetad.Gmetad` polls every gmond every
cycle — O(hosts) python objects touched per period, which is exactly the
per-node overhead ROADMAP item 1 bans from fleet hot paths.  Real Ganglia
deployments scale by federating: leaf gmetads summarize a rack each, and
the root gmetad aggregates *summaries*, not hosts.

This module reproduces that shape:

* :class:`FleetRack` — a leaf that summarizes one rack straight off the
  shared :class:`~repro.fleet.FleetTable` columns (power, responsiveness,
  cores, load, memory), no per-host objects at all.  When the table epoch
  is unchanged since the last cycle the cached summary is reused — an
  idle rack costs O(1) per cycle;
* :class:`GmondRack` — a leaf over real :class:`Gmond` agents for racks
  that need full metric fidelity (the frontend, say);
* :class:`GmetadTree` — the root: merges per-rack ``ClusterSummary``
  deltas into running totals, emitting one ``monitor.rack`` event per
  *changed* rack and one ``monitor.rollup`` per cycle.

Dead-host detection is preserved at the leaves: consecutive missed
heartbeats (an unresponsive gmond, or a zeroed ``responsive`` column
flag) declare the host dead and emit ``monitor.host_dead`` exactly as the
flat aggregator does.

:func:`monitor_fleet` wires a provisioned cluster into the tree in one
call (the fleet-scale sibling of
:func:`~repro.monitoring.monitor_cluster`).
"""

from __future__ import annotations

from dataclasses import replace

from ..errors import ReproError
from ..fleet import FleetTable
from ..sim import PeriodicEvent, SimKernel
from .gmetad import ClusterSummary
from .gmond import Gmond
from .metrics import MonitoringError

__all__ = ["FleetRack", "GmondRack", "GmetadTree", "monitor_fleet"]


def _signature(s: ClusterSummary) -> tuple:
    """Everything that makes two cycles' summaries *different* — all
    fields except the timestamp."""
    return (
        s.hosts_total,
        s.hosts_up,
        s.total_cores,
        s.load_total,
        s.mem_total_kb,
        s.mem_free_kb,
        s.failed_services,
        s.hosts_dead,
    )


class FleetRack:
    """One rack summarized as fleet-table column scans.

    ``indices`` are the rack's row indices in the shared table.  A host is
    *up* when powered; an unresponsive host is a missed heartbeat and is
    declared dead after ``dead_after_misses`` consecutive misses.  The
    memory model matches :class:`Gmond`: free memory degrades with load,
    floored at 10%.
    """

    def __init__(
        self,
        name: str,
        fleet: FleetTable,
        indices: list[int],
        *,
        dead_after_misses: int = 3,
    ) -> None:
        if dead_after_misses < 1:
            raise MonitoringError("dead_after_misses must be >= 1")
        self.name = name
        self.fleet = fleet
        self.indices = list(indices)
        self.dead_after_misses = dead_after_misses
        self._missed: dict[int, int] = {}
        self._dead: set[int] = set()
        self._last: ClusterSummary | None = None
        self._last_epoch = -1
        #: True when no miss counter is mid-count (every unresponsive host
        #: is already declared dead) — the precondition for the epoch
        #: fast path, since a pending counter changes state even when the
        #: table does not.
        self._settled = True

    def hosts(self) -> list[str]:
        fleet = self.fleet
        return [fleet.names[i] for i in self.indices if fleet.alive[i]]

    def dead_hosts(self) -> list[str]:
        return sorted(self.fleet.names[i] for i in self._dead)

    def sample(self, timestamp_s: float, trace) -> tuple[ClusterSummary, bool]:
        """Summarize the rack; returns ``(summary, changed_since_last)``."""
        fleet = self.fleet
        if (
            self._last is not None
            and self._settled
            and fleet.epoch == self._last_epoch
        ):
            # Nothing in the table moved and no heartbeat counter is
            # pending: the previous summary still holds.
            summary = replace(self._last, timestamp_s=timestamp_s)
            self._last = summary
            return summary, False

        up = 0
        total = 0
        cores = 0
        load = 0.0
        mem_total = 0.0
        mem_free = 0.0
        unsettled = False
        for i in self.indices:
            if not fleet.alive[i]:
                continue
            total += 1
            if not fleet.responsive[i]:
                missed = self._missed.get(i, 0) + 1
                self._missed[i] = missed
                if missed >= self.dead_after_misses:
                    if i not in self._dead:
                        self._dead.add(i)
                        trace.emit(
                            "monitor.host_dead", t_s=timestamp_s,
                            subsystem="monitoring", host=fleet.names[i],
                            missed=missed,
                        )
                else:
                    unsettled = True
                continue
            self._missed[i] = 0
            self._dead.discard(i)
            if fleet.powered[i]:
                up += 1
                c = fleet.cores[i]
                busy = fleet.load[i]
                cores += c
                load += busy
                mt = fleet.mem_kb[i]
                mem_total += mt
                mem_free += mt * max(0.1, 1.0 - 0.8 * busy / max(c, 1))
        summary = ClusterSummary(
            timestamp_s=timestamp_s,
            hosts_total=total,
            hosts_up=up,
            total_cores=cores,
            load_total=load,
            mem_total_kb=mem_total,
            mem_free_kb=mem_free,
            failed_services=0,
            hosts_dead=len(self._dead),
        )
        changed = self._last is None or _signature(summary) != _signature(
            self._last
        )
        self._last = summary
        self._last_epoch = fleet.epoch
        self._settled = not unsettled
        return summary, changed


class GmondRack:
    """One rack of real :class:`Gmond` agents, summarized at the leaf.

    Full metric fidelity (service failures included) without the root ever
    touching the agents — use it for racks that need detail (the frontend)
    alongside :class:`FleetRack` leaves for the bulk.
    """

    def __init__(self, name: str, *, dead_after_misses: int = 3) -> None:
        if dead_after_misses < 1:
            raise MonitoringError("dead_after_misses must be >= 1")
        self.name = name
        self.dead_after_misses = dead_after_misses
        self._gmonds: dict[str, Gmond] = {}
        self._missed: dict[str, int] = {}
        self._dead: set[str] = set()
        self._last: ClusterSummary | None = None

    def attach(self, gmond: Gmond) -> None:
        host = gmond.host.name
        if host in self._gmonds:
            raise MonitoringError(f"gmond for {host} already attached")
        self._gmonds[host] = gmond

    def hosts(self) -> list[str]:
        return sorted(self._gmonds)

    def dead_hosts(self) -> list[str]:
        return sorted(self._dead)

    def sample(self, timestamp_s: float, trace) -> tuple[ClusterSummary, bool]:
        """Poll every agent in the rack; returns ``(summary, changed)``."""
        up = 0
        cores = 0
        load = 0.0
        mem_total = 0.0
        mem_free = 0.0
        failed = 0
        for name in self.hosts():
            try:
                samples = {
                    s.spec.name: s for s in self._gmonds[name].poll(timestamp_s)
                }
            except ReproError:
                missed = self._missed.get(name, 0) + 1
                self._missed[name] = missed
                if missed >= self.dead_after_misses and name not in self._dead:
                    self._dead.add(name)
                    trace.emit(
                        "monitor.host_dead", t_s=timestamp_s,
                        subsystem="monitoring", host=name, missed=missed,
                    )
                continue
            self._missed[name] = 0
            self._dead.discard(name)
            if samples["powered_on"].value > 0:
                up += 1
                cores += int(samples["cpu_num"].value)
                load += samples["load_one"].value
                mem_total += samples["mem_total"].value
                mem_free += samples["mem_free"].value
                failed += int(samples["svc_failed"].value)
        summary = ClusterSummary(
            timestamp_s=timestamp_s,
            hosts_total=len(self._gmonds),
            hosts_up=up,
            total_cores=cores,
            load_total=load,
            mem_total_kb=mem_total,
            mem_free_kb=mem_free,
            failed_services=failed,
            hosts_dead=len(self._dead),
        )
        changed = self._last is None or _signature(summary) != _signature(
            self._last
        )
        self._last = summary
        return summary, changed


class GmetadTree:
    """The root aggregator: merges rack summaries, never polls a host.

    Each cycle asks every leaf for its summary and folds *deltas* into
    running totals: an unchanged rack costs one subtraction-free pass (and,
    for :class:`FleetRack` leaves on a quiet table, the leaf itself is
    O(1)).  Per changed rack it emits ``monitor.rack``; per cycle,
    ``monitor.rollup`` with the merged figures and how many racks moved.
    """

    def __init__(
        self,
        cluster_name: str,
        *,
        poll_period_s: float = 15.0,
        kernel: SimKernel | None = None,
    ) -> None:
        if poll_period_s <= 0:
            raise MonitoringError("poll period must be positive")
        self.cluster_name = cluster_name
        self.poll_period_s = poll_period_s
        self.kernel = kernel if kernel is not None else SimKernel()
        self._racks: dict[str, FleetRack | GmondRack] = {}
        self._rack_last: dict[str, ClusterSummary] = {}
        # Running totals the deltas fold into.
        self._hosts_total = 0
        self._hosts_up = 0
        self._cores = 0
        self._load = 0.0
        self._mem_total = 0.0
        self._mem_free = 0.0
        self._failed = 0
        self._dead = 0
        self._sampler: PeriodicEvent | None = None
        self.summaries: list[ClusterSummary] = []

    @property
    def now_s(self) -> float:
        return self.kernel.now_s

    def add_rack(self, rack: FleetRack | GmondRack) -> None:
        if rack.name in self._racks:
            raise MonitoringError(f"rack {rack.name} already attached")
        self._racks[rack.name] = rack

    def racks(self) -> list[str]:
        return sorted(self._racks)

    def rack_for(self, name: str) -> FleetRack | GmondRack:
        try:
            return self._racks[name]
        except KeyError:
            raise MonitoringError(f"unknown rack {name!r}") from None

    def dead_hosts(self) -> list[str]:
        """Dead hosts across every rack (leaf detection, merged view)."""
        out: list[str] = []
        for name in self.racks():
            out.extend(self._racks[name].dead_hosts())
        return sorted(out)

    def _fold_delta(
        self, old: ClusterSummary | None, new: ClusterSummary
    ) -> None:
        if old is not None:
            self._hosts_total -= old.hosts_total
            self._hosts_up -= old.hosts_up
            self._cores -= old.total_cores
            self._load -= old.load_total
            self._mem_total -= old.mem_total_kb
            self._mem_free -= old.mem_free_kb
            self._failed -= old.failed_services
            self._dead -= old.hosts_dead
        self._hosts_total += new.hosts_total
        self._hosts_up += new.hosts_up
        self._cores += new.total_cores
        self._load += new.load_total
        self._mem_total += new.mem_total_kb
        self._mem_free += new.mem_free_kb
        self._failed += new.failed_services
        self._dead += new.hosts_dead

    def _sample(self, timestamp_s: float) -> ClusterSummary:
        trace = self.kernel.trace
        changed_racks = 0
        for name in self.racks():
            summary, changed = self._racks[name].sample(timestamp_s, trace)
            if changed:
                changed_racks += 1
                self._fold_delta(self._rack_last.get(name), summary)
                trace.emit(
                    "monitor.rack", t_s=timestamp_s, subsystem="monitoring",
                    rack=name, hosts_up=summary.hosts_up,
                    hosts_total=summary.hosts_total,
                    load_total=summary.load_total,
                )
            self._rack_last[name] = summary
        merged = ClusterSummary(
            timestamp_s=timestamp_s,
            hosts_total=self._hosts_total,
            hosts_up=self._hosts_up,
            total_cores=self._cores,
            load_total=self._load,
            mem_total_kb=self._mem_total,
            mem_free_kb=self._mem_free,
            failed_services=self._failed,
            hosts_dead=self._dead,
        )
        self.summaries.append(merged)
        trace.emit(
            "monitor.rollup", t_s=timestamp_s, subsystem="monitoring",
            racks=len(self._racks), changed=changed_racks,
            hosts_up=merged.hosts_up, hosts_total=merged.hosts_total,
            load_total=merged.load_total,
        )
        return merged

    def poll_cycle(self) -> ClusterSummary:
        """One polling period: advance, summarize racks, merge deltas."""
        self.kernel.run_until(self.now_s + self.poll_period_s)
        return self._sample(self.now_s)

    def run_cycles(self, count: int) -> ClusterSummary:
        """Poll ``count`` times; returns the last merged summary."""
        if count <= 0:
            raise MonitoringError("cycle count must be positive")
        last = None
        for _ in range(count):
            last = self.poll_cycle()
        assert last is not None
        return last

    def start_sampling(self, *, first_at_s: float | None = None) -> PeriodicEvent:
        """Register polling as a periodic kernel event (co-simulation)."""
        if self._sampler is not None:
            raise MonitoringError("sampling is already running")
        self._sampler = self.kernel.every(
            self.poll_period_s,
            lambda: self._sample(self.kernel.now_s),
            first_at_s=first_at_s,
            label=f"gmetad-tree.poll:{self.cluster_name}",
        )
        return self._sampler

    def stop_sampling(self) -> None:
        if self._sampler is not None:
            self._sampler.cancel()
            self._sampler = None

    def state_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot of the aggregation tree."""
        return {
            "cluster": self.cluster_name,
            "racks": {
                name: {
                    "hosts": len(self._racks[name].hosts()),
                    "dead": self._racks[name].dead_hosts(),
                }
                for name in self.racks()
            },
            "summaries": len(self.summaries),
        }


def monitor_fleet(
    cluster,
    *,
    hosts_per_rack: int = 48,
    poll_period_s: float = 15.0,
    kernel: SimKernel | None = None,
    dead_after_misses: int = 3,
) -> GmetadTree:
    """Wire a provisioned cluster into a hierarchical monitoring tree.

    Rows of the cluster's fleet table (frontend included) are chunked into
    :class:`FleetRack` leaves of ``hosts_per_rack`` each — the fleet-scale
    counterpart of :func:`~repro.monitoring.monitor_cluster`, with no
    per-host gmond objects.  Works for any install mode; it is the only
    monitoring path that scales to golden-image fleets.
    """
    if hosts_per_rack < 1:
        raise MonitoringError("hosts_per_rack must be >= 1")
    fleet = cluster.rocksdb.fleet
    tree = GmetadTree(
        cluster.machine.name, poll_period_s=poll_period_s, kernel=kernel
    )
    indices = fleet.ordered_indices()
    for j, start in enumerate(range(0, len(indices), hosts_per_rack)):
        tree.add_rack(
            FleetRack(
                f"rack{j:03d}",
                fleet,
                indices[start : start + hosts_per_rack],
                dead_after_misses=dead_after_misses,
            )
        )
    return tree

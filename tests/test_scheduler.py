"""Scheduler tests: allocation invariants, FIFO vs backfill, fair-share,
tickets, walltime enforcement, and power management."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import JobError, SchedulerError
from repro.hardware import build_limulus_hpc200, build_littlefe_modified
from repro.scheduler import (
    ClusterResources,
    Job,
    JobState,
    MauiScheduler,
    PowerManagedScheduler,
    SgeScheduler,
    SlurmScheduler,
    TorqueScheduler,
)


def job(name, cores, runtime, *, user="alice", limit=None, priority=0):
    return Job(
        name,
        user,
        cores=cores,
        walltime_limit_s=limit if limit is not None else runtime * 2,
        runtime_s=runtime,
        priority=priority,
    )


@pytest.fixture
def resources(littlefe_machine):
    return ClusterResources(littlefe_machine)  # 5 compute nodes x 2 = 10 cores


class TestResources:
    def test_compute_only_by_default(self, littlefe_machine):
        res = ClusterResources(littlefe_machine)
        assert res.total_cores == 10  # frontend's 2 cores excluded

    def test_head_included_on_request(self, littlefe_machine):
        res = ClusterResources(littlefe_machine, use_head_for_jobs=True)
        assert res.total_cores == 12

    def test_allocation_never_oversubscribes(self, resources):
        allocations = []
        while True:
            a = resources.try_allocate(2)
            if a is None:
                break
            allocations.append(a)
        assert sum(a.total_cores for a in allocations) == 10
        assert resources.free_cores() == 0

    def test_release_restores(self, resources):
        a = resources.try_allocate(4)
        resources.release(a)
        assert resources.free_cores() == 10

    def test_double_free_detected(self, resources):
        a = resources.try_allocate(4)
        resources.release(a)
        with pytest.raises(SchedulerError, match="double free"):
            resources.release(a)

    def test_busy_node_cannot_go_offline(self, resources):
        resources.try_allocate(10)  # everything busy
        with pytest.raises(SchedulerError, match="busy"):
            resources.set_offline(resources.node_names()[0], True)

    def test_offline_node_excluded(self, resources):
        resources.set_offline(resources.node_names()[0], True)
        assert resources.online_cores == 8
        assert resources.try_allocate(10) is None

    def test_nonpositive_allocation_rejected(self, resources):
        with pytest.raises(SchedulerError):
            resources.try_allocate(0)


class TestJobModel:
    def test_invalid_jobs_rejected(self):
        with pytest.raises(JobError):
            Job("j", "u", cores=0, walltime_limit_s=10, runtime_s=5)
        with pytest.raises(JobError):
            Job("j", "u", cores=1, walltime_limit_s=0, runtime_s=5)
        with pytest.raises(JobError):
            Job("j", "u", cores=1, walltime_limit_s=10, runtime_s=-1)

    def test_walltime_cap(self):
        j = job("over", 2, runtime=500, limit=100)
        assert j.exceeded_walltime
        assert j.charged_runtime_s == 100

    def test_wait_time_before_start_raises(self):
        with pytest.raises(JobError):
            job("j", 1, 10).wait_time_s


class TestFifoVsBackfill:
    """The Maui ablation scenario: a wide job blocks the queue head."""

    def submit_blocking_trace(self, scheduler):
        scheduler.submit(job("running-wide", 8, runtime=1000))   # starts now
        scheduler.submit(job("blocked-huge", 10, runtime=100))   # must wait
        scheduler.submit(job("small-a", 2, runtime=50))
        scheduler.submit(job("small-b", 2, runtime=50))
        return scheduler.run_to_completion()

    def test_torque_fifo_blocks_small_jobs(self, littlefe_machine):
        stats = self.submit_blocking_trace(
            TorqueScheduler(ClusterResources(littlefe_machine))
        )
        # small jobs wait behind the huge one: poor utilisation
        assert stats.mean_wait_s > 500

    def test_maui_backfills_small_jobs(self, littlefe_machine):
        scheduler = MauiScheduler(ClusterResources(littlefe_machine))
        stats = self.submit_blocking_trace(scheduler)
        smalls = [j for j in scheduler.finished if j.name.startswith("small")]
        # both ran inside the wide job's 1000 s window (only 2 cores are
        # free, so they backfill one after the other)
        assert all(j.end_time_s <= 1000.0 for j in smalls)
        assert min(j.start_time_s for j in smalls) == 0.0

    def test_backfill_never_delays_head_job(self, littlefe_machine):
        scheduler = MauiScheduler(ClusterResources(littlefe_machine))
        scheduler.submit(job("running-wide", 8, runtime=1000))
        scheduler.submit(job("blocked-huge", 10, runtime=100))
        # this one is too long to fit before the head's reservation
        scheduler.submit(job("too-long", 2, runtime=5000))
        scheduler.run_to_completion()
        huge = next(j for j in scheduler.finished if j.name == "blocked-huge")
        assert huge.start_time_s == pytest.approx(1000.0)

    def test_utilisation_better_with_backfill(self, littlefe_machine):
        fifo = self.submit_blocking_trace(
            TorqueScheduler(ClusterResources(littlefe_machine))
        )
        maui = self.submit_blocking_trace(
            MauiScheduler(ClusterResources(littlefe_machine))
        )
        assert maui.utilization(10) > fifo.utilization(10)


class TestPriorityAndShares:
    def test_maui_priority_ordering(self, littlefe_machine):
        s = MauiScheduler(ClusterResources(littlefe_machine))
        s.submit(job("occupy", 10, runtime=100))
        low = s.submit(job("low", 10, runtime=10, priority=0))
        high = s.submit(job("high", 10, runtime=10, priority=50))
        s.run_to_completion()
        assert high.start_time_s < low.start_time_s

    def test_maui_qos_boost(self, littlefe_machine):
        s = MauiScheduler(ClusterResources(littlefe_machine))
        s.submit(job("occupy", 10, runtime=100))
        a = s.submit(job("a", 10, runtime=10))
        b = s.submit(job("b", 10, runtime=10))
        s.boost(b, 100)
        s.run_to_completion()
        assert b.start_time_s < a.start_time_s

    def test_slurm_fairshare_favours_light_user(self, littlefe_machine):
        s = SlurmScheduler(ClusterResources(littlefe_machine))
        # heavy user consumes the machine first
        s.submit(job("h1", 10, runtime=1000, user="heavy"))
        s.step()  # finish h1, charging usage to heavy
        s.submit(job("occupy", 10, runtime=100, user="heavy"))
        heavy2 = s.submit(job("h2", 10, runtime=10, user="heavy"))
        light = s.submit(job("l1", 10, runtime=10, user="light"))
        s.run_to_completion()
        assert light.start_time_s < heavy2.start_time_s

    def test_sge_tickets_balance_flooding_user(self, littlefe_machine):
        s = SgeScheduler(ClusterResources(littlefe_machine))
        s.submit(job("occupy", 10, runtime=100, user="z"))
        flood = [s.submit(job(f"f{i}", 10, runtime=10, user="flooder")) for i in range(5)]
        fair = s.submit(job("fair", 10, runtime=10, user="fair-user"))
        s.run_to_completion()
        # fair-user's single job outranks the flooder's diluted share
        assert fair.start_time_s <= min(j.start_time_s for j in flood)

    def test_sge_ticket_config_validation(self, littlefe_machine):
        s = SgeScheduler(ClusterResources(littlefe_machine))
        with pytest.raises(SchedulerError):
            s.set_tickets("u", 0)


class TestLifecycle:
    def test_walltime_violation_fails_job(self, littlefe_machine):
        s = TorqueScheduler(ClusterResources(littlefe_machine))
        j = s.submit(job("over", 2, runtime=200, limit=100))
        stats = s.run_to_completion()
        assert j.state is JobState.FAILED
        assert j.end_time_s == pytest.approx(100.0)
        assert stats.failed == 1

    def test_oversized_job_rejected_at_submit(self, littlefe_machine):
        s = TorqueScheduler(ClusterResources(littlefe_machine))
        with pytest.raises(SchedulerError, match="requests"):
            s.submit(job("monster", 11, runtime=10))

    def test_double_submit_rejected(self, littlefe_machine):
        s = TorqueScheduler(ClusterResources(littlefe_machine))
        j = s.submit(job("j", 10, runtime=10))
        with pytest.raises(SchedulerError):
            s.submit(j)

    def test_cancel_pending(self, littlefe_machine):
        s = TorqueScheduler(ClusterResources(littlefe_machine))
        s.submit(job("occupy", 10, runtime=100))
        j = s.submit(job("doomed", 10, runtime=10))
        s.cancel(j)
        stats = s.run_to_completion()
        assert j.state is JobState.CANCELLED
        assert stats.job_count == 1  # cancelled jobs don't count

    def test_makespan_equals_last_end(self, littlefe_machine):
        s = TorqueScheduler(ClusterResources(littlefe_machine))
        s.submit(job("a", 10, runtime=60))
        s.submit(job("b", 10, runtime=40))
        stats = s.run_to_completion()
        assert stats.makespan_s == pytest.approx(100.0)


class TestPowerManagement:
    def bursty_trace(self, scheduler):
        """Jobs separated by idle gaps, where power-off pays."""
        scheduler.submit(job("burst-1", 12, runtime=600))
        scheduler.run_to_completion()
        # idle gap: simulate by advancing and submitting later
        scheduler.now_s += 7200.0
        scheduler.submit(job("burst-2", 12, runtime=600))
        return scheduler.run_to_completion()

    def test_energy_saved_on_bursty_trace(self, limulus_machine):
        managed = PowerManagedScheduler(limulus_machine, manage_power=True)
        self.bursty_trace(managed)
        baseline = PowerManagedScheduler(limulus_machine, manage_power=False)
        self.bursty_trace(baseline)
        assert managed.energy.total_joules < baseline.energy.total_joules
        assert managed.energy.off_node_seconds > 0
        assert managed.energy.boot_events >= 1

    def test_boot_delay_charged_to_waiting_jobs(self, limulus_machine):
        s = PowerManagedScheduler(
            limulus_machine, manage_power=True, boot_delay_s=60.0
        )
        j = s.submit(job("first", 12, runtime=100))
        s.run_to_completion()
        assert j.start_time_s >= 60.0

    def test_baseline_never_boots(self, limulus_machine):
        s = PowerManagedScheduler(limulus_machine, manage_power=False)
        s.submit(job("j", 12, runtime=100))
        s.run_to_completion()
        assert s.energy.boot_events == 0
        assert s.energy.off_node_seconds == 0

    def test_idle_nodes_power_off_after_queue_drains(self, limulus_machine):
        s = PowerManagedScheduler(limulus_machine, manage_power=True)
        s.submit(job("j", 4, runtime=100))
        s.run_to_completion()
        assert all(s.resources.is_offline(n) for n in s.resources.node_names())

    def test_boot_delayed_jobs_keep_completion_order(self, limulus_machine):
        """Regression: shifting completions by the boot delay must re-key
        the pending events (kernel reschedule), not corrupt their order.
        Both jobs boot-shift by 60s; the short one still finishes first."""
        s = PowerManagedScheduler(
            limulus_machine, manage_power=True, boot_delay_s=60.0
        )
        long_job = s.submit(job("long", 4, runtime=100))
        short_job = s.submit(job("short", 4, runtime=30))
        s.run_to_completion()
        assert [j.name for j in s.finished] == ["short", "long"]
        assert short_job.end_time_s == pytest.approx(90.0)
        assert long_job.end_time_s == pytest.approx(160.0)
        assert not s._completions  # every handle consumed exactly once

    def test_power_transitions_are_traced(self, limulus_machine):
        s = PowerManagedScheduler(
            limulus_machine, manage_power=True, boot_delay_s=60.0
        )
        s.submit(job("j", 4, runtime=100))
        s.run_to_completion()
        trace = s.kernel.trace
        assert trace.count("node.power_on") >= 1
        assert trace.count("node.power_off") >= 1
        assert trace.count("job.end") == 1

    def test_reschedule_completion_without_event_rejected(self, limulus_machine):
        s = PowerManagedScheduler(limulus_machine, manage_power=False)
        j = s.submit(job("j", 4, runtime=100))
        s.run_to_completion()
        with pytest.raises(SchedulerError, match="no pending completion"):
            s.reschedule_completion(j)


# --- property: no oversubscription under random traces -------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=10),   # cores
            st.floats(min_value=1.0, max_value=500.0),  # runtime
        ),
        min_size=1,
        max_size=15,
    )
)
@settings(max_examples=25, deadline=None)
def test_property_random_trace_all_jobs_finish(trace):
    machine = build_littlefe_modified().machine
    s = MauiScheduler(ClusterResources(machine))
    jobs = [
        s.submit(job(f"j{i}", cores, runtime))
        for i, (cores, runtime) in enumerate(trace)
    ]
    stats = s.run_to_completion()
    assert stats.job_count == len(trace)
    assert all(j.state is JobState.COMPLETED for j in jobs)
    # conservation: delivered core-seconds equal the sum over jobs
    assert stats.total_core_seconds == pytest.approx(
        sum(j.core_seconds for j in jobs)
    )
    # utilisation can never exceed 1
    assert stats.utilization(10) <= 1.0 + 1e-9

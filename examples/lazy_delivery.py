#!/usr/bin/env python3
"""Content-addressed lazy package delivery through the stratum hierarchy.

One origin (:class:`~repro.cas.Stratum0`) publishes a release as
deduplicated sha256 chunks, a regional replica
(:class:`~repro.cas.Stratum1`) syncs the chunk delta over the WAN —
surviving a mid-transfer interruption, resuming at chunk granularity —
and a fleet of campuses installs through per-site
:class:`~repro.cas.SiteChunkCache` tiers that fetch chunks lazily, on
first reference.  Then the security update lands: adjacent RPM versions
share most chunks by construction, so the update storm moves only the
~12.5% version-specific delta instead of re-shipping every package to
every campus.  A rollback is published *forward* (a new generation with
the old content, Guix-style), so every cached chunk for the old release
is already warm and the downstream serial protocol never regresses.

Two runs with the same seed produce byte-identical traces (checked
below).  The ``cas.*`` trace events — ``cas.publish``, ``cas.replicate``,
``cas.fetch``, ``cas.rollback`` — carry the accounting.
"""

import argparse
import sys

from repro.cas import (
    LazyDelivery,
    SiteChunkCache,
    Stratum0,
    Stratum1,
    cas_confluence_problems,
)
from repro.errors import CasError
from repro.rpm import Package
from repro.sim import SimKernel
from repro.yum import MirrorLink

CAMPUSES = 4
NODES_PER_CAMPUS = 6
PACKAGES = 20
PKG_BYTES = 1024 * 1024


def release(version: str) -> list[Package]:
    return [
        Package(f"pkg{i}", version, size_bytes=PKG_BYTES)
        for i in range(PACKAGES)
    ]


def wan_link() -> MirrorLink:
    return MirrorLink(bandwidth_bytes_s=50 * 1024 * 1024, latency_s=0.04)


def run_delivery(seed: int = 2016, *, trace_path=None):
    """One full cycle: publish v1, storm-install, update to v2, roll back."""
    kernel = SimKernel(seed=seed)
    s0 = Stratum0("xsede", kernel=kernel)
    s1 = Stratum1("us-east", s0, wan_link(), kernel=kernel)
    sites = [
        SiteChunkCache(f"campus{c}", s1, wan_link(), kernel=kernel)
        for c in range(CAMPUSES)
    ]
    deliveries = [LazyDelivery(site) for site in sites]

    def storm(packages):
        for delivery in deliveries:
            for node in range(NODES_PER_CAMPUS):
                for pkg in packages:
                    delivery.fetch_package(f"node{node}", pkg)

    # v1: publish, replicate (surviving one WAN interruption), cold install.
    v1 = s0.publish(release("1.0"))
    s1.inject_interruptions(1)
    try:
        s1.replicate()
    except CasError:
        pass  # landed chunks stay; the resume moves only the remainder
    resumed = s1.replicate()
    for site in sites:
        site.notice_release(s0.serial)
    storm(release("1.0"))
    cold_wan = sum(site.wan_bytes for site in sites)

    # v2: the security update — only the version-specific chunks move.
    v2 = s0.publish(release("2.0"))
    update_rep = s1.replicate()
    for site in sites:
        site.notice_release(s0.serial)
    storm(release("2.0"))
    update_wan = sum(site.wan_bytes for site in sites) - cold_wan

    # v2 regresses in the field: roll back.  The serial moves FORWARD and
    # every v1 chunk is still cached, so the re-install is nearly free.
    s0.rollback()
    s1.replicate()
    for site in sites:
        site.notice_release(s0.serial)
    storm(release("1.0"))
    rollback_wan = sum(site.wan_bytes for site in sites) - cold_wan - update_wan

    problems = cas_confluence_problems(
        kernel.trace.events, strata=[s0], replicas=[s1], caches=sites
    )
    if trace_path is not None:
        kernel.trace.write_jsonl(trace_path)
    return {
        "kernel": kernel,
        "s0": s0,
        "v1": v1,
        "v2": v2,
        "resumed": resumed,
        "update_rep": update_rep,
        "cold_wan": cold_wan,
        "update_wan": update_wan,
        "rollback_wan": rollback_wan,
        "deliveries": deliveries,
        "problems": problems,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write the JSONL trace here")
    args = parser.parse_args(argv if argv is not None else [])

    run = run_delivery(args.seed, trace_path=args.trace)
    kernel, v1, v2 = run["kernel"], run["v1"], run["v2"]
    full = CAMPUSES * PACKAGES * PKG_BYTES

    print(f"=== Lazy delivery: {CAMPUSES} campuses x {NODES_PER_CAMPUS} "
          f"nodes, {PACKAGES} packages ===")
    print(f"publish v1: serial {v1.serial}, {v1.chunks} chunks "
          f"({v1.new_chunks} new, {v1.nbytes} bytes)")
    print(f"replicate: interrupted once, resumed "
          f"{run['resumed'].chunks} chunk(s)")
    print(f"publish v2: {v2.new_chunks}/{v2.chunks} chunks new — "
          f"{1 - v2.new_chunks / v2.chunks:.0%} deduplicated against v1")
    print(f"cold install WAN: {run['cold_wan']:,} bytes "
          f"(full re-ship would be {full:,})")
    print(f"update storm WAN: {run['update_wan']:,} bytes "
          f"({full / max(1, run['update_wan']):.1f}x less than full mirror)")
    print(f"rollback re-install WAN: {run['rollback_wan']:,} bytes "
          f"(serial moved forward to {run['s0'].serial})")
    total_lan = sum(d.stats.bytes_fetched for d in run["deliveries"])
    print(f"node LAN bytes served: {total_lan:,} "
          f"(the site tier absorbed the fan-out)")
    counts = {k: v for k, v in sorted(kernel.trace.by_kind.items())
              if k.startswith("cas.")}
    print(f"cas.* events: {counts}")
    if run["problems"]:
        print("INVARIANT VIOLATIONS:")
        for problem in run["problems"]:
            print(f"  - {problem}")
    else:
        print("confluence audit: clean (forward serials, honest hit "
              "accounting, no refcount leaks)")

    again = run_delivery(args.seed)
    identical = (
        again["kernel"].trace.to_jsonl() == kernel.trace.to_jsonl()
    )
    print(f"\nsame seed re-run, traces byte-identical: {identical}")
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(validate: python -m repro.sim {args.trace})")


def cluster_definition():
    """An equivalent synthetic site, for ``cluster-lint``."""
    from repro.analyze import ClusterDefinition
    from repro.core.deployments import build_synthetic_fleet
    from repro.scheduler import default_queue_for

    machine = build_synthetic_fleet(CAMPUSES * NODES_PER_CAMPUS)
    return ClusterDefinition(
        name="lazy-delivery",
        machine=machine,
        queues=(default_queue_for(machine),),
    )


if __name__ == "__main__":
    main(sys.argv[1:])

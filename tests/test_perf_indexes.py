"""Property tests: indexed query paths vs the retained ``_scan_*`` oracles.

The hot-path overhaul gave Repository / RepoSet / RpmDatabase inverted
capability indexes with lazy build and epoch-based invalidation, keeping
every pre-index implementation as a ``_scan_*`` reference method.  These
tests drive random add/remove/install/erase sequences through each
container and compare the indexed answers against the scans *after every
mutation* — a stale index (missed invalidation, missed discard) diverges
here.  The same idea pins the batched ``run_until`` against one-at-a-time
stepping.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PackageNotFoundError, TraceError, YumError
from repro.rpm import Capability, Flag, Package, Requirement
from repro.yum import RepoSet, Repository

NAMES = ["alpha", "bravo", "charlie", "delta"]
CAPS = ["mpi-impl", "libfoo.so", "batch-system"]


def _package(name_i, version_i, cap_i, obsoletes_i):
    kw = {}
    if cap_i is not None:
        kw["provides"] = (Capability(CAPS[cap_i]),)
    if obsoletes_i is not None and NAMES[obsoletes_i] != NAMES[name_i]:
        kw["obsoletes"] = (Requirement(NAMES[obsoletes_i]),)
    return Package(NAMES[name_i], f"{version_i}.0", **kw)


packages = st.builds(
    _package,
    st.integers(0, len(NAMES) - 1),
    st.integers(1, 3),
    st.one_of(st.none(), st.integers(0, len(CAPS) - 1)),
    st.one_of(st.none(), st.integers(0, len(NAMES) - 1)),
)

edit_sequences = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), packages), min_size=1, max_size=12
)

QUERIES = [Requirement(n) for n in NAMES + CAPS] + [
    Requirement("alpha", Flag.GE, "2.0"),
    Requirement("bravo", Flag.LT, "3.0"),
]


_MACHINE = None


def _machine():
    """One shared hardware build; the db tests create fresh Hosts on it."""
    global _MACHINE
    if _MACHINE is None:
        from repro.hardware import build_littlefe_modified

        _MACHINE = build_littlefe_modified().machine
    return _MACHINE


def _apply(repo, action, pkg):
    try:
        if action == "add":
            repo.add(pkg)
        else:
            repo.remove(pkg.nevra)
    except (YumError, PackageNotFoundError):
        pass  # duplicate add / missing remove: legal no-ops for this test


class TestRepositoryIndex:
    @given(edit_sequences)
    @settings(max_examples=60, deadline=None)
    def test_queries_match_scans_under_mutation(self, edits):
        repo = Repository("r")
        for action, pkg in edits:
            _apply(repo, action, pkg)
            for req in QUERIES:
                assert repo.providers_of(req) == repo._scan_providers_of(req)
            for name in NAMES:
                assert repo.versions_of(name) == repo._scan_versions_of(name)
            for target in repo.all_packages():
                assert repo.obsoleters_of(target) == repo._scan_obsoleters_of(target)

    def test_epoch_advances_on_every_mutation(self):
        repo = Repository("r")
        e0 = repo.epoch
        repo.add(Package("alpha", "1.0"))
        e1 = repo.epoch
        repo.remove("alpha-1.0-1.x86_64")
        assert e0 < e1 < repo.epoch


class TestRepoSetIndex:
    @given(edit_sequences, edit_sequences)
    @settings(max_examples=40, deadline=None)
    def test_queries_match_scans_under_mutation(self, base_edits, xsede_edits):
        base = Repository("base", priority=90)
        xsede = Repository("xsede", priority=50)
        repos = RepoSet([base, xsede])
        script = [(base, a, p) for a, p in base_edits] + [
            (xsede, a, p) for a, p in xsede_edits
        ]
        for repo, action, pkg in script:
            _apply(repo, action, pkg)
            for req in QUERIES:
                assert repos.providers_of(req) == repos._scan_providers_of(req)
            for name in NAMES:
                assert repos.candidates_by_name(name) == repos._scan_candidates_by_name(
                    name
                )

    def test_epoch_is_content_addressed_across_instances(self):
        """Two RepoSets over repos with identical content share an epoch —
        the property that lets the resolution cache hit across the fresh
        per-node RepoSet the Rocks installer builds."""
        one = Repository("xsede", priority=50)
        two = Repository("xsede", priority=50)
        for repo in (one, two):
            repo.add(Package("alpha", "1.0"))
        assert RepoSet([one]).epoch == RepoSet([two]).epoch
        two.add(Package("bravo", "1.0"))
        assert RepoSet([one]).epoch != RepoSet([two]).epoch

    def test_cache_namespace_cleared_on_epoch_change(self):
        repo = Repository("r")
        repo.add(Package("alpha", "1.0"))
        repos = RepoSet([repo])
        repos.cache("probe")["key"] = "value"
        assert repos.cache("probe")["key"] == "value"
        repo.add(Package("bravo", "1.0"))
        assert "key" not in repos.cache("probe")


class TestRpmDatabaseIndex:
    @given(edit_sequences)
    @settings(max_examples=60, deadline=None)
    def test_queries_match_scans_under_mutation(self, edits):
        from repro.distro import CENTOS_6_5, Host
        from repro.rpm import RpmDatabase

        db = RpmDatabase(Host(_machine().head, CENTOS_6_5))
        for action, pkg in edits:
            try:
                if action == "add":
                    db._install_unchecked(pkg)
                else:
                    db._erase_unchecked(pkg.name)
            except Exception:
                pass  # duplicate install / missing erase
            for req in QUERIES:
                assert db.providers_of(req) == db._scan_providers_of(req)
                assert db.is_satisfied(req) == db._scan_is_satisfied(req)

    def test_fingerprint_tracks_content_not_identity(self, littlefe_machine):
        from repro.distro import CENTOS_6_5, Host
        from repro.rpm import RpmDatabase

        a = RpmDatabase(Host(littlefe_machine.head, CENTOS_6_5))
        b = RpmDatabase(Host(littlefe_machine.head, CENTOS_6_5))
        assert a.fingerprint() == b.fingerprint()
        a._install_unchecked(Package("alpha", "1.0"))
        assert a.fingerprint() != b.fingerprint()
        b._install_unchecked(Package("alpha", "1.0"))
        assert a.fingerprint() == b.fingerprint()


# --- batched run_until ≡ one-at-a-time stepping ----------------------------------

schedules = st.lists(
    st.integers(min_value=0, max_value=5),  # coarse times -> many collisions
    min_size=1,
    max_size=30,
)


@given(schedules, st.integers(0, 2**16))
@settings(max_examples=60, deadline=None)
def test_run_until_matches_stepping(times, seed):
    """The batched drain fires the same events in the same order at the
    same clock readings as step(), including same-timestamp pile-ups and
    events scheduled (or cancelled) from inside callbacks."""
    from repro.sim import SimKernel

    def build():
        kernel = SimKernel(seed=seed)
        log = []
        handles = []

        def fire(i, t):
            log.append((i, kernel.now_s))
            if i % 3 == 0:
                kernel.at(kernel.now_s, lambda: log.append((f"child-{i}", kernel.now_s)))
            if i % 4 == 1 and handles:
                victim = handles.pop()
                if victim.active:
                    kernel.cancel(victim)

        for i, t in enumerate(times):
            handles.append(kernel.at(float(t), lambda i=i, t=t: fire(i, t)))
        return kernel, log

    batched_kernel, batched_log = build()
    fired = batched_kernel.run_until(10.0)

    stepped_kernel, stepped_log = build()
    stepped = 0
    while True:
        head = stepped_kernel.peek_time_s()
        if head is None or head > 10.0:
            break
        stepped_kernel.step()
        stepped += 1
    stepped_kernel.clock.advance_to(10.0)

    assert batched_log == stepped_log
    assert fired == stepped
    assert batched_kernel.now_s == stepped_kernel.now_s == 10.0


def test_run_until_callback_exception_restores_queue():
    """If a batch member raises, the unfired remainder goes back on the
    heap with its original (time, seq) identity."""
    from repro.sim import SimKernel

    kernel = SimKernel()
    log = []
    kernel.at(1.0, lambda: log.append("a"))

    def boom():
        raise RuntimeError("boom")

    kernel.at(1.0, boom)
    kernel.at(1.0, lambda: log.append("c"))
    with pytest.raises(RuntimeError):
        kernel.run_until(5.0)
    assert log == ["a"]
    # "c" is still pending and fires on the next drain, before later events.
    kernel.at(1.0, lambda: log.append("d"))
    kernel.run_until(5.0)
    assert log == ["a", "c", "d"]


# --- trace-bus shape cache --------------------------------------------------------


class TestTraceShapeCache:
    def test_fast_path_jsonl_identical_to_strict(self):
        from repro.sim import TraceBus

        def fill(bus):
            for i in range(50):
                bus.emit(
                    "metric.sample", t_s=float(i), subsystem="mon",
                    host=f"h{i % 3}", metric="load_one", value=float(i),
                )
                if i % 10 == 0:
                    bus.emit("job.cancel", t_s=float(i), subsystem="sched", job=f"j{i}")

        fast, strict = TraceBus(), TraceBus(strict=True)
        fill(fast)
        fill(strict)
        assert fast.to_jsonl() == strict.to_jsonl()
        assert fast.by_kind == strict.by_kind

    def test_new_shape_for_known_kind_is_revalidated(self):
        from repro.sim import TraceBus

        bus = TraceBus()
        bus.emit(
            "metric.sample", t_s=0.0, subsystem="mon",
            host="h0", metric="load_one", value=1.0,
        )
        # Same kind, different key set missing a required field: the shape
        # memo must not let it through.
        with pytest.raises(TraceError, match="missing data field"):
            bus.emit("metric.sample", t_s=1.0, subsystem="mon", host="h0", value=1.0)
        # And the failed shape is not remembered as valid.
        with pytest.raises(TraceError):
            bus.emit("metric.sample", t_s=2.0, subsystem="mon", host="h0", value=1.0)

    def test_extra_fields_still_validated_for_types(self):
        from repro.sim import TraceBus

        bus = TraceBus()
        with pytest.raises(TraceError, match="wanted float"):
            bus.emit(
                "metric.sample", t_s=0.0, subsystem="mon",
                host="h0", metric="load_one", value="high",
            )

"""The rule catalogue, per-rule configuration, and baseline suppression.

Every check the analyzer can perform is declared up front as a
:class:`Rule` with a stable code, default severity, and fix hint, and
registered in the process-wide :data:`RULES` registry.  Declaring rules as
data (rather than burying them in pass logic) is what makes
``cluster-lint --list-rules``, per-rule enable/disable, and the
docs/ANALYZE.md catalogue possible without drift.

:class:`Baseline` implements suppression files: known findings, recorded by
fingerprint with a reason, that CI should stop reporting — the standard
mechanism for adopting a linter on a codebase with pre-existing debt.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .diagnostic import Diagnostic, Severity

__all__ = [
    "Rule",
    "RuleRegistry",
    "RULES",
    "rule",
    "AnalysisConfig",
    "Baseline",
    "BASELINE_SCHEMA",
]

#: Schema tag written into baseline files; bump on incompatible change.
BASELINE_SCHEMA = "repro.analyze.baseline/v1"


@dataclass(frozen=True)
class Rule:
    """One registered check.

    ``code`` is stable forever (``KS101`` means the same thing in every
    release); ``summary`` is what the rule looks for; ``hint`` is the
    default fix advice attached to its diagnostics.
    """

    code: str
    subsystem: str
    severity: Severity
    summary: str
    hint: str = ""


class RuleRegistry:
    """All known rules, keyed by code."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, new_rule: Rule) -> Rule:
        if new_rule.code in self._rules:
            raise ValueError(f"duplicate rule code {new_rule.code}")
        self._rules[new_rule.code] = new_rule
        return new_rule

    def get(self, code: str) -> Rule:
        try:
            return self._rules[code]
        except KeyError:
            raise KeyError(f"unknown rule code {code!r}") from None

    def __contains__(self, code: str) -> bool:
        return code in self._rules

    def codes(self) -> list[str]:
        return sorted(self._rules)

    def all_rules(self) -> list[Rule]:
        """Every rule, sorted by code."""
        return [self._rules[c] for c in self.codes()]

    def subsystems(self) -> list[str]:
        return sorted({r.subsystem for r in self._rules.values()})


#: The process-wide registry; pass modules populate it at import time.
RULES = RuleRegistry()


def rule(
    code: str,
    subsystem: str,
    severity: Severity,
    summary: str,
    hint: str = "",
) -> Rule:
    """Declare and register a rule in :data:`RULES` (module-level helper)."""
    return RULES.register(Rule(code, subsystem, severity, summary, hint))


@dataclass(frozen=True)
class AnalysisConfig:
    """Which rules run and what severity gates a failure.

    ``only`` (when non-None) whitelists codes; ``disabled`` blacklists them
    (applied after ``only``).  ``fail_on`` is the minimum severity that makes
    :meth:`AnalysisResult.exit_code` non-zero — CI uses the default (error).
    """

    only: frozenset[str] | None = None
    disabled: frozenset[str] = frozenset()
    fail_on: Severity = Severity.ERROR

    def is_enabled(self, code: str) -> bool:
        if self.only is not None and code not in self.only:
            return False
        return code not in self.disabled


@dataclass
class Baseline:
    """Accepted findings that should not be re-reported.

    Maps diagnostic fingerprints (``CODE@location``) to the reason they are
    tolerated.  Stored as JSON so the file is diffable and reviewable.
    """

    suppressions: dict[str, str] = field(default_factory=dict)

    def matches(self, diag: Diagnostic) -> bool:
        return diag.fingerprint in self.suppressions

    def add(self, diag: Diagnostic, reason: str = "accepted by baseline") -> None:
        self.suppressions[diag.fingerprint] = reason

    def split(
        self, diagnostics: list[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic]]:
        """Partition into (kept, suppressed)."""
        kept = [d for d in diagnostics if not self.matches(d)]
        suppressed = [d for d in diagnostics if self.matches(d)]
        return kept, suppressed

    # -- staleness ---------------------------------------------------------

    def stale_fingerprints(
        self, registry: "RuleRegistry | None" = None
    ) -> list[str]:
        """Fingerprints whose rule code no longer exists in ``registry``.

        A stale entry can never match a diagnostic again — it is dead
        weight that hides the fact the debt it recorded was retired (or the
        rule renamed).  The CLI warns about these on load and
        ``--prune-baseline`` rewrites the file without them.
        """
        reg = RULES if registry is None else registry
        return sorted(
            fp for fp in self.suppressions if fp.split("@", 1)[0] not in reg
        )

    def pruned(
        self, registry: "RuleRegistry | None" = None
    ) -> tuple["Baseline", list[str]]:
        """A copy without stale entries, plus the fingerprints dropped."""
        stale = set(self.stale_fingerprints(registry))
        kept = {
            fp: reason
            for fp, reason in self.suppressions.items()
            if fp not in stale
        }
        return Baseline(suppressions=kept), sorted(stale)

    # -- serialisation -----------------------------------------------------

    def to_text(self) -> str:
        payload = {
            "schema": BASELINE_SCHEMA,
            "suppressions": [
                {"fingerprint": fp, "reason": reason}
                for fp, reason in sorted(self.suppressions.items())
            ],
        }
        return json.dumps(payload, indent=2) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "Baseline":
        payload = json.loads(text)
        if payload.get("schema") != BASELINE_SCHEMA:
            raise ValueError(
                f"not a baseline file (schema {payload.get('schema')!r}, "
                f"expected {BASELINE_SCHEMA!r})"
            )
        return cls(
            suppressions={
                entry["fingerprint"]: entry.get("reason", "")
                for entry in payload.get("suppressions", [])
            }
        )

    @classmethod
    def from_diagnostics(
        cls, diagnostics: list[Diagnostic], reason: str = "accepted by baseline"
    ) -> "Baseline":
        baseline = cls()
        for diag in diagnostics:
            baseline.add(diag, reason)
        return baseline

"""Integration extensions: MPI-on-allocation profiles and per-package
update subscriptions."""

import pytest

from repro.errors import MpiError, YumError
from repro.hardware import build_littlefe_modified
from repro.mpi import run_allreduce_job, world_for_job
from repro.network import build_cluster_network
from repro.rpm import Package
from repro.scheduler import ClusterResources, Job, MauiScheduler
from repro.yum import NotifyPolicy, Repository, XSEDE_REPO_STANZA, YumClient


@pytest.fixture
def fabric_and_scheduler():
    machine = build_littlefe_modified().machine
    net = build_cluster_network(machine)
    scheduler = MauiScheduler(ClusterResources(machine))
    return machine, net, scheduler


class TestMpiOnAllocation:
    def test_world_matches_allocation(self, fabric_and_scheduler):
        _machine, net, scheduler = fabric_and_scheduler
        job = scheduler.submit(
            Job("solver", "alice", cores=6, walltime_limit_s=600, runtime_s=60)
        )
        world = world_for_job(net.fabric, job)
        assert world.size == 6
        allocated = {name for name, _c in job.allocation.by_node}
        assert set(world.rank_hosts) == allocated

    def test_pending_job_has_no_world(self, fabric_and_scheduler):
        _machine, net, scheduler = fabric_and_scheduler
        scheduler.submit(Job("fill", "a", cores=10, walltime_limit_s=60, runtime_s=30))
        waiting = scheduler.submit(
            Job("waiting", "b", cores=10, walltime_limit_s=60, runtime_s=30)
        )
        with pytest.raises(MpiError, match="no allocation"):
            world_for_job(net.fabric, waiting)

    def test_profile_splits_compute_and_comm(self, fabric_and_scheduler):
        _machine, net, scheduler = fabric_and_scheduler
        job = scheduler.submit(
            Job("cg", "alice", cores=8, walltime_limit_s=600, runtime_s=60)
        )
        world = world_for_job(net.fabric, job)
        profile = run_allreduce_job(world, iterations=5, elements=4096)
        assert profile.compute_s == pytest.approx(0.25)
        assert profile.communication_s > 0
        assert 0 < profile.parallel_efficiency < 1
        assert profile.communication_fraction + profile.parallel_efficiency == pytest.approx(1.0)

    def test_fewer_nodes_less_communication(self, fabric_and_scheduler):
        """Packing ranks onto fewer nodes cuts communication time — the
        reason the allocator packs fullest-first."""
        machine, net, _ = fabric_and_scheduler
        # 4 ranks on 2 nodes (packed) vs 4 ranks on 4 nodes (spread)
        from repro.mpi import MpiWorld

        names = [n.name for n in machine.compute_nodes]
        packed = MpiWorld(net.fabric, [names[0], names[0], names[1], names[1]])
        spread = MpiWorld(net.fabric, names[:4])
        p_packed = run_allreduce_job(packed, iterations=3, elements=8192)
        p_spread = run_allreduce_job(spread, iterations=3, elements=8192)
        assert p_packed.communication_s < p_spread.communication_s

    def test_bad_parameters_rejected(self, fabric_and_scheduler):
        _machine, net, scheduler = fabric_and_scheduler
        job = scheduler.submit(
            Job("x", "a", cores=2, walltime_limit_s=60, runtime_s=30)
        )
        world = world_for_job(net.fabric, job)
        with pytest.raises(MpiError):
            run_allreduce_job(world, iterations=0)


class TestUpdateSubscriptions:
    def make_client(self, host):
        repo = Repository("xsede", priority=50)
        repo.add(Package(name="gromacs", version="4.6.5"))
        repo.add(Package(name="R", version="3.1.1"))
        client = YumClient(host)
        client.configure_repo_file(
            "xsede.repo", XSEDE_REPO_STANZA.render(), available={"xsede": repo}
        )
        client.install("gromacs")
        client.install("R")
        return client, repo

    def test_watch_filters_reports(self, frontend_host):
        client, repo = self.make_client(frontend_host)
        repo.add(Package(name="gromacs", version="5.0.4"))
        repo.add(Package(name="R", version="3.1.2"))
        watcher = NotifyPolicy(client, watch=["R"])
        report = watcher.run_cycle()
        assert [u.name for u in report.pending] == ["R"]
        everything = NotifyPolicy(client).run_cycle()
        assert {u.name for u in everything.pending} == {"gromacs", "R"}

    def test_subscribe_unsubscribe(self, frontend_host):
        client, repo = self.make_client(frontend_host)
        repo.add(Package(name="gromacs", version="5.0.4"))
        watcher = NotifyPolicy(client, watch=["R"])
        assert not watcher.run_cycle().has_updates  # R is current
        watcher.subscribe("gromacs")
        assert watcher.run_cycle().has_updates
        watcher.unsubscribe("gromacs")
        assert not watcher.run_cycle().has_updates

    def test_subscribe_requires_names(self, frontend_host):
        client, _repo = self.make_client(frontend_host)
        with pytest.raises(YumError):
            NotifyPolicy(client).subscribe()

    def test_unwatched_update_still_pending_on_host(self, frontend_host):
        """The watch filters notifications, not reality."""
        client, repo = self.make_client(frontend_host)
        repo.add(Package(name="gromacs", version="5.0.4"))
        watcher = NotifyPolicy(client, watch=["R"])
        watcher.run_cycle()
        assert [u.name for u in client.check_update()] == ["gromacs"]

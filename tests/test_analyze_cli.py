"""cluster-lint command-line tests: file loading, formats, flags, exit codes."""

import io
import json
import textwrap

import pytest

from repro.analyze.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main


BROKEN = textwrap.dedent(
    """
    from repro.analyze import ClusterDefinition
    from repro.network.dhcp import DhcpPlan

    def cluster_definition():
        return ClusterDefinition(
            name="busted",
            dhcp_plan=DhcpPlan(pool_start=40, pool_end=20),
        )
    """
)

CLEAN = textwrap.dedent(
    """
    from repro.analyze import ClusterDefinition
    from repro.network.dhcp import DhcpPlan

    def cluster_definition():
        return ClusterDefinition(name="fine", dhcp_plan=DhcpPlan())
    """
)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), stdout=out)
    return code, out.getvalue()


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken_def.py"
    path.write_text(BROKEN)
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean_def.py"
    path.write_text(CLEAN)
    return str(path)


class TestExitCodes:
    def test_clean_file_exits_zero(self, clean_file):
        code, output = run_cli(clean_file)
        assert code == EXIT_CLEAN
        assert "0 error(s)" in output

    def test_error_finding_exits_one(self, broken_file):
        code, output = run_cli(broken_file)
        assert code == EXIT_FINDINGS
        assert "NET404" in output

    def test_fail_on_never_reports_but_passes(self, broken_file):
        code, output = run_cli(broken_file, "--fail-on", "never")
        assert code == EXIT_CLEAN
        assert "NET404" in output

    def test_missing_file_is_usage_error(self):
        code, output = run_cli("does/not/exist.py")
        assert code == EXIT_USAGE

    def test_no_files_is_usage_error(self):
        code, output = run_cli()
        assert code == EXIT_USAGE

    def test_unknown_rule_code_is_usage_error(self, clean_file):
        code, output = run_cli(clean_file, "--only", "XX000")
        assert code == EXIT_USAGE
        assert "XX000" in output

    def test_file_without_definition_is_usage_error(self, tmp_path):
        path = tmp_path / "plain.py"
        path.write_text("x = 1\n")
        code, output = run_cli(str(path))
        assert code == EXIT_USAGE
        assert "neither" in output


class TestFlags:
    def test_json_format(self, broken_file):
        code, output = run_cli(broken_file, "--format", "json")
        assert code == EXIT_FINDINGS
        doc = json.loads(output)
        assert doc["schema"] == "repro.analyze.run/v1"
        assert doc["results"][0]["counts"]["error"] == 1

    def test_disable_silences_rule(self, broken_file):
        code, output = run_cli(broken_file, "--disable", "NET404")
        assert code == EXIT_CLEAN

    def test_only_narrows_rules(self, broken_file):
        code, output = run_cli(broken_file, "--only", "KS101")
        assert code == EXIT_CLEAN

    def test_list_rules(self):
        code, output = run_cli("--list-rules")
        assert code == EXIT_CLEAN
        for expected in ("KS101", "RC202", "RPM301", "NET401", "SCH501",
                         "HW601", "TX705"):
            assert expected in output

    def test_module_definition_object(self, tmp_path):
        path = tmp_path / "obj_def.py"
        path.write_text(textwrap.dedent(
            """
            from repro.analyze import ClusterDefinition
            DEFINITION = ClusterDefinition(name="by-object")
            """
        ))
        code, output = run_cli(str(path))
        assert code == EXIT_CLEAN
        assert "by-object" in output


class TestBaselineWorkflow:
    def test_write_then_apply(self, tmp_path, broken_file):
        baseline = tmp_path / "baseline.json"
        code, output = run_cli(broken_file, "--write-baseline", str(baseline))
        assert code == EXIT_CLEAN
        assert "1 suppression(s)" in output

        code, output = run_cli(broken_file, "--baseline", str(baseline))
        assert code == EXIT_CLEAN
        assert "1 baseline-suppressed" in output

    def test_bad_baseline_is_usage_error(self, tmp_path, broken_file):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code, output = run_cli(broken_file, "--baseline", str(bad))
        assert code == EXIT_USAGE

    def test_baseline_does_not_hide_new_findings(self, tmp_path, broken_file):
        baseline = tmp_path / "baseline.json"
        run_cli(broken_file, "--write-baseline", str(baseline))
        # A different definition (new location) must still fail.
        other = tmp_path / "other_def.py"
        other.write_text(BROKEN.replace('"10.1.1"', '"10.9.9"').replace(
            'name="busted"', 'name="other"'
        ))
        # same fingerprint shape but force a new finding location by a
        # different network prefix
        other.write_text(textwrap.dedent(
            """
            from repro.analyze import ClusterDefinition
            from repro.network.dhcp import DhcpPlan

            def cluster_definition():
                return ClusterDefinition(
                    name="other",
                    dhcp_plan=DhcpPlan(
                        network_prefix="10.9.9", pool_start=40, pool_end=20
                    ),
                )
            """
        ))
        code, _ = run_cli(str(other), "--baseline", str(baseline))
        assert code == EXIT_FINDINGS

    def test_python_dash_m_entry_point(self, broken_file):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.analyze", broken_file],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == EXIT_FINDINGS
        assert "NET404" in proc.stdout

    def test_stale_entry_warns_on_load(self, tmp_path, broken_file):
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps({
            "schema": "repro.analyze.baseline/v1",
            "suppressions": [
                {"fingerprint": "ZZ999@old.py:3", "reason": "retired rule"},
            ],
        }))
        code, output = run_cli(broken_file, "--baseline", str(stale))
        assert code == EXIT_FINDINGS  # NET404 still gates
        assert "ZZ999@old.py:3" in output
        assert "stale" in output

    def test_prune_baseline_drops_stale_keeps_live(self, tmp_path, broken_file):
        baseline = tmp_path / "baseline.json"
        run_cli(broken_file, "--write-baseline", str(baseline))
        doc = json.loads(baseline.read_text())
        doc["suppressions"].append(
            {"fingerprint": "ZZ999@old.py:3", "reason": "retired rule"}
        )
        baseline.write_text(json.dumps(doc))

        code, output = run_cli(
            broken_file, "--baseline", str(baseline), "--prune-baseline"
        )
        assert code == EXIT_CLEAN  # the live suppression still applies
        assert "pruned 1 stale suppression(s)" in output
        pruned = json.loads(baseline.read_text())
        fingerprints = [s["fingerprint"] for s in pruned["suppressions"]]
        assert "ZZ999@old.py:3" not in fingerprints
        assert len(fingerprints) == 1

    def test_prune_baseline_without_baseline_is_usage_error(self, broken_file):
        code, output = run_cli(broken_file, "--prune-baseline")
        assert code == EXIT_USAGE


class TestSarifFormat:
    def test_sarif_document_shape(self, broken_file):
        code, output = run_cli(broken_file, "--format", "sarif")
        assert code == EXIT_FINDINGS
        doc = json.loads(output)
        assert doc["version"] == "2.1.0"
        assert "sarif-2.1.0" in doc["$schema"]
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "cluster-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "NET404" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "NET404"
        assert result["level"] == "error"
        assert result["message"]["text"]

    def test_sarif_logical_location_for_definition_findings(self, broken_file):
        code, output = run_cli(broken_file, "--format", "sarif")
        doc = json.loads(output)
        result = doc["runs"][0]["results"][0]
        # definition findings use logical locations (no path:line form)
        for location in result["locations"]:
            assert "logicalLocations" in location or "physicalLocation" in location

    def test_sarif_clean_run_has_no_results(self, clean_file):
        code, output = run_cli(clean_file, "--format", "sarif")
        assert code == EXIT_CLEAN
        doc = json.loads(output)
        assert doc["runs"][0]["results"] == []

    def test_sarif_carries_baseline_suppressions(self, tmp_path, broken_file):
        baseline = tmp_path / "baseline.json"
        run_cli(broken_file, "--write-baseline", str(baseline))
        code, output = run_cli(
            broken_file, "--baseline", str(baseline), "--format", "sarif"
        )
        assert code == EXIT_CLEAN
        doc = json.loads(output)
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        suppression = results[0]["suppressions"][0]
        assert suppression["kind"] == "external"
        assert suppression["justification"] == "accepted by --write-baseline"

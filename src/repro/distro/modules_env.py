"""An environment-modules implementation (Tcl modules / Lmod style).

Section 4 credits the Montana State administrators with "investigating how to
implement software from XCBC in environment modules".  Modules are also the
mechanism behind the portability claim: ``module load gromacs`` behaves the
same on an XCBC campus cluster and on Stampede.

A :class:`ModuleFile` describes the environment edits; :class:`ModuleSystem`
holds the installed tree (``/etc/modulefiles`` by convention) and
:class:`ModuleSession` is one user shell's loaded set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ModuleEnvError

__all__ = ["ModuleFile", "ModuleSystem", "ModuleSession"]


@dataclass(frozen=True)
class ModuleFile:
    """One modulefile: name/version plus environment edits."""

    name: str
    version: str
    prepend_path: tuple[tuple[str, str], ...] = ()  # (ENVVAR, dir)
    setenv: tuple[tuple[str, str], ...] = ()
    conflicts: tuple[str, ...] = ()  # module names that cannot co-load
    #: modules that must be loaded first (e.g. gromacs needs openmpi)
    prerequisites: tuple[str, ...] = ()
    whatis: str = ""

    @property
    def fullname(self) -> str:
        return f"{self.name}/{self.version}"


class ModuleSystem:
    """The installed modulefile tree of one host."""

    def __init__(self) -> None:
        self._modules: dict[str, dict[str, ModuleFile]] = {}
        self._defaults: dict[str, str] = {}

    def install(self, module: ModuleFile, *, default: bool = False) -> None:
        """Install a modulefile; the first version becomes the default."""
        versions = self._modules.setdefault(module.name, {})
        if module.version in versions:
            raise ModuleEnvError(f"modulefile exists: {module.fullname}")
        versions[module.version] = module
        if default or module.name not in self._defaults:
            self._defaults[module.name] = module.version

    def remove(self, name: str, version: str) -> None:
        """Remove one modulefile version."""
        versions = self._modules.get(name, {})
        if version not in versions:
            raise ModuleEnvError(f"no such modulefile: {name}/{version}")
        del versions[version]
        if not versions:
            del self._modules[name]
            self._defaults.pop(name, None)
        elif self._defaults.get(name) == version:
            self._defaults[name] = sorted(versions)[-1]

    def avail(self) -> list[str]:
        """``module avail``: every installed name/version, sorted."""
        out = []
        for name in sorted(self._modules):
            for version in sorted(self._modules[name]):
                marker = "(default)" if self._defaults.get(name) == version else ""
                out.append(f"{name}/{version}{marker}")
        return out

    def resolve(self, spec: str) -> ModuleFile:
        """Resolve ``name`` or ``name/version`` to a modulefile."""
        if "/" in spec:
            name, version = spec.split("/", 1)
        else:
            name, version = spec, self._defaults.get(spec, "")
        versions = self._modules.get(name)
        if not versions or version not in versions:
            raise ModuleEnvError(f"unable to locate a modulefile for {spec!r}")
        return versions[version]

    def has(self, spec: str) -> bool:
        """True if ``spec`` resolves."""
        try:
            self.resolve(spec)
            return True
        except ModuleEnvError:
            return False

    def names(self) -> list[str]:
        """Installed module names (without versions), sorted."""
        return sorted(self._modules)

    def set_default(self, name: str, version: str) -> None:
        """Pin a name's default version (the ``.version`` file)."""
        versions = self._modules.get(name, {})
        if version not in versions:
            raise ModuleEnvError(f"no such modulefile: {name}/{version}")
        self._defaults[name] = version

    def whatis(self, query: str) -> list[str]:
        """``module whatis`` / keyword search: case-insensitive match over
        names and whatis strings; returns ``name/version: whatis`` lines."""
        needle = query.lower()
        out = []
        for name in sorted(self._modules):
            for version in sorted(self._modules[name]):
                module = self._modules[name][version]
                haystack = f"{module.fullname} {module.whatis}".lower()
                if needle in haystack:
                    out.append(f"{module.fullname}: {module.whatis or name}")
        return out


class ModuleSession:
    """One shell's module state: ``module load/unload/list`` semantics."""

    def __init__(self, system: ModuleSystem, *, base_env: dict[str, str] | None = None):
        self.system = system
        self.env: dict[str, str] = dict(base_env or {"PATH": "/usr/bin:/bin"})
        self._loaded: dict[str, ModuleFile] = {}

    def loaded(self) -> list[str]:
        """``module list``: loaded full names in load order."""
        return [m.fullname for m in self._loaded.values()]

    def load(self, spec: str) -> ModuleFile:
        """``module load``: applies edits, enforcing conflicts and prereqs."""
        module = self.system.resolve(spec)
        if module.name in self._loaded:
            already = self._loaded[module.name]
            if already.version == module.version:
                return already
            raise ModuleEnvError(
                f"{module.name}/{already.version} is already loaded; "
                f"unload it before loading {module.fullname}"
            )
        for conflict in module.conflicts:
            if conflict in self._loaded:
                raise ModuleEnvError(
                    f"{module.fullname} conflicts with loaded module {conflict!r}"
                )
        for loaded_mod in self._loaded.values():
            if module.name in loaded_mod.conflicts:
                raise ModuleEnvError(
                    f"loaded module {loaded_mod.fullname} conflicts with "
                    f"{module.fullname}"
                )
        for prereq in module.prerequisites:
            if prereq not in self._loaded:
                raise ModuleEnvError(
                    f"{module.fullname} requires module {prereq!r} to be "
                    f"loaded first"
                )
        for var, value in module.setenv:
            self.env[var] = value
        for var, directory in module.prepend_path:
            current = self.env.get(var, "")
            self.env[var] = directory + (":" + current if current else "")
        self._loaded[module.name] = module
        return module

    def unload(self, spec: str) -> None:
        """``module unload``: reverse the edits of one loaded module."""
        name = spec.split("/", 1)[0]
        module = self._loaded.get(name)
        if module is None:
            raise ModuleEnvError(f"module {spec!r} is not loaded")
        blockers = [
            m.fullname
            for m in self._loaded.values()
            if name in m.prerequisites
        ]
        if blockers:
            raise ModuleEnvError(
                f"cannot unload {module.fullname}: required by {blockers}"
            )
        for var, directory in module.prepend_path:
            entries = self.env.get(var, "").split(":")
            if directory in entries:
                entries.remove(directory)
            self.env[var] = ":".join(e for e in entries if e)
        for var, _value in module.setenv:
            self.env.pop(var, None)
        del self._loaded[name]

    def swap(self, old_spec: str, new_spec: str) -> ModuleFile:
        """``module swap old new``: unload one, load the other, atomically —
        if the new module cannot load, the old one is restored."""
        old_name = old_spec.split("/", 1)[0]
        held = self._loaded.get(old_name)
        if held is None:
            raise ModuleEnvError(f"module {old_spec!r} is not loaded")
        self.unload(old_spec)
        try:
            return self.load(new_spec)
        except ModuleEnvError:
            self.load(held.fullname)
            raise

    def purge(self) -> None:
        """``module purge``: unload everything (dependents first)."""
        # Unload in reverse load order; prerequisites load before dependents,
        # so reverse order never trips the dependency guard.
        for name in reversed(list(self._loaded)):
            if name in self._loaded:
                self.unload(name)

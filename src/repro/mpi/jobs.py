"""Running MPI work on a scheduler allocation: the layers joined up.

A batch job's allocation (which cores on which nodes) decides where its MPI
ranks land, and rank placement decides communication cost — the reason
admins care about node allocation policy at all.  :func:`world_for_job`
builds an :class:`~repro.mpi.simulator.MpiWorld` whose ranks sit exactly on
a job's allocated cores; :func:`run_allreduce_job` is the canonical
workload: iterate compute + allreduce, returning modelled time split into
compute and communication.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MpiError
from ..hardware.chassis import Machine
from ..network.fabric import Fabric
from ..scheduler.job import Job, JobState
from ..sim import SimKernel
from .collectives import allreduce
from .simulator import MpiWorld

__all__ = ["world_for_job", "MpiJobProfile", "run_allreduce_job"]


def world_for_job(
    fabric: Fabric, job: Job, *, kernel: SimKernel | None = None
) -> MpiWorld:
    """An MPI world with one rank per allocated core of ``job``.

    The job must be running or completed (it must *have* an allocation).
    Rank order follows the allocation's node order — the same contiguous
    placement mpirun gets from a Torque nodefile.  Pass the scheduler's
    ``kernel`` to put the ranks on the shared timeline, anchored at the
    job's start time.
    """
    if job.allocation is None:
        raise MpiError(f"job {job.name} has no allocation (state {job.state.value})")
    rank_hosts = [
        node_name
        for node_name, cores in job.allocation.by_node
        for _ in range(cores)
    ]
    return MpiWorld(fabric, rank_hosts, kernel=kernel, start_s=job.start_time_s)


@dataclass(frozen=True)
class MpiJobProfile:
    """Modelled execution profile of one MPI job."""

    ranks: int
    iterations: int
    compute_s: float
    communication_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.communication_s

    @property
    def communication_fraction(self) -> float:
        return self.communication_s / self.total_s if self.total_s > 0 else 0.0

    @property
    def parallel_efficiency(self) -> float:
        """compute / total: what fraction of the allocation did real work."""
        return self.compute_s / self.total_s if self.total_s > 0 else 0.0


def run_allreduce_job(
    world: MpiWorld,
    *,
    iterations: int = 10,
    elements: int = 4096,
    compute_s_per_iteration: float = 0.05,
) -> MpiJobProfile:
    """The canonical iterate-then-allreduce workload (CG, MD, ...).

    Each iteration charges every rank ``compute_s_per_iteration`` of local
    work, then performs a data-correct allreduce of ``elements`` doubles;
    the world's clocks supply the communication time.
    """
    if iterations <= 0 or elements <= 0:
        raise MpiError("iterations and elements must be positive")
    world.reset_clocks()
    payload_template = [1.0] * elements
    for _ in range(iterations):
        # local compute: every rank's clock advances in lockstep
        for rank in range(world.size):
            world.compute(rank, compute_s_per_iteration)
        data = [list(payload_template) for _ in range(world.size)]
        merged = allreduce(
            world, data, lambda a, b: [x + y for x, y in zip(a, b)]
        )
        expected = float(world.size)
        if abs(merged[0][0] - expected) > 1e-9:
            raise MpiError("allreduce returned a wrong reduction")
    compute = iterations * compute_s_per_iteration
    total = world.elapsed_s
    return MpiJobProfile(
        ranks=world.size,
        iterations=iterations,
        compute_s=compute,
        communication_s=max(total - compute, 0.0),
    )

"""repro: a full reproduction of "XCBC and XNIT — tools for cluster
implementation and management in research and training" (Fischer et al.,
CLUSTER 2015).

The paper's artefacts — a Rocks roll (XCBC) and a Yum repository (XNIT) —
are rebuilt as working tools over a simulated substrate: cluster hardware
(the modified LittleFe and the Limulus HPC200 among others), an RPM/Yum
package-management engine, a Rocks-like bare-metal provisioner on a
PXE/DHCP fabric, batch schedulers, simulated MPI, and an HPL/Linpack
benchmark engine.

Quickstart::

    from repro.hardware import build_littlefe_modified
    from repro.core import build_xcbc_cluster, audit_host

    machine = build_littlefe_modified().machine
    report = build_xcbc_cluster(machine)
    print(audit_host(report.cluster.frontend, report.cluster.frontend_db).render())

See README.md for the architecture tour, DESIGN.md for the system
inventory, and EXPERIMENTS.md for the paper-vs-measured record.
"""

__version__ = "1.0.0"

from . import (
    core,
    distro,
    grid,
    hardware,
    htc,
    linpack,
    monitoring,
    mpi,
    network,
    pfs,
    rocks,
    rpm,
    scheduler,
    sim,
    yum,
)
from .errors import ReproError

__all__ = [
    "__version__",
    "ReproError",
    "hardware",
    "distro",
    "rpm",
    "yum",
    "rocks",
    "network",
    "mpi",
    "scheduler",
    "sim",
    "linpack",
    "pfs",
    "monitoring",
    "htc",
    "grid",
    "core",
]

#!/usr/bin/env python3
"""Campus bridging: a researcher moves between two clusters built two ways.

The paper's motivation (Section 1): "A user's knowledge of software, system
commands, etc., becomes portable from one cluster built with XCBC to
another."  We build one cluster each way — a campus LittleFe via XCBC and a
Limulus via XNIT — then move a bioinformatics researcher's whole workflow
between them: commands, environment modules, and the batch script.
"""

from repro.core import (
    build_limulus_cluster,
    build_xcbc_cluster,
    build_xnit_repository,
    diff_environments,
    integrate_host,
    portability_check,
    setup_via_repo_rpm,
)
from repro.distro import ModuleSession
from repro.hardware import build_littlefe_modified
from repro.scheduler import ClusterResources, Job, MauiScheduler

#: the researcher's muscle memory: a Trinity RNA-seq pipeline
WORKFLOW_COMMANDS = [
    "qsub", "qstat", "qdel",       # batch system
    "module",                       # environment modules
    "Trinity", "bowtie", "samtools",  # the pipeline
    "blastn", "R",                  # downstream analysis
]

WORKFLOW_MODULES = ["python/2.7.9", "R/3.1.2", "blast/2.2.29"]


def main() -> None:
    print("=== Cluster A: campus LittleFe, built from scratch with XCBC ===")
    cluster_a = build_xcbc_cluster(build_littlefe_modified("campus-lf").machine).cluster
    print(f"{cluster_a.frontend.name}: "
          f"{len(cluster_a.frontend_db)} packages installed\n")

    print("=== Cluster B: departmental Limulus, retrofitted with XNIT ===")
    limulus = build_limulus_cluster("dept-limulus")
    repo = build_xnit_repository()
    for host in limulus.hosts():
        client = limulus.client_for(host)
        setup_via_repo_rpm(client, repo)
        integrate_host(client, full_toolkit=True)
        # XNIT also carries the Table 1 basics; environment modules are the
        # portability workhorse, so pull them onto the retrofit side too
        client.install("modules")
    client_b = limulus.client_for(limulus.frontend)
    print(f"{limulus.frontend.name}: {len(client_b.db)} packages installed\n")

    print("=== Does the researcher's workflow move unchanged? ===")
    frac, broken = portability_check(
        cluster_a.frontend, limulus.frontend, WORKFLOW_COMMANDS
    )
    print(f"Command portability: {frac:.0%}"
          + (f" (broken: {broken})" if broken else " — every command resolves"))

    for host, label in ((cluster_a.frontend, "XCBC"), (limulus.frontend, "XNIT")):
        session = ModuleSession(host.modules)
        for module in WORKFLOW_MODULES:
            session.load(module)
        print(f"{label} cluster: module loads OK -> {session.loaded()}")

    print("\n=== Environment diff between the two frontends ===")
    diff = diff_environments(cluster_a.frontend_db, client_b.db)
    print(f"Version mismatches on shared packages: "
          f"{len(diff.version_mismatches)} (converged={diff.converged})")
    print(f"Only on XCBC side (Rocks tooling): {diff.only_on_a[:6]} ...")
    print(f"Only on XNIT side (vendor stack):  {diff.only_on_b}")

    print("\n=== The same batch job runs on both machines ===")
    for quote_machine, label in (
        (cluster_a.machine, "campus LittleFe"),
        (limulus.machine, "dept Limulus"),
    ):
        scheduler = MauiScheduler(ClusterResources(quote_machine))
        job = scheduler.submit(
            Job("trinity-assembly", "researcher", cores=4,
                walltime_limit_s=7200, runtime_s=3600)
        )
        scheduler.run_to_completion()
        print(f"  {label}: {job.name} -> {job.state.value} on {job.allocation}")


def cluster_definition():
    """Pre-flight view of the campus cluster, for ``cluster-lint``."""
    from repro.core import xcbc_cluster_definition

    machine = build_littlefe_modified().machine
    return xcbc_cluster_definition(machine, name="campus-bridge")


if __name__ == "__main__":
    main()

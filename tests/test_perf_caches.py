"""Cache correctness across epochs, and the repro.perf harness itself.

The depsolver now memoises ``best_provider`` per RepoSet epoch and whole
resolutions per (goals, repo epoch, db fingerprint).  The dangerous bug
class is a *stale hit*: a resolution cached before a mirror sync (or a
package install) being served afterwards.  These tests mutate the world
through every supported channel — direct repo edits, ``RepoMirror.sync``,
db install/erase — and assert the caches notice.
"""

import json

import pytest

from repro.distro import CENTOS_6_5, Host
from repro.errors import DependencyError
from repro.rpm import Capability, Package, Requirement, RpmDatabase
from repro.yum import MirrorLink, RepoMirror, RepoSet, Repository, resolve_install
from repro.yum.depsolver import (
    best_provider,
    clear_resolution_cache,
    resolution_cache_stats,
    resolve_update,
)


def mk(name, version="1.0", **kw):
    return Package(name=name, version=version, **kw)


@pytest.fixture(autouse=True)
def _isolated_resolution_cache():
    clear_resolution_cache()
    yield
    clear_resolution_cache()


@pytest.fixture
def db(frontend_host):
    return RpmDatabase(frontend_host)


class TestBestProviderMemo:
    def test_repo_mutation_invalidates_memo(self):
        repo = Repository("r")
        repo.add(mk("openmpi", "1.6", provides=(Capability("mpi-impl"),)))
        repos = RepoSet([repo])
        req = Requirement("mpi-impl")
        assert best_provider(req, repos).name == "openmpi"
        # A better-named provider arrives; the memo must not serve openmpi.
        repo.add(mk("mpi-impl", "2.0"))
        assert best_provider(req, repos).name == "mpi-impl"

    def test_negative_result_invalidated_by_new_provider(self):
        repo = Repository("r")
        repo.add(mk("alpha"))
        repos = RepoSet([repo])
        req = Requirement("libghost")
        with pytest.raises(DependencyError):
            best_provider(req, repos)
        # Cached miss must not outlive the epoch that produced it.
        with pytest.raises(DependencyError):
            best_provider(req, repos)
        repo.add(mk("ghost-lib", provides=(Capability("libghost"),)))
        assert best_provider(req, repos).name == "ghost-lib"


class TestResolutionCacheEpochs:
    def test_mirror_sync_with_newer_evr_invalidates(self, db):
        """The ISSUE's canary: cache a resolution against a mirror, then
        sync a newer EVR from upstream — the next resolve must see it."""
        upstream = Repository("xsede", priority=50)
        upstream.add(mk("gromacs", "4.6.5"))
        mirror = RepoMirror(upstream, MirrorLink(bandwidth_bytes_s=1e9))
        mirror.sync()
        repos = RepoSet([mirror.local])

        first = resolve_install(["gromacs"], repos, db)
        assert [p.version for p in first.to_install] == ["4.6.5"]

        upstream.add(mk("gromacs", "5.0.4"))
        mirror.sync()
        second = resolve_install(["gromacs"], repos, db)
        assert [p.version for p in second.to_install] == ["5.0.4"]

    def test_db_install_invalidates(self, db):
        repo = Repository("r")
        repo.add(mk("gromacs", "5.0.4"))
        repos = RepoSet([repo])
        first = resolve_install(["gromacs"], repos, db)
        assert not first.is_empty()
        db._install_unchecked(mk("gromacs", "5.0.4"))
        second = resolve_install(["gromacs"], repos, db)
        assert second.is_empty()  # already installed; a stale hit would re-plan

    def test_db_erase_invalidates(self, db):
        repo = Repository("r")
        repo.add(mk("gromacs", "5.0.4"))
        repos = RepoSet([repo])
        db._install_unchecked(mk("gromacs", "5.0.4"))
        assert resolve_install(["gromacs"], repos, db).is_empty()
        db._erase_unchecked("gromacs")
        assert not resolve_install(["gromacs"], repos, db).is_empty()

    def test_cache_hits_across_fresh_reposet_instances(self, db):
        """The Kansas fast path: the installer builds a new RepoSet per
        node, and the content-addressed epoch makes the cache hit anyway."""
        repo = Repository("r")
        repo.add(mk("gromacs", "5.0.4"))
        resolve_install(["gromacs"], RepoSet([repo]), db)
        before = resolution_cache_stats()
        result = resolve_install(["gromacs"], RepoSet([repo]), db)
        after = resolution_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert [p.name for p in result.to_install] == ["gromacs"]

    def test_cached_resolution_is_a_defensive_copy(self, db):
        repo = Repository("r")
        repo.add(mk("gromacs", "5.0.4"))
        repos = RepoSet([repo])
        first = resolve_install(["gromacs"], repos, db)
        first.to_install.clear()  # caller mangles its copy
        second = resolve_install(["gromacs"], repos, db)
        assert [p.name for p in second.to_install] == ["gromacs"]

    def test_resolve_update_sees_post_sync_world(self, db):
        repo = Repository("r")
        repo.add(mk("torque", "4.2.9"))
        repos = RepoSet([repo])
        db._install_unchecked(mk("torque", "4.2.9"))
        assert resolve_update(repos, db).is_empty()
        repo.add(mk("torque", "4.2.10"))
        update = resolve_update(repos, db)
        assert [p.version for p in update.to_install] == ["4.2.10"]


class TestPerfHarness:
    def test_run_benches_rejects_unknown_names(self):
        from repro.perf import run_benches

        with pytest.raises(KeyError, match="unknown bench"):
            run_benches(["not_a_bench"])

    def test_quick_results_are_keyed_separately(self):
        from repro.perf import run_benches

        results = run_benches(["trace_bus"], quick=True)
        assert list(results) == ["trace_bus@quick"]
        assert results["trace_bus@quick"].n == 10_000

    def test_compare_results_flags_regressions_only(self):
        from repro.perf import BenchResult, compare_results

        baseline = {
            "fast": {"ops_per_s": 1000.0, "wall_s": 1.0, "n": 1000},
            "slow": {"ops_per_s": 1000.0, "wall_s": 1.0, "n": 1000},
        }
        current = {
            "fast": BenchResult("fast", 900.0, 1.1, 1000),   # -10%: fine
            "slow": BenchResult("slow", 700.0, 1.4, 1000),   # -30%: regression
            "new": BenchResult("new", 1.0, 1.0, 1),          # no baseline: skip
        }
        problems = compare_results(current, baseline, tolerance=0.25)
        assert len(problems) == 1 and problems[0].startswith("slow:")

    def test_write_results_merges_and_sorts(self, tmp_path):
        from repro.perf import BenchResult, load_results, write_results

        out = tmp_path / "bench.json"
        write_results({"b": BenchResult("b", 2.0, 0.5, 1)}, out)
        merged = write_results({"a": BenchResult("a", 1.0, 1.0, 1)}, out)
        assert list(merged) == ["a", "b"]
        assert load_results(out)["b"]["ops_per_s"] == 2.0

    def test_cli_gate_exits_nonzero_on_regression(self, tmp_path, capsys):
        from repro.perf import main

        baseline = tmp_path / "base.json"
        # An impossible baseline: any real run regresses against it.
        baseline.write_text(
            json.dumps({"trace_bus@quick": {"ops_per_s": 1e12, "wall_s": 0.0, "n": 1}})
        )
        code = main(["trace_bus", "--quick", "--against", str(baseline)])
        assert code == 1
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_cli_gate_passes_within_tolerance(self, tmp_path, capsys):
        from repro.perf import main

        baseline = tmp_path / "base.json"
        baseline.write_text(
            json.dumps({"trace_bus@quick": {"ops_per_s": 1.0, "wall_s": 1.0, "n": 1}})
        )
        code = main(["trace_bus", "--quick", "--against", str(baseline)])
        assert code == 0
        assert "perf gate OK" in capsys.readouterr().out
        assert not (tmp_path / "BENCH_hotpaths.json").exists()

    def test_naive_mode_restores_everything(self):
        from repro.perf import naive_mode
        from repro.sim import SimKernel, TraceBus
        from repro.yum.repository import RepoSet as RS, Repository as R

        orig_providers = R.providers_of
        orig_cache = RS.cache
        orig_run_until = SimKernel.run_until
        with naive_mode():
            assert R.providers_of is R._scan_providers_of
            assert RS.cache is not orig_cache
            assert TraceBus().strict is True  # forced strict
            repo = R("r")
            repo.add(mk("alpha"))
            assert [p.name for p in repo.providers_of(Requirement("alpha"))] == ["alpha"]
        assert R.providers_of is orig_providers
        assert RS.cache is orig_cache
        assert SimKernel.run_until is orig_run_until
        assert TraceBus().strict is False

    def test_naive_mode_results_match_indexed_results(self, db):
        """Same resolution either way — naive mode is slower, not different."""
        from repro.perf import naive_mode

        repo = Repository("r")
        repo.add(mk("gromacs", "5.0.4", requires=(Requirement("libfftw"),)))
        repo.add(mk("fftw", "3.3", provides=(Capability("libfftw"),)))
        repos = RepoSet([repo])
        indexed = resolve_install(["gromacs"], repos, db)
        clear_resolution_cache()
        with naive_mode():
            naive = resolve_install(["gromacs"], repos, db)
        assert [p.nevra for p in indexed.to_install] == [
            p.nevra for p in naive.to_install
        ]

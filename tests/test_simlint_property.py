"""Property test: SL201's static verdict agrees with runtime behaviour.

Hypothesis generates mutator-method bodies from the vocabulary SL201
reasons about — indexed-field writes, epoch bumps, no-ops, branches — and
the test compares the static verdict from
:func:`repro.analyze.passes.source_epochs.epoch_verdicts` against actually
*running* the method on an instrumented instance and checking whether a
mutation was left unpublished (no ``_epoch`` change after the last write).

Two regimes:

* straight-line bodies — exact agreement: flagged iff some execution ends
  with a pending (unbumped) mutation;
* bodies with branches — soundness: if the static analysis says clean,
  then *every* execution over all branch-condition combinations must end
  clean.  (The converse may not hold: the analysis is conservative and may
  flag a path the conditions make infeasible.)
"""

import ast
import itertools

from hypothesis import given, settings, strategies as st

from repro.analyze.passes.source_epochs import epoch_verdicts

# ---------------------------------------------------------------------------
# program generation

MUTATE = 'self._packages["k"] = 1'
BUMP = "self._epoch += 1"
NOOP = "x = 1"

ATOMS = (MUTATE, BUMP, NOOP)

atom = st.sampled_from(ATOMS)
straight_line = st.lists(atom, min_size=1, max_size=6)


@st.composite
def branching_body(draw):
    """A body mixing plain statements and single-level if/else blocks."""
    pieces = draw(
        st.lists(
            st.one_of(
                atom.map(lambda s: ("stmt", s)),
                st.tuples(
                    st.sampled_from(["a", "b"]),
                    st.lists(atom, min_size=1, max_size=3),
                    st.lists(atom, max_size=3),
                ).map(lambda t: ("if", *t)),
            ),
            min_size=1,
            max_size=4,
        )
    )
    return pieces


def render_method(pieces, *, args=("a", "b")) -> str:
    lines = [f"    def method(self, {', '.join(args)}):"]
    for piece in pieces:
        if isinstance(piece, str):
            lines.append(f"        {piece}")
        elif piece[0] == "stmt":
            lines.append(f"        {piece[1]}")
        else:
            _tag, cond, then, orelse = piece
            lines.append(f"        if {cond}:")
            for stmt in then:
                lines.append(f"            {stmt}")
            if orelse:
                lines.append("        else:")
                for stmt in orelse:
                    lines.append(f"            {stmt}")
    return "\n".join(lines)


def render_class(pieces) -> str:
    # ``install`` establishes the epoch protocol (bump method + indexed
    # field) exactly the way RpmDatabase does, so SL201 engages.
    return "\n".join(
        [
            "class Db:",
            "    def __init__(self):",
            "        self._packages = {}",
            "        self._epoch = 0",
            "",
            "    def install(self):",
            '        self._packages["seed"] = 1',
            "        self._epoch += 1",
            "",
            render_method(pieces),
            "",
        ]
    )


# ---------------------------------------------------------------------------
# runtime harness


class _Recorder(dict):
    """Dict that raises the owner's pending flag on every write."""

    def __init__(self, owner):
        super().__init__()
        self._owner = owner

    def __setitem__(self, key, value):
        self._owner.pending = True
        super().__setitem__(key, value)

    def __delitem__(self, key):
        self._owner.pending = True
        if key in self:
            super().__delitem__(key)


def instrument(source: str):
    """Exec the generated class and wrap it so the pending bit is live."""
    namespace: dict = {}
    exec(compile(source, "<generated>", "exec"), namespace)
    base = namespace["Db"]

    class Harness(base):
        def __init__(self):
            self.pending = False
            super().__init__()
            self._packages = _Recorder(self)

        @property
        def _epoch(self):
            return self.__dict__.get("_epoch_value", 0)

        @_epoch.setter
        def _epoch(self, value):
            self.__dict__["_epoch_value"] = value
            # publishing the epoch clears any pending mutation
            self.pending = False

    return Harness


def runtime_dirty(source: str, arg_names=("a", "b")) -> bool:
    """True if any execution path ends with an unpublished mutation."""
    harness = instrument(source)
    for values in itertools.product([False, True], repeat=len(arg_names)):
        db = harness()
        db.method(*values)
        if db.pending:
            return True
    return False


def static_dirty(source: str) -> bool:
    verdicts = epoch_verdicts(ast.parse(source))
    return "method" in verdicts.get("Db", [])


# ---------------------------------------------------------------------------
# properties


@settings(max_examples=200, deadline=None)
@given(straight_line)
def test_straight_line_verdict_agrees_with_execution(stmts):
    source = render_class(stmts)
    assert static_dirty(source) == runtime_dirty(source)


@settings(max_examples=200, deadline=None)
@given(branching_body())
def test_static_clean_implies_every_execution_clean(pieces):
    source = render_class(pieces)
    if not static_dirty(source):
        assert not runtime_dirty(source)


def test_known_dirty_and_clean_anchors():
    # the property tests above are only as good as the harness; pin both
    # directions with hand-written cases
    dirty = render_class([MUTATE])
    clean = render_class([MUTATE, BUMP])
    assert static_dirty(dirty) and runtime_dirty(dirty)
    assert not static_dirty(clean) and not runtime_dirty(clean)

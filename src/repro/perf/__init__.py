"""repro.perf: the canonical hot-path benchmarks and regression harness.

The paper's value proposition is *time-to-cluster*; the ROADMAP's north
star is production scale.  This package pins both with numbers: a small
set of canonical benches over the four hot subsystems (dependency closure,
event kernel, trace bus, Kansas-scale install, scheduler churn), a
machine-readable results file (``BENCH_hotpaths.json`` at the repo root,
``{bench -> {ops_per_s, wall_s, n}}``), and a baseline-comparison mode CI
runs on every change::

    python -m repro.perf                    # run all benches, write JSON
    python -m repro.perf --quick \\
        --against BENCH_hotpaths.json \\
        --tolerance 0.25                    # fail on >25% regression

``--naive`` re-runs the same benches through the retained ``_scan_*``
reference implementations with every cache disabled — the before/after
ablation that justifies the capability indexes (docs/PERF.md).
"""

from .benches import BENCHES, BenchResult, run_benches
from .cli import compare_results, load_results, main, write_results
from .naive import naive_mode

__all__ = [
    "BENCHES",
    "BenchResult",
    "run_benches",
    "naive_mode",
    "load_results",
    "write_results",
    "compare_results",
    "main",
]

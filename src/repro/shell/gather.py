"""clubak-style output gathering: fold identical results, bucket by rc.

A 10k-node ``clush`` run is unreadable as ten thousand output lines; the
ClusterShell answer (``clubak``) is to merge identical outputs under one
folded :class:`~repro.fleet.NodeSet` label::

    compute-0-[0-9999]: ok
    compute-3-[12,17]: yum: mirror unreachable [rc=1]

:func:`gather` does the merge, :func:`bucket_by_rc` folds the same results
per return code (the "which nodes failed" view), and :func:`worst_rc`
gives the one-number summary a wave gate needs.  Everything sorts before
it folds, so the grouping is deterministic and round-trips through
``NodeSet.fold()``/``parse()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..fleet import NodeSet

__all__ = ["OutputGroup", "gather", "bucket_by_rc", "worst_rc", "render_groups"]


@dataclass(frozen=True)
class OutputGroup:
    """One merged result: every node that returned (``rc``, ``output``)."""

    nodes: NodeSet
    rc: int
    output: str

    @property
    def count(self) -> int:
        return len(self.nodes)

    def label(self) -> str:
        """The clubak line for this group."""
        suffix = f" [rc={self.rc}]" if self.rc else ""
        return f"{self.nodes}: {self.output}{suffix}"


def gather(results: Iterable[tuple[str, int, str]]) -> list[OutputGroup]:
    """Merge ``(node, rc, output)`` triples into folded groups.

    Groups are keyed on the exact ``(rc, output)`` pair and returned
    sorted by (rc, output) — clean results first, failures bucketed after
    — with each group's nodes folded into one NodeSet.
    """
    buckets: dict[tuple[int, str], list[str]] = {}
    for node, rc, output in results:
        buckets.setdefault((rc, output), []).append(node)
    return [
        OutputGroup(nodes=NodeSet.from_names(names), rc=rc, output=output)
        for (rc, output), names in sorted(buckets.items())
    ]


def bucket_by_rc(groups: Iterable[OutputGroup]) -> dict[int, NodeSet]:
    """Fold groups down to one NodeSet per return code, sorted by rc."""
    by_rc: dict[int, NodeSet] = {}
    for group in groups:
        existing = by_rc.get(group.rc)
        by_rc[group.rc] = (
            group.nodes if existing is None else existing | group.nodes
        )
    return dict(sorted(by_rc.items()))


def worst_rc(groups: Iterable[OutputGroup]) -> int:
    """The highest return code across all groups (0 when empty)."""
    return max((g.rc for g in groups), default=0)


def render_groups(groups: Iterable[OutputGroup]) -> str:
    """The clubak listing: one folded label line per merged group."""
    return "\n".join(group.label() for group in groups)
